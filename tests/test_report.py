"""Measured-vs-paper report rendering."""

import pytest

from repro.experiments import (
    AccuracyTable,
    CellResult,
    evaluate_shape_claims,
    render_comparison,
)


def synthetic_table() -> AccuracyTable:
    """A hand-built measured table with the paper's claimed shape."""
    def cell(value):
        return CellResult.from_values([value])

    table = AccuracyTable(dataset="cora", rate=0.1)
    table.rows = {
        "Clean": {"GCN": cell(0.84), "GNAT": cell(0.86)},
        "GF-Attack": {"GCN": cell(0.83), "GNAT": cell(0.85)},
        "Metattack": {"GCN": cell(0.74), "GNAT": cell(0.82)},
        "PEEGA": {"GCN": cell(0.73), "GNAT": cell(0.83)},
    }
    return table


class TestShapeClaims:
    def test_all_claims_hold_on_shapely_table(self):
        claims = evaluate_shape_claims(synthetic_table())
        assert all(holds for _, holds in claims), claims
        assert len(claims) == 5

    def test_claims_fail_on_inverted_table(self):
        table = synthetic_table()
        # Make GF-Attack the strongest and GNAT worse than GCN.
        table.rows["GF-Attack"]["GCN"] = CellResult.from_values([0.50])
        table.rows["GF-Attack"]["GNAT"] = CellResult.from_values([0.40])
        claims = dict(evaluate_shape_claims(table))
        assert not claims["PEEGA is stronger than the spectral black-box GF-Attack"]
        assert not claims["the strongest attacker is Metattack or PEEGA"]
        assert not claims["GNAT beats raw GCN under the strongest attack"]


class TestRendering:
    def test_markdown_structure(self):
        text = render_comparison(synthetic_table())
        assert text.startswith("### cora @ rate 0.1")
        assert "| attacker |" in text
        # Paper reference numbers are included in parentheses (1 decimal).
        assert "(83.4)" in text  # paper's clean GCN on Cora (83.36)
        assert "Shape claims" in text
        assert "✅" in text

    def test_missing_paper_cell_renders_dash(self):
        table = synthetic_table()
        table.rows["Clean"]["MyNewDefense"] = CellResult.from_values([0.9])
        for row in table.rows.values():
            row.setdefault("MyNewDefense", CellResult.from_values([0.5]))
        text = render_comparison(table)
        assert "(—)" in text
