"""The PEEGA attacker: budgets, constraints, attack types, determinism."""

import numpy as np
import pytest

from repro.attacks import AttackBudget, AttackerNodes
from repro.core import PEEGA
from repro.errors import BudgetError, ConfigError
from repro.graph import structural_distance


class TestBudget:
    def test_exact_budget_spent(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.1)
        delta = round(0.1 * small_cora.num_edges)
        assert result.num_perturbations == delta
        result.verify_budget()

    def test_explicit_budget(self, small_cora):
        budget = AttackBudget(total=5.0)
        result = PEEGA(seed=0).attack(small_cora, budget=budget)
        assert result.num_perturbations == 5

    def test_zero_budget_is_noop(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.0)
        assert result.num_perturbations == 0
        assert structural_distance(small_cora.adjacency, result.poisoned.adjacency) == 0

    def test_budget_or_rate_required(self, small_cora):
        with pytest.raises(BudgetError):
            PEEGA(seed=0).attack(small_cora)
        with pytest.raises(BudgetError):
            PEEGA(seed=0).attack(
                small_cora, budget=AttackBudget(total=3), perturbation_rate=0.1
            )

    def test_feature_cost_budget_accounting(self, small_cora):
        budget = AttackBudget(total=6.0, feature_cost=2.0)
        result = PEEGA(attack_topology=False, seed=0).attack(small_cora, budget=budget)
        assert len(result.feature_flips) == 3  # 3 flips × cost 2 = 6
        result.verify_budget()


class TestAttackTypes:
    def test_topology_only(self, small_cora):
        result = PEEGA(attack_features=False, seed=0).attack(
            small_cora, perturbation_rate=0.05
        )
        assert result.feature_flips == []
        assert len(result.edge_flips) > 0

    def test_features_only(self, small_cora):
        result = PEEGA(attack_topology=False, seed=0).attack(
            small_cora, perturbation_rate=0.05
        )
        assert result.edge_flips == []
        assert len(result.feature_flips) > 0

    def test_both_disabled_rejected(self):
        with pytest.raises(ConfigError):
            PEEGA(attack_topology=False, attack_features=False)

    def test_poisoned_graph_matches_flips(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.05)
        assert structural_distance(
            small_cora.adjacency, result.poisoned.adjacency
        ) == len(result.edge_flips)

    def test_labels_and_masks_carried_over(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.05)
        np.testing.assert_array_equal(result.poisoned.labels, small_cora.labels)
        np.testing.assert_array_equal(result.poisoned.train_mask, small_cora.train_mask)


class TestSingletonProtection:
    def test_identity_features_never_fully_wiped(self, small_polblogs):
        # Budget large enough to delete every self-id bit if unprotected.
        result = PEEGA(seed=0).attack(
            small_polblogs, budget=AttackBudget(total=float(small_polblogs.num_nodes + 10))
        )
        assert (result.poisoned.features.sum(axis=1) > 0).all()

    def test_no_node_loses_last_bit(self, small_cora):
        result = PEEGA(attack_topology=False, seed=0).attack(
            small_cora, perturbation_rate=0.2
        )
        assert (result.poisoned.features.sum(axis=1) > 0).all()


class TestConstraints:
    def test_attacker_nodes_respected(self, small_cora):
        nodes = AttackerNodes(nodes=np.arange(10), mode="any")
        result = PEEGA(attacker_nodes=nodes, seed=0).attack(
            small_cora, perturbation_rate=0.05
        )
        accessible = set(range(10))
        for flip in result.edge_flips:
            assert flip.u in accessible or flip.v in accessible
        for flip in result.feature_flips:
            assert flip.node in accessible

    def test_attacker_nodes_both_mode(self, small_cora):
        nodes = AttackerNodes(nodes=np.arange(15), mode="both")
        result = PEEGA(attacker_nodes=nodes, seed=0).attack(
            small_cora, perturbation_rate=0.03
        )
        for flip in result.edge_flips:
            assert flip.u < 15 and flip.v < 15

    def test_restricted_attack_is_weaker_objective(self, small_cora):
        # Greedy is not globally optimal, so compare with a small tolerance:
        # restricting the candidate set cannot *systematically* help.
        free = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.05)
        constrained = PEEGA(
            attacker_nodes=AttackerNodes(nodes=np.arange(8)), seed=0
        ).attack(small_cora, perturbation_rate=0.05)
        assert constrained.objective_trace[-1] <= free.objective_trace[-1] * 1.05


class TestGreedyMechanics:
    def test_objective_trace_monotone_increasing(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.05)
        trace = result.objective_trace
        assert len(trace) >= 2
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:])), trace

    def test_no_duplicate_flips(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.1)
        edge_keys = [(min(f.u, f.v), max(f.u, f.v)) for f in result.edge_flips]
        assert len(edge_keys) == len(set(edge_keys))
        feat_keys = [(f.node, f.dim) for f in result.feature_flips]
        assert len(feat_keys) == len(set(feat_keys))

    def test_deterministic(self, small_cora):
        a = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.05)
        b = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.05)
        assert a.edge_flips == b.edge_flips
        assert a.feature_flips == b.feature_flips

    def test_flips_per_step_budget_respected(self, small_cora):
        result = PEEGA(flips_per_step=4, seed=0).attack(small_cora, perturbation_rate=0.1)
        result.verify_budget()
        assert result.num_perturbations == round(0.1 * small_cora.num_edges)

    def test_flips_per_step_validation(self):
        with pytest.raises(ConfigError):
            PEEGA(flips_per_step=0)

    def test_runtime_recorded(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.02)
        assert result.runtime_seconds > 0

    def test_surrogate_layer_variants_run(self, small_cora):
        for layers in (1, 3):
            result = PEEGA(layers=layers, seed=0).attack(small_cora, perturbation_rate=0.02)
            assert result.num_perturbations > 0
