"""Resource governance: budgets, the unified cache store, and ladders.

Covers the contracts in docs/resource_governance.md:

* :class:`MemoryBudget` watermarks fire on upward crossings and re-arm on
  the way down (scripted RSS readers — no real allocation games).
* :class:`KeyedArtifactStore` enforces per-store and *global* byte budgets
  LRU-first, never evicts pinned entries, and spills/reloads when told to.
* ``require_free_disk`` / ``with_disk_retry`` turn ENOSPC into structured,
  retryable :class:`ResourceError` s — chaos-driven by ``disk_full`` rules.
* The degradation ladders actually recover: an OOM-killed ``--jobs N``
  worker is detected, its trial requeued one rung down, and the finished
  journal is bit-identical to a fault-free serial run; PRBCD/GRBCD shrink
  their candidate block deterministically on an in-attack ``MemoryError``.
"""

from __future__ import annotations

import os
import pickle
import warnings

import numpy as np
import pytest

from repro.attacks import GRBCD, PRBCD
from repro.attacks.base import AttackBudget
from repro.datasets import load_dataset
from repro.errors import CapacityWarning, ConfigError, DegradedWarning, ResourceError
from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    SweepCheckpoint,
    TrialPolicy,
    TrialSupervisor,
    make_executor,
)
from repro.utils import faults
from repro.utils.faults import FaultInjector
from repro.utils.keystore import (
    KeyedArtifactStore,
    cache_report,
    clear_all_stores,
    estimate_nbytes,
    evict_fraction,
    set_cache_bytes,
)
from repro.utils.resources import (
    MemoryBudget,
    active_budget,
    budget_check,
    budget_from_env,
    degraded_footprint,
    format_bytes,
    free_disk_bytes,
    parse_bytes,
    require_free_disk,
    with_disk_retry,
)

CONFIG = ExperimentScale(scale=0.04, seeds=2, rate=0.1)
ATTACKERS = ["PEEGA"]
DEFENDERS = ["GCN"]
JOBS = 2


def run_sweep(jobs=1, checkpoint=None, fault_spec=None, max_attempts=2):
    executor = make_executor(jobs)
    runner = ExperimentRunner(
        CONFIG,
        supervisor=TrialSupervisor(TrialPolicy(max_attempts=max_attempts)),
        checkpoint=checkpoint,
        executor=executor,
    )
    injector = FaultInjector(FaultInjector.parse(fault_spec)) if fault_spec else None
    with faults.active(injector):
        table = runner.accuracy_table("cora", attackers=ATTACKERS, defenders=DEFENDERS)
    return table, executor, injector


def cells_of(table):
    return {
        (row, name): (cell.values if cell is not None else None)
        for row, columns in table.rows.items()
        for name, cell in columns.items()
    }


def journal_records(checkpoint_dir):
    import json

    cells, failures = [], []
    for line in (checkpoint_dir / "journal.jsonl").read_text().splitlines():
        record = json.loads(line)
        if record["kind"] == "cell":
            cells.append(
                (record["attacker"], record["defender"], tuple(record["values"]))
            )
        else:
            failures.append(
                (record["attacker"], record.get("defender"), record["error_type"])
            )
    return sorted(cells), sorted(failures)


# ---------------------------------------------------------------------------
# Byte parsing


class TestByteParsing:
    def test_suffixes(self):
        assert parse_bytes("512") == 512
        assert parse_bytes("2k") == 2048
        assert parse_bytes("1.5M") == int(1.5 * 1024**2)
        assert parse_bytes("2GB") == 2 * 1024**3
        assert parse_bytes(4096) == 4096

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_bytes("lots")
        with pytest.raises(ConfigError):
            parse_bytes("-1M")

    def test_format_roundtrip_scale(self):
        assert format_bytes(512) == "512 B"
        assert "GiB" in format_bytes(3 * 1024**3)


# ---------------------------------------------------------------------------
# Memory budget


class TestMemoryBudget:
    def test_watermark_fires_and_rearms(self):
        readings = iter([10, 85, 90, 50, 85])
        budget = MemoryBudget(limit_bytes=100, reader=lambda: next(readings))
        fired = []
        budget.add_watermark(0.8, lambda rss, limit: fired.append((rss, limit)))
        for _ in range(5):
            budget.check()
        # Fires crossing 80 upward (85), stays silent at 90, re-arms at 50,
        # fires again at the second 85.
        assert fired == [(85, 100), (85, 100)]
        assert budget.peak_bytes == 90

    def test_enforce_raises_structured_error(self):
        budget = MemoryBudget(limit_bytes=100, enforce=True, reader=lambda: 150)
        with pytest.raises(ResourceError) as info:
            budget.check("scoring")
        assert info.value.resource == "memory"
        assert info.value.available_bytes == 100
        assert "scoring" in str(info.value)

    def test_enforce_spares_when_watermark_frees_memory(self):
        # The watermark (e.g. cache eviction) releases memory; the enforce
        # re-sample must observe that and not raise.
        state = {"rss": 150}
        budget = MemoryBudget(
            limit_bytes=100, enforce=True, reader=lambda: state["rss"]
        )
        budget.add_watermark(0.8, lambda rss, limit: state.update(rss=40))
        assert budget.check() == 40

    def test_ambient_budget_check(self):
        budget = MemoryBudget(limit_bytes=100, reader=lambda: 7)
        assert budget_check() is None  # ungoverned: no-op
        with active_budget(budget):
            assert budget_check("anywhere") == 7

    def test_budget_from_env(self):
        assert budget_from_env({}) is None
        assert budget_from_env({"REPRO_MEMORY_BUDGET": "0"}) is None
        budget = budget_from_env({"REPRO_MEMORY_BUDGET": "2G"})
        assert budget.limit_bytes == 2 * 1024**3

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigError):
            MemoryBudget(limit_bytes=0)


# ---------------------------------------------------------------------------
# Unified artifact store


@pytest.fixture(autouse=True)
def _no_global_cache_budget():
    """Tests below set the global budget; always lift it afterwards."""
    yield
    set_cache_bytes(None)


def _array(kib: int) -> np.ndarray:
    return np.zeros(kib * 128, dtype=np.float64)  # kib KiB exactly


class TestKeyedArtifactStore:
    def test_byte_budget_evicts_lru_first(self):
        store = KeyedArtifactStore("t-bytes", capacity_bytes=3 * 1024)
        store.put("a", _array(1))
        store.put("b", _array(1))
        store.put("c", _array(1))
        store.get("a")  # refresh: b is now the LRU
        store.put("d", _array(1))
        assert store.keys() == ["c", "a", "d"]
        assert store.total_bytes == 3 * 1024
        assert store.stats()["evictions"] == 1

    def test_pinned_entries_survive_pressure_until_unpinned(self):
        store = KeyedArtifactStore("t-pins", capacity_bytes=1024)
        store.put("precious", _array(2), pinned=True)  # over budget but pinned
        store.put("bulk", _array(1))
        assert "precious" in store
        assert store.stats()["rejected_pins"] > 0
        store.unpin("precious")
        store.put("more", _array(1))
        assert "precious" not in store

    def test_global_budget_evicts_across_stores(self):
        # Stores from earlier tests (view cache, SGC memo, live runners'
        # poison stores) may still hold bytes — possibly pinned — that
        # count against the tiny budget below; start from a clean slate.
        clear_all_stores()
        first = KeyedArtifactStore("t-global-a")
        second = KeyedArtifactStore("t-global-b")
        first.put("old", _array(2))
        second.put("new", _array(2))
        set_cache_bytes(3 * 1024)
        # The globally oldest tick lives in `first` — it pays the eviction.
        assert "old" not in first
        assert "new" in second
        report = cache_report()
        assert report["budget_bytes"] == 3 * 1024
        assert report["total_bytes"] <= 3 * 1024

    def test_spill_and_reload(self, tmp_path):
        store = KeyedArtifactStore(
            "t-spill",
            max_entries=1,
            spill_dir=tmp_path,
            dump=lambda value, path: path.write_bytes(pickle.dumps(value)),
            load=lambda path: pickle.loads(path.read_bytes()),
        )
        store.put("x", np.arange(8))
        store.put("y", np.arange(8))  # evicts + spills x
        assert store.stats()["spills"] == 1
        assert list(tmp_path.glob("t-spill-*.spill"))
        np.testing.assert_array_equal(store.get("x"), np.arange(8))
        # The spill hit re-admitted x, which in turn evicted + spilled y.
        assert store.stats()["spill_hits"] == 1
        assert store.stats()["spills"] == 2
        assert store.keys() == ["x"] and "y" in store

    def test_evict_fraction_is_the_watermark_callback(self):
        store = KeyedArtifactStore("t-watermark")
        for i in range(4):
            store.put(i, _array(1))
        budget = MemoryBudget(limit_bytes=100, reader=lambda: 90)
        budget.add_watermark(0.8, lambda rss, limit: evict_fraction(1.0))
        budget.check()
        assert len(store) == 0

    def test_estimate_understands_repro_payloads(self, tiny_graph):
        dense = np.zeros((4, 4))
        assert estimate_nbytes(dense) == dense.nbytes
        adjacency = tiny_graph.adjacency.tocsr()
        assert estimate_nbytes(adjacency) == (
            adjacency.data.nbytes
            + adjacency.indices.nbytes
            + adjacency.indptr.nbytes
        )
        assert estimate_nbytes(tiny_graph) > estimate_nbytes(adjacency)


# ---------------------------------------------------------------------------
# Disk preflight + retry


class TestDiskGovernance:
    def test_free_disk_probes_first_existing_ancestor(self, tmp_path):
        assert free_disk_bytes(tmp_path / "not" / "yet" / "made.npz") > 0

    def test_require_free_disk_names_path_and_bytes(self, tmp_path):
        target = tmp_path / "big.npz"
        with pytest.raises(ResourceError) as info:
            require_free_disk(target, 1 << 60)
        assert info.value.resource == "disk"
        assert info.value.path == str(target)
        assert info.value.needed_bytes == 1 << 60

    def test_injected_disk_full(self, tmp_path):
        injector = FaultInjector(FaultInjector.parse("mysite:disk_full"))
        with faults.active(injector):
            with pytest.raises(ResourceError):
                require_free_disk(tmp_path / "x", 1, site="mysite")
            require_free_disk(tmp_path / "x", 1, site="othersite")  # no match

    def test_with_disk_retry_absorbs_transients(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ResourceError("full", resource="disk")
            return "ok"

        naps = []
        assert with_disk_retry(flaky, attempts=3, sleep=naps.append) == "ok"
        assert len(naps) == 2  # exponential backoff, bounded

    def test_with_disk_retry_reraises_persistent(self):
        def always_full():
            raise ResourceError("full", resource="disk")

        with pytest.raises(ResourceError):
            with_disk_retry(always_full, attempts=2, sleep=lambda _: None)


# ---------------------------------------------------------------------------
# Degradation ladder environment semantics


class TestDegradedFootprint:
    def test_level_zero_is_a_noop(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "9")
        with degraded_footprint(0):
            assert os.environ["OMP_NUM_THREADS"] == "9"

    def test_rungs_shrink_geometrically_and_restore(self, monkeypatch):
        monkeypatch.delenv("REPRO_BLOCK_SIZE", raising=False)
        monkeypatch.setenv("REPRO_ENGINE", "fused")
        with degraded_footprint(1):
            assert os.environ["OMP_NUM_THREADS"] == "1"
            assert os.environ["REPRO_BLOCK_SIZE"] == "100000"
            assert os.environ["REPRO_ENGINE"] == "fused"  # rung 1: engine kept
        with degraded_footprint(2):
            assert os.environ["REPRO_BLOCK_SIZE"] == "50000"
            assert os.environ["REPRO_ENGINE"] == "autodiff"
        assert "REPRO_BLOCK_SIZE" not in os.environ
        assert os.environ["REPRO_ENGINE"] == "fused"

    def test_divides_an_operator_set_base(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "1000")
        with degraded_footprint(3):
            assert os.environ["REPRO_BLOCK_SIZE"] == "125"
        assert os.environ["REPRO_BLOCK_SIZE"] == "1000"


# ---------------------------------------------------------------------------
# Jobs clamp


class TestJobsClamp:
    def test_oversubscription_clamped_with_warning(self):
        with pytest.warns(CapacityWarning):
            executor = make_executor(8, total_cores=4)
        assert executor.jobs == 4

    def test_never_clamped_below_a_real_pool(self):
        # Process isolation (and dead-worker recovery) is a semantic choice:
        # on a 1-core box jobs=2 stays a pool, jobs>2 clamps to 2.
        with warnings.catch_warnings():
            warnings.simplefilter("error", CapacityWarning)
            assert make_executor(2, total_cores=1).jobs == 2
        with pytest.warns(CapacityWarning):
            assert make_executor(5, total_cores=1).jobs == 2

    def test_within_capacity_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", CapacityWarning)
            assert make_executor(3, total_cores=8).jobs == 3


# ---------------------------------------------------------------------------
# In-attack MemoryError: the candidate block shrinks deterministically


class TestBlockAttackDegradation:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("cora", scale=0.05)

    def _attack(self, cls, graph, spec=None, **kwargs):
        attacker = cls(block_size=64, seed=7, **kwargs)
        budget = AttackBudget(total=6)
        if spec is None:
            return attacker.attack(graph, budget)
        injector = FaultInjector(FaultInjector.parse(spec))
        with faults.active(injector), pytest.warns(DegradedWarning):
            return attacker.attack(graph, budget)

    @pytest.mark.parametrize("cls", [GRBCD, PRBCD], ids=["grbcd", "prbcd"])
    def test_oom_shrinks_block_and_finishes(self, cls, graph):
        clean = self._attack(cls, graph)
        degraded = self._attack(cls, graph, spec="rbcd:oom:at=2")
        assert len(degraded.edge_flips) == len(clean.edge_flips) == 6

    @pytest.mark.parametrize("cls", [GRBCD, PRBCD], ids=["grbcd", "prbcd"])
    def test_degraded_run_is_deterministic(self, cls, graph):
        first = self._attack(cls, graph, spec="rbcd:oom:at=2")
        second = self._attack(cls, graph, spec="rbcd:oom:at=2")
        assert [(f.u, f.v) for f in first.edge_flips] == [
            (f.u, f.v) for f in second.edge_flips
        ]

    def test_exhausted_ladder_propagates(self, graph):
        attacker = GRBCD(block_size=4, seed=7)
        injector = FaultInjector(FaultInjector.parse("rbcd:oom:times=99"))
        with faults.active(injector), warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedWarning)
            with pytest.raises(MemoryError):
                attacker.attack(graph, AttackBudget(total=6))

    def test_block_size_restored_between_runs(self, graph):
        attacker = PRBCD(block_size=64, seed=7, epochs=2)
        injector = FaultInjector(FaultInjector.parse("rbcd:oom:at=1"))
        with faults.active(injector), pytest.warns(DegradedWarning):
            attacker.attack(graph, AttackBudget(total=4))
        clean_again = attacker.attack(graph, AttackBudget(total=4))
        reference = PRBCD(block_size=64, seed=7, epochs=2).attack(
            graph, AttackBudget(total=4)
        )
        # RNG state differs after the degraded run, but the *configured*
        # block is back: a fresh attacker with the same seed matches shape.
        assert attacker._active_block == 64
        assert len(clean_again.edge_flips) == len(reference.edge_flips)


# ---------------------------------------------------------------------------
# Sweep-level ladders: disk_full and OOM-killed workers


class TestSweepDiskFaults:
    def test_transient_journal_disk_full_absorbed(self, tmp_path):
        clean_dir, faulted_dir = tmp_path / "clean", tmp_path / "faulted"
        reference, _, _ = run_sweep(jobs=1, checkpoint=SweepCheckpoint(clean_dir))
        table, _, _ = run_sweep(
            jobs=1,
            checkpoint=SweepCheckpoint(faulted_dir),
            fault_spec="journal_disk:disk_full:times=1",
        )
        assert cells_of(table) == cells_of(reference)
        assert journal_records(clean_dir) == journal_records(faulted_dir)

    def test_transient_poison_disk_full_absorbed(self, tmp_path):
        clean_dir, faulted_dir = tmp_path / "clean", tmp_path / "faulted"
        reference, _, _ = run_sweep(jobs=1, checkpoint=SweepCheckpoint(clean_dir))
        table, _, _ = run_sweep(
            jobs=1,
            checkpoint=SweepCheckpoint(faulted_dir),
            fault_spec="poison_disk:disk_full:times=1",
        )
        assert cells_of(table) == cells_of(reference)
        assert journal_records(clean_dir) == journal_records(faulted_dir)
        # The poison archive still landed after the retry.
        assert list(faulted_dir.glob("poison_*.npz"))

    def test_persistent_disk_full_raises_structured(self, tmp_path):
        with pytest.raises(ResourceError) as info:
            run_sweep(
                jobs=1,
                checkpoint=SweepCheckpoint(tmp_path / "ckpt"),
                fault_spec="journal_disk:disk_full",
            )
        assert info.value.resource == "disk"
        assert "journal" in str(info.value.path)


class TestWorkerDeathRecovery:
    def test_oomkilled_worker_requeued_bit_identical(self, tmp_path):
        """Satellite 4: kill a pool worker, recover on the ladder, and the
        finished journal is bit-identical to a fault-free serial run."""
        serial_dir = tmp_path / "serial"
        reference, _, _ = run_sweep(jobs=1, checkpoint=SweepCheckpoint(serial_dir))

        parallel_dir = tmp_path / "parallel"
        with pytest.warns(DegradedWarning):
            table, _, _ = run_sweep(
                jobs=JOBS,
                checkpoint=SweepCheckpoint(parallel_dir),
                fault_spec="defender:oomkill:attacker=Clean:defender=GCN:seed=0",
            )
        assert table.failures == []
        assert cells_of(table) == cells_of(reference)
        assert journal_records(serial_dir) == journal_records(parallel_dir)

    def test_repeatedly_killed_trial_becomes_structured_failure(self):
        # A pool break cannot attribute guilt, so every co-resident trial
        # is charged a kill; the guarantee is that the sweep *terminates*
        # with structured ladder-exhausted failures instead of hanging or
        # crashing the parent.
        spec = "defender:oomkill:times=99:attacker=Clean:defender=GCN:seed=0"
        with pytest.warns(DegradedWarning):
            table, _, _ = run_sweep(jobs=JOBS, fault_spec=spec)
        assert table.failures  # the poisoned trial is always among them
        assert any(
            (f.key.attacker, f.key.defender, f.key.seed) == ("Clean", "GCN", 0)
            for f in table.failures
        )
        assert all("died" in f.message for f in table.failures)

    def test_in_trial_memory_error_climbs_supervisor_ladder(self):
        # A MemoryError *inside* a trial (not a kill) retries one rung down
        # via the supervisor, and the retried value is kept.
        spec = "defender:oom:times=1:attacker=Clean:defender=GCN:seed=0"
        with pytest.warns(DegradedWarning):
            table, _, _ = run_sweep(jobs=1, fault_spec=spec, max_attempts=3)
        assert table.failures == []
        assert table.rows["Clean"]["GCN"] is not None
