"""Optimizer behaviour: convergence on quadratics, weight decay, validation."""

import numpy as np
import pytest

from repro.tensor import SGD, Adam, Tensor


def quadratic_loss(param: Tensor, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Tensor(np.zeros(3), requires_grad=True)
        target = np.array([1.0, -2.0, 0.5])
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(param, target).backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Tensor(np.zeros(3), requires_grad=True)
            target = np.array([5.0, 5.0, 5.0])
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(param, target).backward()
                opt.step()
            return np.abs(param.data - target).sum()

        assert run(0.9) < run(0.0)

    def test_missing_grad_treated_as_zero(self):
        param = Tensor(np.ones(2), requires_grad=True)
        SGD([param], lr=0.5).step()
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Tensor(np.full(4, 10.0), requires_grad=True)
        target = np.array([0.0, 1.0, 2.0, 3.0])
        opt = Adam([param], lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(param, target).backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        def solve(weight_decay):
            param = Tensor(np.zeros(1), requires_grad=True)
            opt = Adam([param], lr=0.05, weight_decay=weight_decay)
            for _ in range(500):
                opt.zero_grad()
                quadratic_loss(param, np.array([2.0])).backward()
                opt.step()
            return param.data[0]

        assert abs(solve(1.0)) < abs(solve(0.0))

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first update ≈ lr * sign(grad).
        param = Tensor(np.array([0.0]), requires_grad=True)
        opt = Adam([param], lr=0.1)
        opt.zero_grad()
        (param * 4.0).sum().backward()
        opt.step()
        assert param.data[0] == pytest.approx(-0.1, rel=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.9))


class TestValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.1, weight_decay=-1.0)
