"""GCN normalization: sparse/dense equivalence and structural properties
(hypothesis generates random symmetric graphs)."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import add_self_loops, gcn_normalize, gcn_normalize_dense
from repro.tensor import Tensor


def random_adjacency(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    upper = (rng.random((n, n)) < density).astype(float)
    adj = np.triu(upper, k=1)
    return adj + adj.T


adjacency_strategy = st.tuples(
    st.integers(3, 12), st.floats(0.1, 0.8), st.integers(0, 2**31 - 1)
).map(lambda args: random_adjacency(*args))


class TestSparseNormalize:
    @given(adjacency_strategy)
    @settings(max_examples=25, deadline=None)
    def test_symmetric_output(self, adj):
        normalized = gcn_normalize(sp.csr_matrix(adj)).toarray()
        np.testing.assert_allclose(normalized, normalized.T, atol=1e-12)

    @given(adjacency_strategy)
    @settings(max_examples=25, deadline=None)
    def test_spectral_radius_at_most_one(self, adj):
        normalized = gcn_normalize(sp.csr_matrix(adj)).toarray()
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_known_value_single_edge(self):
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        normalized = gcn_normalize(adj).toarray()
        # With self-loops both degrees are 2 → every entry is 1/2.
        np.testing.assert_allclose(normalized, np.full((2, 2), 0.5))

    def test_isolated_node_row_is_self_loop_only(self):
        adj = sp.csr_matrix((3, 3))
        normalized = gcn_normalize(adj).toarray()
        np.testing.assert_allclose(normalized, np.eye(3))

    def test_no_self_loops_mode(self):
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        normalized = gcn_normalize(adj, add_loops=False).toarray()
        np.testing.assert_allclose(normalized, np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_zero_degree_without_loops_yields_zero_row(self):
        adj = sp.csr_matrix((2, 2))
        normalized = gcn_normalize(adj, add_loops=False).toarray()
        np.testing.assert_allclose(normalized, np.zeros((2, 2)))


class TestDenseMatchesSparse:
    @given(adjacency_strategy)
    @settings(max_examples=25, deadline=None)
    def test_equivalence(self, adj):
        sparse_result = gcn_normalize(sp.csr_matrix(adj)).toarray()
        dense_result = gcn_normalize_dense(adj).data
        np.testing.assert_allclose(sparse_result, dense_result, atol=1e-6)

    def test_gradient_flows_through_degrees(self):
        adj = random_adjacency(5, 0.5, seed=0)
        tensor = Tensor(adj, requires_grad=True)
        gcn_normalize_dense(tensor).sum().backward()
        assert tensor.grad is not None
        assert np.isfinite(tensor.grad).all()
        # Gradient must be non-trivial (normalization depends on every entry).
        assert np.abs(tensor.grad).max() > 0


class TestSelfLoops:
    def test_add_self_loops_weight(self):
        adj = sp.csr_matrix((3, 3))
        out = add_self_loops(adj, weight=4.0).toarray()
        np.testing.assert_allclose(out, 4.0 * np.eye(3))

    def test_add_self_loops_preserves_edges(self):
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        out = add_self_loops(adj).toarray()
        np.testing.assert_allclose(out, np.array([[1.0, 1.0], [1.0, 1.0]]))


class TestIsolatedNodeConvention:
    """Sparse, dense, and cached normalization agree bit-for-bit on a graph
    with an isolated node (the zero-row convention — no eps^{-1/2} blow-up)."""

    def _graph_with_isolate(self):
        # Node 3 is isolated; {0,1,2} form a triangle.
        adj = np.zeros((4, 4))
        for u, v in [(0, 1), (0, 2), (1, 2)]:
            adj[u, v] = adj[v, u] = 1.0
        return adj

    def test_sparse_zero_row_without_loops(self):
        adj = self._graph_with_isolate()
        normalized = gcn_normalize(sp.csr_matrix(adj), add_loops=False).toarray()
        assert np.isfinite(normalized).all()
        np.testing.assert_array_equal(normalized[3], np.zeros(4))
        np.testing.assert_array_equal(normalized[:, 3], np.zeros(4))

    def test_dense_zero_row_without_loops(self):
        adj = self._graph_with_isolate()
        normalized = gcn_normalize_dense(adj, add_loops=False).data
        assert np.isfinite(normalized).all()
        np.testing.assert_array_equal(normalized[3], np.zeros(4))

    def test_sparse_dense_bit_identical(self):
        adj = self._graph_with_isolate()
        for add_loops in (False, True):
            sparse_result = gcn_normalize(sp.csr_matrix(adj), add_loops=add_loops).toarray()
            dense_result = gcn_normalize_dense(adj, add_loops=add_loops).data
            np.testing.assert_array_equal(sparse_result, dense_result)

    def test_cache_matches_sparse_bit_identical(self):
        from repro.graph import Graph
        from repro.surrogate import PropagationCache

        adj = self._graph_with_isolate()
        graph = Graph(
            adjacency=sp.csr_matrix(adj),
            features=np.eye(4),
            name="isolate",
        )
        cached = PropagationCache(graph).normalized.toarray()
        sparse_result = gcn_normalize(graph.adjacency, add_loops=True).toarray()
        dense_result = gcn_normalize_dense(adj, add_loops=True).data
        np.testing.assert_array_equal(cached, sparse_result)
        np.testing.assert_array_equal(cached, dense_result)

    def test_dense_gradient_finite_with_isolate(self):
        adj = self._graph_with_isolate()
        tensor = Tensor(adj, requires_grad=True)
        gcn_normalize_dense(tensor, add_loops=False).sum().backward()
        assert np.isfinite(tensor.grad).all()
