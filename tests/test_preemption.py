"""Preemptible trials: deadline cancellation, mid-trial resume, heartbeats.

Integration layer for the cooperative-cancellation subsystem
(docs/fault_tolerance.md, "Cancellation, heartbeats, and mid-trial
resume"):

* the supervisor's deadline now *cancels* the trial thread instead of
  abandoning it — no leaked threads, and a deadline-tripped trial resumes
  from its snapshot with every work unit executed exactly once;
* attacker and trainer epoch loops snapshot at their poll sites and
  resume **bit-identically** — flip sequences, objective traces, and
  weight trajectories match an uninterrupted run exactly;
* in parallel sweeps, a worker SIGTERM'd or OOM-killed mid-trial is
  requeued and the finished journal is bit-identical to a fault-free
  serial run; a *hung* worker is detected via heartbeats within twice the
  heartbeat interval, terminated, and requeued;
* the ``table`` CLI exits with ``EXIT_INTERRUPTED`` on SIGTERM and
  ``--resume`` completes the sweep bit-identically.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.attacks import AttackBudget, GRBCD, Metattack, PRBCD
from repro.cli import EXIT_INTERRUPTED
from repro.core import PEEGA
from repro.errors import DeadlineError, DegradedWarning
from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    SweepCheckpoint,
    TrialKey,
    TrialPolicy,
    TrialSupervisor,
    make_executor,
)
from repro.nn import GCN, TrainConfig, train_node_classifier
from repro.utils import cancellation, faults, snapshots
from repro.utils.cancellation import CancelledError, CancelToken, trial_scope
from repro.utils.faults import FaultInjector
from repro.utils.snapshots import TrialSnapshotter

CONFIG = ExperimentScale(scale=0.04, seeds=2, rate=0.1)
KEY = TrialKey("cora", "PEEGA", 0.1, "GCN", 0)


def counting_clock(step=1.0):
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


def run_sweep(
    jobs=1,
    checkpoint=None,
    fault_spec=None,
    heartbeat=None,
    kill_grace=2.0,
    defenders=("GCN",),
):
    executor = make_executor(
        jobs, heartbeat_interval=heartbeat, kill_grace_seconds=kill_grace
    )
    runner = ExperimentRunner(
        CONFIG,
        supervisor=TrialSupervisor(TrialPolicy(max_attempts=2)),
        checkpoint=checkpoint,
        executor=executor,
    )
    injector = FaultInjector(FaultInjector.parse(fault_spec)) if fault_spec else None
    with faults.active(injector):
        return runner.accuracy_table(
            "cora", attackers=["PEEGA"], defenders=list(defenders)
        )


def cells_of(table):
    return {
        (row, name): (cell.values if cell is not None else None)
        for row, columns in table.rows.items()
        for name, cell in columns.items()
    }


def journal_records(checkpoint_dir):
    cells, failures = [], []
    for line in (checkpoint_dir / "journal.jsonl").read_text().splitlines():
        record = json.loads(line)
        if record["kind"] == "cell":
            cells.append(
                (record["attacker"], record["defender"], tuple(record["values"]))
            )
        else:
            failures.append(
                (
                    record["attacker"],
                    record.get("defender"),
                    record.get("seed"),
                    record["attempts"],
                    record["error_type"],
                )
            )
    return sorted(cells), sorted(failures)


def trial_threads():
    return [t for t in threading.enumerate() if t.name.startswith("trial-")]


# ---------------------------------------------------------------------------
# Supervisor: cooperative deadlines


class TestSupervisorDeadline:
    def test_deadline_trip_leaks_no_threads(self):
        """Satellite 1: a deadline trip must not abandon the trial thread.

        The old implementation left the worker thread running forever; the
        token-based one cancels it at its next poll site and joins it.
        """
        baseline = set(threading.enumerate())

        def cooperative(attempt):
            while True:
                time.sleep(0.02)
                cancellation.checkpoint("loop")

        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=1, deadline_seconds=0.2, backoff_seconds=0.0)
        )
        outcome = supervisor.run(KEY, cooperative)
        assert not outcome.ok
        assert outcome.failure.error_type == "DeadlineError"

        deadline = time.monotonic() + 5.0
        while trial_threads() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert trial_threads() == []
        leaked = [
            t
            for t in threading.enumerate()
            if t not in baseline and not t.daemon and t.is_alive()
        ]
        assert leaked == []

    def test_deadline_resume_runs_each_unit_exactly_once(self, tmp_path):
        """A deadline-tripped trial resumes from its snapshot: work units
        completed before the trip are never re-executed."""
        executed = []

        def trial(attempt):
            unit = snapshots.begin_unit("steps")
            resumed = unit.resume_state()
            start = int(resumed[1]["step"]) if resumed is not None else 0
            for step in range(start, 6):
                time.sleep(0.1)
                executed.append(step)
                state = lambda s=step: ({}, {"step": s + 1})
                cancellation.checkpoint("steps", unit=unit, state=state)
            return "done"

        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=4, deadline_seconds=0.35, backoff_seconds=0.0)
        )
        sink = TrialSnapshotter(tmp_path / "snap.npz", interval=0)
        with trial_scope(sink=sink):
            outcome = supervisor.run(KEY, trial)
        assert outcome.ok and outcome.value == "done"
        assert outcome.attempts > 1  # the deadline really tripped
        assert executed == list(range(6))  # exactly once each, in order
        assert not (tmp_path / "snap.npz").exists()  # discarded on success

    def test_failed_attempt_discards_snapshot(self, tmp_path):
        """A diverging (non-resumable) failure must not leak its snapshot
        into the reseeded retry — only deadline/OOM interruptions resume."""
        calls = []

        def trial(attempt):
            unit = snapshots.begin_unit("steps")
            calls.append(unit.resume_state())
            unit.offer(lambda: ({}, {"step": 3}), final=True)
            if len(calls) == 1:
                raise ValueError("diverged")
            return "ok"

        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=2, backoff_seconds=0.0)
        )
        sink = TrialSnapshotter(tmp_path / "snap.npz", interval=0)
        with trial_scope(sink=sink):
            outcome = supervisor.run(KEY, trial)
        assert outcome.ok
        assert calls == [None, None]  # retry started fresh, not from snapshot


# ---------------------------------------------------------------------------
# Attack / fit loops: interrupt at a poll site, resume bit-identically


def flips_of(result):
    return [(f.u, f.v) for f in result.edge_flips]


class TestBitIdenticalResume:
    def _interrupt_and_resume(self, tmp_path, run, polls):
        """Run ``run()`` once clean, once interrupted after ``polls`` poll
        sites then resumed; return (reference, resumed) results."""
        reference = run()

        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        token = CancelToken(deadline_seconds=polls, clock=counting_clock())
        with trial_scope(token=token, sink=sink):
            with pytest.raises(CancelledError):
                run()

        resumed_sink = TrialSnapshotter(path, interval=0)
        assert resumed_sink.start_attempt(0) == 0
        assert resumed_sink.resuming()
        with trial_scope(token=CancelToken(), sink=resumed_sink):
            resumed = run()
        return reference, resumed

    def _assert_attacks_match(self, reference, resumed):
        assert flips_of(reference) == flips_of(resumed)
        np.testing.assert_array_equal(
            np.asarray(reference.objective_trace),
            np.asarray(resumed.objective_trace),
        )
        np.testing.assert_array_equal(
            reference.poisoned.adjacency.toarray(),
            resumed.poisoned.adjacency.toarray(),
        )

    def test_grbcd_sampled(self, tmp_path, small_cora):
        run = lambda: GRBCD(lam=0.0, p=2, block_size=350, seed=3).attack(
            small_cora, AttackBudget(total=10.0)
        )
        self._assert_attacks_match(*self._interrupt_and_resume(tmp_path, run, 4))

    def test_grbcd_exhaustive(self, tmp_path, tiny_graph):
        run = lambda: GRBCD(lam=0.0, p=2, block_size=10**6, seed=3).attack(
            tiny_graph, AttackBudget(total=4.0)
        )
        self._assert_attacks_match(*self._interrupt_and_resume(tmp_path, run, 2))

    def test_prbcd(self, tmp_path, small_cora):
        run = lambda: PRBCD(lam=0.0, p=2, block_size=60, epochs=6, seed=9).attack(
            small_cora, AttackBudget(total=8.0)
        )
        self._assert_attacks_match(*self._interrupt_and_resume(tmp_path, run, 3))

    def test_metattack(self, tmp_path, small_cora):
        run = lambda: Metattack(inner_steps=3, seed=0).attack(
            small_cora, perturbation_rate=0.05
        )
        self._assert_attacks_match(*self._interrupt_and_resume(tmp_path, run, 3))

    def test_metattack_features(self, tmp_path, small_cora):
        run = lambda: Metattack(
            inner_steps=3, attack_features=True, seed=0
        ).attack(small_cora, perturbation_rate=0.05)
        self._assert_attacks_match(*self._interrupt_and_resume(tmp_path, run, 3))

    def test_peega(self, tmp_path, small_cora):
        run = lambda: PEEGA(seed=0).attack(small_cora, perturbation_rate=0.08)
        self._assert_attacks_match(*self._interrupt_and_resume(tmp_path, run, 3))

    def test_trainer_weight_trajectory(self, tmp_path, small_cora):
        def run():
            model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
            result = train_node_classifier(
                model, small_cora, TrainConfig(epochs=40, patience=40)
            )
            return result

        reference, resumed = self._interrupt_and_resume(tmp_path, run, 12)
        assert reference.train_losses == resumed.train_losses
        assert reference.val_accuracies == resumed.val_accuracies
        assert reference.epochs_run == resumed.epochs_run
        assert reference.best_val_accuracy == resumed.best_val_accuracy
        assert reference.test_accuracy == resumed.test_accuracy
        for ours, theirs in zip(
            reference.model.parameters(), resumed.model.parameters()
        ):
            np.testing.assert_array_equal(ours.data, theirs.data)


# ---------------------------------------------------------------------------
# Parallel sweeps: worker preemption and hang detection


class TestParallelPreemption:
    def test_sigterm_mid_attack_resumes_bit_identical(self, tmp_path):
        """Satellite 3: SIGTERM a worker mid-attack; the trial snapshots at
        the signal, is requeued, resumes, and the merged journal is
        bit-identical to a fault-free serial run."""
        serial_dir = tmp_path / "serial"
        reference = run_sweep(jobs=1, checkpoint=SweepCheckpoint(serial_dir))

        parallel_dir = tmp_path / "parallel"
        with pytest.warns(DegradedWarning):
            table = run_sweep(
                jobs=2,
                checkpoint=SweepCheckpoint(parallel_dir),
                fault_spec="peega:sigterm:times=1:iteration=1",
            )
        assert table.failures == []
        assert cells_of(table) == cells_of(reference)
        assert journal_records(serial_dir) == journal_records(parallel_dir)

    def test_sigterm_mid_fit_resumes_bit_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        reference = run_sweep(jobs=1, checkpoint=SweepCheckpoint(serial_dir))

        parallel_dir = tmp_path / "parallel"
        with pytest.warns(DegradedWarning):
            table = run_sweep(
                jobs=2,
                checkpoint=SweepCheckpoint(parallel_dir),
                # at=10 is epoch 5: the trainer site's invocation counter
                # advances twice per epoch (perturb + corrupt hooks).
                fault_spec="trainer:sigterm:times=1:at=10",
            )
        assert table.failures == []
        assert cells_of(table) == cells_of(reference)
        assert journal_records(serial_dir) == journal_records(parallel_dir)

    def test_oomkill_mid_attack_resumes_bit_identical(self, tmp_path):
        """An OOM-killed worker dies with *no* final snapshot offer; resume
        starts from the last throttled snapshot (or scratch) and must still
        reproduce the serial run bit-for-bit."""
        serial_dir = tmp_path / "serial"
        reference = run_sweep(jobs=1, checkpoint=SweepCheckpoint(serial_dir))

        parallel_dir = tmp_path / "parallel"
        with pytest.warns(DegradedWarning):
            table = run_sweep(
                jobs=2,
                checkpoint=SweepCheckpoint(parallel_dir),
                fault_spec="peega:oomkill:times=1:iteration=1",
            )
        assert table.failures == []
        assert cells_of(table) == cells_of(reference)
        assert journal_records(serial_dir) == journal_records(parallel_dir)

    def test_hung_worker_detected_and_requeued(self, tmp_path):
        """A worker that stops polling (30s hang at an attack epoch) must be
        detected by heartbeat within ~2x the interval, terminated, and its
        trial requeued — the sweep finishes long before the hang would."""
        serial_dir = tmp_path / "serial"
        reference = run_sweep(jobs=1, checkpoint=SweepCheckpoint(serial_dir))

        parallel_dir = tmp_path / "parallel"
        started = time.monotonic()
        with pytest.warns(DegradedWarning, match="heartbeat"):
            table = run_sweep(
                jobs=2,
                checkpoint=SweepCheckpoint(parallel_dir),
                fault_spec="peega:hang:seconds=30:times=1",
                heartbeat=0.2,
                kill_grace=0.2,
            )
        elapsed = time.monotonic() - started
        assert elapsed < 25.0  # detection, not the 30s hang, set the pace
        assert table.failures == []
        assert cells_of(table) == cells_of(reference)
        assert journal_records(serial_dir) == journal_records(parallel_dir)


# ---------------------------------------------------------------------------
# CLI: graceful shutdown and resume (satellite 2)


CLI_ARGS = [
    "table", "cora", "--scale", "0.04", "--seeds", "2",
    "--attackers", "PEEGA", "--defenders", "GCN", "--jobs", "2",
]


def cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_FAULTS", None)
    env.update(extra)
    return env


class TestGracefulShutdownCLI:
    def test_sigterm_then_resume_bit_identical(self, tmp_path):
        reference_dir = tmp_path / "reference"
        done = subprocess.run(
            [sys.executable, "-m", "repro", *CLI_ARGS,
             "--checkpoint-dir", str(reference_dir)],
            cwd="/root/repo", env=cli_env(), capture_output=True, text=True,
            timeout=300,
        )
        assert done.returncode == 0, done.stderr

        interrupted_dir = tmp_path / "interrupted"
        # Stretch every trainer epoch so SIGTERM reliably lands mid-sweep.
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *CLI_ARGS,
             "--checkpoint-dir", str(interrupted_dir)],
            cwd="/root/repo",
            env=cli_env(REPRO_FAULTS="trainer:hang:seconds=0.2:times=10000"),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            time.sleep(5.0)
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        except Exception:
            proc.kill()
            raise
        if proc.returncode == 0:
            pytest.skip("sweep finished before the signal landed")
        assert proc.returncode == EXIT_INTERRUPTED, err
        assert "interrupted" in err and "--resume" in err

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", *CLI_ARGS,
             "--checkpoint-dir", str(interrupted_dir), "--resume"],
            cwd="/root/repo", env=cli_env(), capture_output=True, text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert journal_records(reference_dir) == journal_records(interrupted_dir)
