"""Shared fixtures: small deterministic graphs used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import load_dataset, stratified_split
from repro.datasets.synthetic import SyntheticSpec, generate_graph
from repro.graph import Graph


@pytest.fixture
def tiny_graph() -> Graph:
    """A hand-built 6-node, 2-class graph with binary features and splits.

    Topology: two triangles {0,1,2} and {3,4,5} joined by the edge (2,3).
    Classes: 0 for the first triangle, 1 for the second.
    """
    edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]
    n = 6
    adjacency = sp.lil_matrix((n, n))
    for u, v in edges:
        adjacency[u, v] = 1.0
        adjacency[v, u] = 1.0
    features = np.zeros((n, 4))
    features[:3, 0] = 1.0
    features[:3, 1] = 1.0
    features[3:, 2] = 1.0
    features[3:, 3] = 1.0
    labels = np.array([0, 0, 0, 1, 1, 1])
    train = np.array([True, False, False, True, False, False])
    val = np.array([False, True, False, False, True, False])
    test = ~(train | val)
    return Graph(
        adjacency=adjacency.tocsr(),
        features=features,
        labels=labels,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        name="tiny",
    )


@pytest.fixture(scope="session")
def small_cora() -> Graph:
    """A small (~110-node) Cora-like graph for integration tests."""
    spec = SyntheticSpec(
        num_nodes=110,
        num_edges=230,
        num_classes=4,
        feature_dim=200,
        homophily=0.8,
        feature_signal=0.75,
        hard_fraction=0.35,
        hard_mix=0.85,
    )
    graph = generate_graph(spec, seed=7, name="small-cora")
    return stratified_split(graph, seed=7)


@pytest.fixture(scope="session")
def small_polblogs() -> Graph:
    """A small identity-feature graph (Polblogs regime)."""
    spec = SyntheticSpec(
        num_nodes=90,
        num_edges=420,
        num_classes=2,
        feature_dim=0,
        homophily=0.9,
        degree_exponent=1.3,
    )
    graph = generate_graph(spec, seed=3, name="small-polblogs")
    return stratified_split(graph, seed=3)
