"""GNAT's probability-averaging forward: exact mathematical properties."""

import numpy as np

from repro.core import GNAT
from repro.graph import Graph
from repro.nn import TrainConfig


class TestProbabilityAveraging:
    def test_output_is_log_probability(self, small_cora):
        """exp(forward output) rows must sum to 1 — the trainer's
        cross-entropy then equals the paper's −ln Z̄[v][y]."""
        defender = GNAT(train_config=TrainConfig(epochs=1, patience=1), seed=0)
        # Reach into the fit to grab one forward pass: reproduce the
        # construction (single epoch keeps it cheap).
        result = defender.fit(small_cora)
        assert 0.0 <= result.test_accuracy <= 1.0

        # Direct check of the math with a fresh instance.
        from repro.core.gnat import _normalize_weighted
        from repro.nn import GCN
        from repro.tensor import Tensor
        from repro.tensor import functional as F

        views = defender.build_views(small_cora)
        operators = [_normalize_weighted(v) for v in views]
        model = GCN(small_cora.num_features, small_cora.num_classes, dropout=0.0, seed=0)
        model.eval()
        probs = F.softmax(model.forward(operators[0], Tensor(small_cora.features)), axis=1)
        for op in operators[1:]:
            probs = probs + F.softmax(model.forward(op, Tensor(small_cora.features)), axis=1)
        log_mean = (probs * (1.0 / len(operators)) + 1e-12).log()
        row_mass = np.exp(log_mean.data).sum(axis=1)
        np.testing.assert_allclose(row_mass, np.ones(small_cora.num_nodes), atol=1e-6)

    def test_single_view_reduces_to_plain_gcn_prediction(self, small_cora):
        """With one view and the original adjacency, GNAT-t (k_t=1) predicts
        exactly like the plain GCN trained the same way (same seed), because
        log∘softmax preserves the argmax."""
        from repro.defenses import RawGCN

        gnat = GNAT(views="t", k_t=1, train_config=TrainConfig(epochs=30, patience=30), seed=3)
        gcn = RawGCN(train_config=TrainConfig(epochs=30, patience=30), seed=3)
        acc_gnat = gnat.fit(small_cora).test_accuracy
        acc_gcn = gcn.fit(small_cora).test_accuracy
        assert acc_gnat == acc_gcn
