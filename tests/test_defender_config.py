"""Configuration plumbing of the defender wrappers."""

import numpy as np
import pytest

from repro.core import GNAT
from repro.defenses import GCNSVD, RawGAT, RawGCN, RGCN
from repro.nn import TrainConfig


class TestRawWrappers:
    def test_train_config_respected(self, small_cora):
        config = TrainConfig(epochs=3, patience=3)
        result = RawGCN(train_config=config, seed=0).fit(small_cora)
        assert result.details["epochs"] <= 3

    def test_gat_details(self, small_cora):
        config = TrainConfig(epochs=3, patience=3)
        result = RawGAT(train_config=config, seed=0).fit(small_cora)
        assert result.details["epochs"] <= 3

    def test_distinct_seeds_distinct_results(self, small_cora):
        a = RawGCN(seed=1).fit(small_cora)
        b = RawGCN(seed=2).fit(small_cora)
        # Different init/dropout streams — identical accuracy is possible
        # but identical *validation trajectories* are not guaranteed; assert
        # the cheap thing: results are valid and reproducible per seed.
        a2 = RawGCN(seed=1).fit(small_cora)
        assert a.test_accuracy == a2.test_accuracy
        assert 0.0 <= b.test_accuracy <= 1.0


class TestDefenseResultFields:
    def test_result_fields(self, small_cora):
        result = RawGCN(train_config=TrainConfig(epochs=5), seed=0).fit(small_cora)
        assert result.defender_name == "GCN"
        assert result.runtime_seconds > 0
        assert isinstance(result.details, dict)

    def test_svd_rank_detail(self, small_cora):
        result = GCNSVD(
            rank=7, train_config=TrainConfig(epochs=5), seed=0
        ).fit(small_cora)
        assert result.details["rank"] == 7

    def test_gnat_details(self, small_cora):
        result = GNAT(
            views="te", train_config=TrainConfig(epochs=5), seed=0
        ).fit(small_cora)
        assert result.details == {"views": "te", "merged": False, "pruned_edges": 0}


class TestHiddenDimensions:
    @pytest.mark.parametrize("hidden", [8, 32])
    def test_rgcn_hidden_dim(self, small_cora, hidden):
        result = RGCN(
            hidden_dim=hidden, train_config=TrainConfig(epochs=5), seed=0
        ).fit(small_cora)
        assert 0.0 <= result.test_accuracy <= 1.0
