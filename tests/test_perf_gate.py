"""CI perf-gate contract: the baseline diff must catch real regressions.

The gate's whole value is failing CI when the fused engine (or the
sampled-block attackers) get slower relative to their in-run oracle.
These tests prove the failure path actually fires — a doctored baseline
with better ratios than the fresh run must fail the gate — and that
schema drift cannot silently disable gating.
"""

import copy
import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

from perf_gate import SCHEMA, gate, keyset, main  # noqa: E402


def training_report(fused=1.0, autodiff=2.0):
    return {
        "schema": SCHEMA,
        "bench": "training",
        "quick": True,
        "models": {
            name: {
                "fits": 5,
                "autodiff_cpu_seconds": autodiff,
                "fused_cpu_seconds": fused,
                "per_fit_autodiff": autodiff / 5,
                "per_fit_fused": fused / 5,
                "speedup": autodiff / fused,
                "min_speedup": 1.5,
            }
            for name in ("GCN", "GAT", "RGCN", "SimPGCN")
        },
    }


def attack_scale_report(wall=10.0, generate=1.0):
    return {
        "schema": SCHEMA,
        "bench": "attack_scale",
        "quick": True,
        "tiers": {
            "sbm-10k": {
                "nodes": 10000,
                "generate_seconds": generate,
                "attacks": {
                    "PRBCD": {"wall_seconds": wall, "flips": 100},
                    "GRBCD": {"wall_seconds": wall / 2, "flips": 100},
                },
            }
        },
    }


class TestGate:
    def test_identical_reports_pass(self):
        report = gate(training_report(), training_report())
        assert report["passed"], report["failures"]
        assert len(report["checks"]) == 4

    def test_committed_baseline_conforms_to_schema(self):
        # The committed report IS the CI baseline; gating it against
        # itself must pass, proving it carries the unified schema.
        path = BENCHMARKS / "results" / "BENCH_training.json"
        committed = json.loads(path.read_text())
        report = gate(committed, committed)
        assert report["passed"], report["failures"]

    def test_injected_regression_fails(self):
        # Doctor the baseline to claim the fused engine used to run the
        # fit in a tenth of the autodiff time; the fresh run's parity
        # ratio is then a >1.5x normalized regression and must fail.
        baseline = training_report(fused=0.2, autodiff=2.0)
        fresh = training_report(fused=2.0, autodiff=2.0)
        report = gate(baseline, fresh)
        assert not report["passed"]
        assert any("exceeds limit" in f for f in report["failures"])
        # every model regressed, so every model is named
        assert len(report["failures"]) == 4

    def test_within_tolerance_passes(self):
        baseline = training_report(fused=1.0, autodiff=2.0)
        fresh = training_report(fused=1.2, autodiff=2.0)  # 0.6 <= 0.5*1.5+0.05
        assert gate(baseline, fresh)["passed"]

    def test_attack_scale_regression_fails(self):
        baseline = attack_scale_report(wall=10.0, generate=1.0)
        fresh = attack_scale_report(wall=40.0, generate=1.0)
        report = gate(baseline, fresh)
        assert not report["passed"]
        assert any("sbm-10k/PRBCD" in f for f in report["failures"])

    def test_attack_scale_normalization_cancels_runner_speed(self):
        # A uniformly 3x slower runner scales wall and generate alike;
        # the normalized ratio is unchanged and the gate must pass.
        baseline = attack_scale_report(wall=10.0, generate=1.0)
        fresh = attack_scale_report(wall=30.0, generate=3.0)
        assert gate(baseline, fresh)["passed"]

    def test_schema_drift_fails(self):
        baseline = training_report()
        fresh = training_report()
        del fresh["models"]["GAT"]
        report = gate(baseline, fresh)
        assert not report["passed"]
        assert any("schema drift" in f for f in report["failures"])
        fresh = training_report()
        fresh["models"]["GCN"]["new_field"] = 1
        assert not gate(baseline, fresh)["passed"]

    def test_wrong_schema_tag_fails(self):
        bad = training_report()
        bad["schema"] = "repro.bench/0"
        report = gate(bad, training_report())
        assert not report["passed"]
        assert any("repro.bench/0" in f for f in report["failures"])

    def test_unknown_bench_kind_fails(self):
        baseline = copy.deepcopy(training_report())
        baseline["bench"] = "mystery"
        fresh = copy.deepcopy(baseline)
        report = gate(baseline, fresh)
        assert not report["passed"]
        assert any("no gate rule" in f for f in report["failures"])

    def test_keyset_is_recursive(self):
        keys = keyset({"a": {"b": 1}, "c": 2})
        assert keys == {"a", "a.b", "c"}


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_and_report_on_pass(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", training_report())
        fresh = self._write(tmp_path, "fresh.json", training_report())
        report_path = tmp_path / "report.json"
        assert main([base, fresh, "--report", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["passed"] and report["gated_bench"] == "training"
        assert "perf gate passed" in capsys.readouterr().out

    def test_exit_one_and_report_on_regression(self, tmp_path, capsys):
        base = self._write(
            tmp_path, "base.json", training_report(fused=0.2, autodiff=2.0)
        )
        fresh = self._write(
            tmp_path, "fresh.json", training_report(fused=2.0, autodiff=2.0)
        )
        report_path = tmp_path / "report.json"
        assert main([base, fresh, "--report", str(report_path)]) == 1
        report = json.loads(report_path.read_text())
        assert not report["passed"]
        assert report["failures"]
        assert "exceeds limit" in capsys.readouterr().err


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
