"""Analysis toolkit: homophily (Fig 1), edge diff (Fig 2), label similarity (Fig 3)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.analysis import (
    cross_label_similarity,
    edge_difference,
    edge_homophily,
    intra_inter_summary,
    neighborhood_label_histograms,
)
from repro.errors import GraphError
from repro.graph import EdgeFlip, apply_perturbations


class TestHomophily:
    def test_tiny_graph_value(self, tiny_graph):
        # 6 of 7 edges connect same-label nodes.
        assert edge_homophily(tiny_graph) == pytest.approx(6 / 7)

    def test_requires_labels(self, tiny_graph):
        with pytest.raises(GraphError):
            edge_homophily(replace(tiny_graph, labels=None))

    def test_poisoning_with_cross_edges_lowers_homophily(self, tiny_graph):
        poisoned = apply_perturbations(tiny_graph, [EdgeFlip(0, 4), EdgeFlip(1, 5)])
        assert edge_homophily(poisoned) < edge_homophily(tiny_graph)


class TestEdgeDifference:
    def test_classifies_all_four_types(self, tiny_graph):
        flips = [
            EdgeFlip(0, 1),  # delete same-label
            EdgeFlip(2, 3),  # delete diff-label
            EdgeFlip(0, 4),  # add diff-label
            EdgeFlip(4, 5),  # delete same-label (was edge) -> careful
        ]
        # (4,5) exists → deletion same; craft an addition-same via (1, 2)? it
        # exists. Use (0, 1) delete, (2, 3) delete-diff, (0, 4) add-diff and
        # a same-label addition is impossible in the triangles (complete), so
        # remove one first in a separate test.
        poisoned = apply_perturbations(tiny_graph, flips[:3])
        diff = edge_difference(tiny_graph, poisoned)
        assert diff.del_same == 1
        assert diff.del_diff == 1
        assert diff.add_diff == 1
        assert diff.add_same == 0
        assert diff.total == 3

    def test_add_same_detected(self, tiny_graph):
        once = apply_perturbations(tiny_graph, [EdgeFlip(0, 1)])
        back = apply_perturbations(once, [EdgeFlip(0, 1)])
        diff = edge_difference(once, back)
        assert diff.add_same == 1 and diff.total == 1

    def test_identical_graphs_give_zero(self, tiny_graph):
        diff = edge_difference(tiny_graph, tiny_graph)
        assert diff.total == 0
        assert diff.proportions() == {
            "add_same": 0.0,
            "add_diff": 0.0,
            "del_same": 0.0,
            "del_diff": 0.0,
        }

    def test_proportions_sum_to_one(self, tiny_graph):
        poisoned = apply_perturbations(tiny_graph, [EdgeFlip(0, 4), EdgeFlip(0, 1)])
        proportions = edge_difference(tiny_graph, poisoned).proportions()
        assert sum(proportions.values()) == pytest.approx(1.0)

    def test_validations(self, tiny_graph, small_cora):
        with pytest.raises(GraphError):
            edge_difference(replace(tiny_graph, labels=None), tiny_graph)
        with pytest.raises(GraphError):
            edge_difference(tiny_graph, small_cora)

    def test_str_rendering(self, tiny_graph):
        poisoned = apply_perturbations(tiny_graph, [EdgeFlip(0, 4)])
        assert "Add+Diff=1" in str(edge_difference(tiny_graph, poisoned))


class TestLabelSimilarity:
    def test_histograms(self, tiny_graph):
        histograms = neighborhood_label_histograms(tiny_graph)
        # Node 0's neighbors are 1 and 2, both class 0.
        np.testing.assert_allclose(histograms[0], [1.0, 0.0])
        # Node 2's neighbors are 0, 1 (class 0) and 3 (class 1).
        np.testing.assert_allclose(histograms[2], [2 / 3, 1 / 3])

    def test_clean_graph_diagonal_dominant(self, tiny_graph):
        matrix = cross_label_similarity(tiny_graph)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] > matrix[0, 1]
        assert matrix[1, 1] > matrix[1, 0]

    def test_symmetry(self, small_cora):
        matrix = cross_label_similarity(small_cora)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-9)

    def test_blurring_raises_inter_similarity(self, small_cora):
        rng = np.random.default_rng(0)
        labels = small_cora.labels
        flips = []
        seen = set()
        while len(flips) < 60:
            u, v = rng.integers(0, small_cora.num_nodes, 2)
            key = (min(u, v), max(u, v))
            if u == v or labels[u] == labels[v] or key in seen or small_cora.has_edge(u, v):
                continue
            seen.add(key)
            flips.append(EdgeFlip(int(u), int(v)))
        poisoned = apply_perturbations(small_cora, flips)
        __, inter_clean = intra_inter_summary(small_cora)
        __, inter_poisoned = intra_inter_summary(poisoned)
        assert inter_poisoned > inter_clean

    def test_requires_labels(self, tiny_graph):
        with pytest.raises(GraphError):
            cross_label_similarity(replace(tiny_graph, labels=None))
