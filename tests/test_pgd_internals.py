"""PGD/MinMax internals: attack labels, ascent state, discretization."""

import numpy as np

from repro.attacks import MinMaxAttack, PGDAttack
from repro.attacks.base import AttackBudget, resolve_budget


class TestAttackLabels:
    def test_train_labels_preserved(self, small_cora):
        attacker = PGDAttack(steps=3, samples=2, seed=0)
        model = attacker._train_victim(small_cora)
        labels = attacker._attack_labels(model, small_cora)
        train = small_cora.train_mask
        np.testing.assert_array_equal(labels[train], small_cora.labels[train])

    def test_unlabeled_use_predictions_not_truth(self, small_cora):
        # The evasion loss must not leak test labels: on nodes where the
        # victim predicts wrongly, the attack labels equal the prediction.
        attacker = PGDAttack(steps=3, samples=2, seed=0)
        model = attacker._train_victim(small_cora)
        labels = attacker._attack_labels(model, small_cora)
        from repro.graph import gcn_normalize
        from repro.tensor import Tensor

        predictions = model.predict(
            gcn_normalize(small_cora.adjacency), Tensor(small_cora.features)
        )
        off_train = ~small_cora.train_mask
        np.testing.assert_array_equal(labels[off_train], predictions[off_train])


class TestAscent:
    def test_continuous_solution_respects_budget_and_box(self, small_cora):
        attacker = PGDAttack(steps=5, samples=2, seed=0)
        model = attacker._train_victim(small_cora)
        labels = attacker._attack_labels(model, small_cora)
        budget = resolve_budget(small_cora, perturbation_rate=0.05)
        s = attacker._ascend(model, small_cora, budget, labels)
        assert (s >= -1e-9).all() and (s <= 1.0 + 1e-9).all()
        np.testing.assert_allclose(s, s.T, atol=1e-12)
        triu = np.triu(np.ones_like(s, dtype=bool), k=1)
        assert s[triu].sum() <= budget.total + 1e-6
        assert np.diag(s).sum() == 0.0

    def test_ascent_moves_probability_mass(self, small_cora):
        attacker = PGDAttack(steps=5, samples=2, seed=0)
        model = attacker._train_victim(small_cora)
        labels = attacker._attack_labels(model, small_cora)
        budget = resolve_budget(small_cora, perturbation_rate=0.05)
        s = attacker._ascend(model, small_cora, budget, labels)
        assert s.sum() > 0.0


class TestMinMaxDiffersFromPGD:
    def test_adaptive_model_changes_selection(self, small_cora):
        pgd = PGDAttack(steps=8, samples=3, seed=0).attack(
            small_cora, perturbation_rate=0.05
        )
        minmax = MinMaxAttack(steps=8, samples=3, inner_steps=2, seed=0).attack(
            small_cora, perturbation_rate=0.05
        )
        # Same seed, same budget — the inner θ adaptation must change the
        # chosen flips (identical selections would mean the min player is a
        # no-op).
        assert set(pgd.edge_flips) != set(minmax.edge_flips)
