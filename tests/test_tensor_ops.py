"""Gradient checks for every differentiable primitive, against central
finite differences (hypothesis drives random shapes/values)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.tensor import Tensor, check_gradients
from repro.tensor import functional as F


def matrices(rows=(2, 4), cols=(2, 4), low=-2.0, high=2.0):
    return st.tuples(
        st.integers(*rows), st.integers(*cols), st.integers(0, 2**31 - 1)
    ).map(
        lambda args: np.random.default_rng(args[2]).uniform(low, high, (args[0], args[1]))
    )


class TestElementwiseGradients:
    @given(matrices())
    @settings(max_examples=15, deadline=None)
    def test_add_mul_chain(self, x):
        check_gradients(lambda a: ((a + 2.0) * a - a / 3.0).sum(), [x])

    @given(matrices())
    @settings(max_examples=15, deadline=None)
    def test_binary_two_inputs(self, x):
        y = x.T.copy() if x.shape[0] == x.shape[1] else x.copy() * 0.5 + 0.1
        check_gradients(lambda a, b: (a * b + a - b).sum(), [x, y])

    @given(matrices(low=0.1, high=3.0))
    @settings(max_examples=15, deadline=None)
    def test_log_exp_sqrt_pow(self, x):
        check_gradients(lambda a: (a.log() + a.exp() + a.sqrt() + a**1.7).sum(), [x])

    @given(matrices())
    @settings(max_examples=15, deadline=None)
    def test_division_by_tensor(self, x):
        denom = np.abs(x) + 1.0
        check_gradients(lambda a, b: (a / b).sum(), [x, denom])

    def test_abs_gradient_away_from_zero(self):
        x = np.array([[-2.0, 3.0], [1.5, -0.5]])
        check_gradients(lambda a: a.abs().sum(), [x])

    def test_maximum_gradient(self):
        x = np.array([[1.0, -2.0]])
        y = np.array([[0.5, 0.5]])
        check_gradients(lambda a, b: a.maximum(b).sum(), [x, y])

    def test_clip_gradient(self):
        x = np.array([[0.2, 1.7, -3.0]])
        check_gradients(lambda a: a.clip(0.0, 1.0).sum(), [x])

    def test_neg_and_rsub_rdiv(self):
        x = np.array([[1.5, 2.5]])
        check_gradients(lambda a: (-a + (3.0 - a) + 6.0 / a).sum(), [x])


class TestShapeOps:
    @given(matrices())
    @settings(max_examples=10, deadline=None)
    def test_transpose_reshape(self, x):
        check_gradients(lambda a: (a.T.reshape(-1) * 2.0).sum(), [x])

    def test_matmul_gradients(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        check_gradients(lambda x, y: (x @ y).sum(), [a, b])

    def test_matmul_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(3)).matmul(Tensor(np.ones(3)))

    def test_sum_axis_keepdims(self):
        x = np.arange(6.0).reshape(2, 3)
        check_gradients(lambda a: (a.sum(axis=0) * np.array([1.0, 2.0, 3.0])).sum(), [x])
        check_gradients(lambda a: (a.sum(axis=1, keepdims=True) * 2.0).sum(), [x])

    def test_mean_gradient(self):
        x = np.arange(6.0).reshape(2, 3)
        check_gradients(lambda a: a.mean() * 6.0, [x])
        check_gradients(lambda a: (a.mean(axis=1) * np.array([1.0, 3.0])).sum(), [x])


class TestActivationGradients:
    def test_relu(self):
        x = np.array([[1.0, -1.0, 0.5]])
        check_gradients(lambda a: F.relu(a).sum(), [x])

    def test_leaky_relu(self):
        x = np.array([[1.0, -2.0, 0.3]])
        check_gradients(lambda a: F.leaky_relu(a, 0.2).sum(), [x])

    def test_elu(self):
        x = np.array([[1.0, -2.0, 0.3]])
        check_gradients(lambda a: F.elu(a).sum(), [x])

    def test_sigmoid_tanh(self):
        x = np.array([[0.5, -1.5, 2.0]])
        check_gradients(lambda a: (F.sigmoid(a) + F.tanh(a)).sum(), [x])

    @given(matrices(low=-3.0, high=3.0))
    @settings(max_examples=10, deadline=None)
    def test_softmax(self, x):
        weights = np.random.default_rng(1).normal(size=x.shape)
        check_gradients(lambda a: (F.softmax(a, axis=1) * weights).sum(), [x])

    @given(matrices(low=-3.0, high=3.0))
    @settings(max_examples=10, deadline=None)
    def test_log_softmax(self, x):
        weights = np.random.default_rng(2).normal(size=x.shape)
        check_gradients(lambda a: (F.log_softmax(a, axis=1) * weights).sum(), [x])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)) * 10)
        probs = F.softmax(x, axis=1).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)
        assert (probs >= 0).all()

    def test_log_softmax_is_stable_for_large_logits(self):
        x = Tensor(np.array([[1e4, 0.0], [0.0, -1e4]]))
        out = F.log_softmax(x, axis=1).data
        assert np.isfinite(out).all()


class TestRowPnorm:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_matches_numpy(self, p):
        x = np.random.default_rng(0).normal(size=(4, 5))
        ours = F.row_pnorm(Tensor(x), p).data
        expected = np.linalg.norm(x, ord=p, axis=1)
        np.testing.assert_allclose(ours, expected, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("p", [2, 3])
    def test_gradcheck(self, p):
        x = np.random.default_rng(1).normal(size=(3, 4)) + 0.5
        check_gradients(lambda a: F.row_pnorm(a, p).sum(), [x], atol=1e-4)

    def test_p1_gradcheck(self):
        x = np.array([[1.0, -2.0, 3.0], [0.5, 0.7, -0.9]])
        check_gradients(lambda a: F.row_pnorm(a, 1).sum(), [x])

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            F.row_pnorm(Tensor(np.ones((2, 2))), 0.5)

    def test_zero_row_is_finite(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = F.row_pnorm(x, 2).sum()
        out.backward()
        assert np.isfinite(out.item())
        assert np.isfinite(x.grad).all()
