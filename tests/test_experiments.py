"""Experiment harness: presets, runner caching, tables, timing."""

import os

import numpy as np
import pytest

from repro.attacks.base import Attacker
from repro.core import GNAT, PEEGA
from repro.defenses.base import Defender
from repro.errors import ConfigError
from repro.experiments import (
    ATTACKER_NAMES,
    DEFENDER_NAMES,
    CellResult,
    ExperimentRunner,
    ExperimentScale,
    defender_names_for,
    format_accuracy_table,
    format_series,
    format_timing_table,
    make_attacker,
    make_defender,
)


TINY = ExperimentScale(scale=0.04, seeds=2, rate=0.1)


class TestConfig:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.3")
        monkeypatch.setenv("REPRO_SEEDS", "7")
        monkeypatch.setenv("REPRO_RATE", "0.2")
        config = ExperimentScale.from_env()
        assert config.scale == 0.3
        assert config.seeds == 7
        assert config.rate == 0.2

    @pytest.mark.parametrize("name", ATTACKER_NAMES)
    def test_attacker_presets_instantiate(self, name):
        assert isinstance(make_attacker(name, "cora"), Attacker)

    @pytest.mark.parametrize("name", DEFENDER_NAMES)
    def test_defender_presets_instantiate(self, name):
        if name == "GCN-Jaccard":
            with pytest.raises(ConfigError):
                make_defender(name, "polblogs")
        assert isinstance(make_defender(name, "cora"), Defender)

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigError):
            make_attacker("Nettack", "cora")
        with pytest.raises(ConfigError):
            make_defender("GNNGuard", "cora")

    def test_peega_preset_polblogs_is_topology_only(self):
        attacker = make_attacker("PEEGA", "polblogs")
        assert isinstance(attacker, PEEGA)
        assert not attacker.attack_features

    def test_gnat_preset_polblogs_drops_feature_view(self):
        defender = make_defender("GNAT", "polblogs")
        assert isinstance(defender, GNAT)
        assert "f" not in defender.views

    def test_defender_names_for(self):
        assert "GCN-Jaccard" in defender_names_for("cora")
        assert "GCN-Jaccard" not in defender_names_for("polblogs")


class TestRunner:
    def test_graph_cached(self):
        runner = ExperimentRunner(TINY)
        assert runner.graph("cora") is runner.graph("cora")

    def test_attack_cached_by_key(self):
        runner = ExperimentRunner(TINY)
        first = runner.attack("cora", "PEEGA")
        assert runner.attack("cora", "PEEGA") is first
        other_rate = runner.attack("cora", "PEEGA", rate=0.05)
        assert other_rate is not first

    def test_evaluate_defender_averages_seeds(self):
        runner = ExperimentRunner(TINY)
        cell = runner.evaluate_defender(runner.graph("cora"), "cora", "GCN")
        assert len(cell.values) == TINY.seeds
        assert 0.0 <= cell.mean <= 1.0

    def test_accuracy_table_structure(self):
        runner = ExperimentRunner(TINY)
        table = runner.accuracy_table(
            "cora", attackers=["PEEGA"], defenders=["GCN", "GNAT"]
        )
        assert set(table.rows) == {"Clean", "PEEGA"}
        assert set(table.rows["Clean"]) == {"GCN", "GNAT"}
        assert table.best_defender("Clean") in {"GCN", "GNAT"}
        assert table.strongest_attacker("GCN") == "PEEGA"


class TestCellResult:
    def test_from_values(self):
        cell = CellResult.from_values([0.5, 0.7])
        assert cell.mean == pytest.approx(0.6)
        assert cell.std == pytest.approx(0.1)
        assert "60.00" in str(cell)


class TestFormatting:
    def test_accuracy_table_rendering(self):
        runner = ExperimentRunner(TINY)
        table = runner.accuracy_table(
            "cora", attackers=["PEEGA"], defenders=["GCN", "GNAT"]
        )
        text = format_accuracy_table(table, title="demo")
        assert "demo" in text
        assert "PEEGA" in text and "GNAT" in text
        assert "(" in text  # a best defender is bracketed

    def test_timing_table_rendering(self):
        timings = {
            "fast": {"cora": CellResult.from_values([0.1, 0.2])},
            "slow": {"cora": CellResult.from_values([2.0, 3.0])},
        }
        text = format_timing_table(timings, title="times")
        assert "(0.15" in text  # fastest bracketed
        assert "slow" in text

    def test_series_rendering(self):
        text = format_series("x", [1, 2], {"line": [0.5, 0.75]}, title="fig")
        assert "50.00" in text and "75.00" in text
        raw = format_series("x", [1], {"n": [12.0]}, percent=False)
        assert "12" in raw
