"""Baseline attackers: Random, DICE, PGD, MinMax, Metattack, GF-Attack."""

import numpy as np
import pytest
from dataclasses import replace

from repro.attacks import (
    DICE,
    GFAttack,
    Metattack,
    MinMaxAttack,
    PGDAttack,
    RandomAttack,
)
from repro.attacks.pgd import project_budget_box
from repro.errors import ConfigError
from repro.graph import structural_distance


RATE = 0.08


class TestRandomAttack:
    def test_budget_and_validity(self, small_cora):
        result = RandomAttack(seed=0).attack(small_cora, perturbation_rate=RATE)
        result.verify_budget()
        assert result.num_perturbations == round(RATE * small_cora.num_edges)

    def test_feature_prob_produces_feature_flips(self, small_cora):
        result = RandomAttack(feature_prob=1.0, seed=0).attack(
            small_cora, perturbation_rate=RATE
        )
        assert len(result.feature_flips) > 0
        assert len(result.edge_flips) == 0

    def test_invalid_feature_prob(self):
        with pytest.raises(ValueError):
            RandomAttack(feature_prob=1.5)

    def test_deterministic(self, small_cora):
        a = RandomAttack(seed=3).attack(small_cora, perturbation_rate=RATE)
        b = RandomAttack(seed=3).attack(small_cora, perturbation_rate=RATE)
        assert a.edge_flips == b.edge_flips


class TestDICE:
    def test_deletes_same_adds_diff(self, small_cora):
        result = DICE(add_ratio=0.5, seed=0).attack(small_cora, perturbation_rate=RATE)
        labels = small_cora.labels
        for flip in result.edge_flips:
            had_edge = small_cora.has_edge(flip.u, flip.v)
            if had_edge:
                assert labels[flip.u] == labels[flip.v]  # deletion of same-label
            else:
                assert labels[flip.u] != labels[flip.v]  # addition of diff-label

    def test_requires_labels(self, small_cora):
        unlabeled = replace(small_cora, labels=None)
        with pytest.raises(ConfigError):
            DICE(seed=0).attack(unlabeled, perturbation_rate=RATE)

    def test_add_ratio_validation(self):
        with pytest.raises(ConfigError):
            DICE(add_ratio=1.5)

    def test_budget_respected(self, small_cora):
        result = DICE(seed=0).attack(small_cora, perturbation_rate=RATE)
        result.verify_budget()


class TestProjection:
    def test_inside_ball_untouched(self):
        values = np.array([0.1, 0.2, 0.3])
        np.testing.assert_allclose(project_budget_box(values, budget=5.0), values)

    def test_clips_to_box(self):
        out = project_budget_box(np.array([-0.5, 1.5]), budget=5.0)
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_projects_to_budget(self):
        out = project_budget_box(np.array([1.0, 1.0, 1.0, 1.0]), budget=2.0)
        assert out.sum() == pytest.approx(2.0, abs=1e-4)
        assert (out >= 0).all() and (out <= 1).all()

    def test_preserves_order(self):
        out = project_budget_box(np.array([0.9, 0.5, 0.1]), budget=1.0)
        assert out[0] >= out[1] >= out[2]


class TestWhiteBoxAttacks:
    @pytest.mark.parametrize("cls", [PGDAttack, MinMaxAttack])
    def test_budget_and_topology_only(self, small_cora, cls):
        attacker = cls(steps=10, samples=3, seed=0)
        result = attacker.attack(small_cora, perturbation_rate=RATE)
        result.verify_budget()
        assert result.feature_flips == []
        assert 0 < len(result.edge_flips) <= round(RATE * small_cora.num_edges)

    def test_requires_labels(self, small_cora):
        unlabeled = replace(small_cora, labels=None)
        with pytest.raises(ConfigError):
            PGDAttack(steps=2, seed=0).attack(unlabeled, perturbation_rate=RATE)

    def test_step_validation(self):
        with pytest.raises(ConfigError):
            PGDAttack(steps=0)
        with pytest.raises(ConfigError):
            MinMaxAttack(inner_steps=0)


class TestMetattack:
    def test_budget_and_symmetry(self, small_cora):
        result = Metattack(inner_steps=5, seed=0).attack(small_cora, perturbation_rate=RATE)
        result.verify_budget()
        diff = result.poisoned.adjacency - result.poisoned.adjacency.T
        assert diff.nnz == 0
        assert structural_distance(
            small_cora.adjacency, result.poisoned.adjacency
        ) == len(result.edge_flips)

    def test_feature_attack_optional(self, small_cora):
        result = Metattack(inner_steps=3, attack_features=True, seed=0).attack(
            small_cora, perturbation_rate=0.04
        )
        result.verify_budget()

    def test_requires_labels(self, small_cora):
        unlabeled = replace(small_cora, labels=None)
        with pytest.raises(ConfigError):
            Metattack(seed=0).attack(unlabeled, perturbation_rate=RATE)

    def test_meta_train_variant(self, small_cora):
        result = Metattack(inner_steps=3, self_training=False, seed=0).attack(
            small_cora, perturbation_rate=0.04
        )
        assert result.num_perturbations > 0

    def test_objective_trace_recorded(self, small_cora):
        result = Metattack(inner_steps=3, seed=0).attack(small_cora, perturbation_rate=0.04)
        assert len(result.objective_trace) == result.num_perturbations


class TestGFAttack:
    def test_budget_and_validity(self, small_cora):
        attacker = GFAttack(candidate_pool=200, exact_candidates=2, seed=0)
        result = attacker.attack(small_cora, perturbation_rate=0.04)
        result.verify_budget()
        assert len(result.edge_flips) == round(0.04 * small_cora.num_edges)
        assert result.feature_flips == []

    def test_identity_features_fallback(self, small_polblogs):
        attacker = GFAttack(candidate_pool=100, exact_candidates=2, seed=0)
        result = attacker.attack(small_polblogs, perturbation_rate=0.03)
        assert result.num_perturbations > 0

    def test_objective_trace_recorded_per_flip(self, small_cora):
        attacker = GFAttack(candidate_pool=200, exact_candidates=2, seed=0)
        result = attacker.attack(small_cora, perturbation_rate=0.04)
        assert len(result.objective_trace) == len(result.edge_flips)
        assert all(np.isfinite(v) for v in result.objective_trace)

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            GFAttack(k_power=0)
        with pytest.raises(ConfigError):
            GFAttack(top_t_fraction=0.0)
