"""Engine mechanics of the autodiff Tensor: graph construction, gradient
accumulation, grad modes, and error handling."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, as_tensor, is_grad_enabled, no_grad, stack


class TestConstruction:
    def test_wraps_numpy(self):
        t = Tensor([[1.0, 2.0]])
        assert t.shape == (1, 2)
        assert t.data.dtype == np.float64

    def test_wraps_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_repr_mentions_grad_flag(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_scalar_only(self):
        assert Tensor([3.5]).item() == 3.5
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 2)))
        assert len(t) == 3
        assert t.size == 6
        assert t.ndim == 2


class TestBackward:
    def test_scalar_backward_default_seed(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_nonscalar_backward_requires_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(ShapeError):
            y.backward()
        y.backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_wrong_gradient_shape_rejected(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ShapeError):
            (x * 2).backward(np.ones(3))

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_zero_grad_resets(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 3).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_reused_node_accumulates_once_per_path(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # two paths into x through the same op
        z = y + x
        z.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])  # 2x + 1

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_no_grad_tensor_gets_no_gradient(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([10.0])
        (x * c).sum().backward()
        assert c.grad is None
        np.testing.assert_allclose(x.grad, [10.0])

    def test_deep_chain_does_not_overflow(self):
        # Iterative topological sort must handle long chains.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestGradMode:
    def test_no_grad_blocks_tracking(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
        (y * 3).sum().backward() if y.requires_grad else None
        assert x.grad is None

    def test_copy_preserves_flag_and_copies_data(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.copy()
        assert y.requires_grad
        y.data[0] = 99.0
        assert x.data[0] == 1.0


class TestBroadcasting:
    def test_row_broadcast_add(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [3.0, 3.0])
        np.testing.assert_allclose(x.grad, np.ones((3, 2)))

    def test_column_broadcast_mul(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        c = Tensor(np.array([[2.0], [3.0]]), requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(c.grad, [[3.0], [3.0]])

    def test_scalar_broadcast(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 5.0).sum().backward()
        np.testing.assert_allclose(x.grad, 5.0 * np.ones((2, 2)))


class TestIndexing:
    def test_row_indexing_gradient(self):
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        x[np.array([0, 2])].sum().backward()
        expected = np.array([[1.0, 1.0], [0.0, 0.0], [1.0, 1.0]])
        np.testing.assert_allclose(x.grad, expected)

    def test_duplicate_indices_accumulate(self):
        x = Tensor(np.ones(3), requires_grad=True)
        x[np.array([1, 1, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 3.0, 0.0])

    def test_fancy_pair_indexing(self):
        x = Tensor(np.eye(3), requires_grad=True)
        picked = x[np.arange(3), np.array([0, 1, 2])]
        picked.sum().backward()
        np.testing.assert_allclose(x.grad, np.eye(3))


class TestStack:
    def test_stack_forward_and_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        s = stack([a, b])
        assert s.shape == (2, 2)
        (s * Tensor([[1.0, 1.0], [2.0, 2.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [2.0, 2.0])
