"""Additional victim architectures: GraphSAGE, APPNP; DropEdge defense;
attack-profile analysis."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import attack_profile
from repro.core import PEEGA
from repro.defenses import DropEdgeGCN, sample_edge_subgraph
from repro.errors import ConfigError
from repro.graph import gcn_normalize
from repro.nn import APPNP, GraphSAGE, TrainConfig, mean_aggregator, train_node_classifier
from repro.tensor import Tensor


class TestMeanAggregator:
    def test_rows_stochastic(self, small_cora):
        op = mean_aggregator(small_cora.adjacency)
        sums = np.asarray(op.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, np.ones_like(sums), atol=1e-12)

    def test_isolated_node_zero_row(self):
        adj = sp.csr_matrix((3, 3))
        op = mean_aggregator(adj)
        assert op.nnz == 0

    def test_averages_neighbors(self, tiny_graph):
        op = mean_aggregator(tiny_graph.adjacency)
        averaged = op @ tiny_graph.features
        # Node 0's neighbors are 1, 2 with identical features.
        np.testing.assert_allclose(averaged[0], tiny_graph.features[1])


class TestGraphSAGE:
    def test_shapes_and_training(self, small_cora):
        model = GraphSAGE(small_cora.num_features, small_cora.num_classes, seed=0)
        logits = model.forward(small_cora.adjacency, Tensor(small_cora.features))
        assert logits.shape == (small_cora.num_nodes, small_cora.num_classes)
        result = train_node_classifier(
            model, small_cora, TrainConfig(epochs=40), adjacency=small_cora.adjacency
        )
        assert result.test_accuracy > 1.5 / small_cora.num_classes

    def test_predict_mode_restoration(self, small_cora):
        model = GraphSAGE(small_cora.num_features, small_cora.num_classes, seed=0).train()
        model.predict(small_cora.adjacency, Tensor(small_cora.features))
        assert model.training


class TestAPPNP:
    def test_shapes_and_training(self, small_cora):
        model = APPNP(small_cora.num_features, small_cora.num_classes, k_steps=5, seed=0)
        normalized = gcn_normalize(small_cora.adjacency)
        logits = model.forward(normalized, Tensor(small_cora.features))
        assert logits.shape == (small_cora.num_nodes, small_cora.num_classes)
        result = train_node_classifier(model, small_cora, TrainConfig(epochs=40))
        assert result.test_accuracy > 1.5 / small_cora.num_classes

    def test_alpha_one_limit_is_local(self, small_cora):
        # alpha→1 means (almost) no propagation: output ≈ the local MLP.
        model = APPNP(
            small_cora.num_features, small_cora.num_classes,
            k_steps=3, alpha=0.999, dropout=0.0, seed=0,
        )
        model.eval()
        normalized = gcn_normalize(small_cora.adjacency)
        with_prop = model.forward(normalized, Tensor(small_cora.features)).data
        identity = sp.eye(small_cora.num_nodes, format="csr")
        local = model.forward(identity, Tensor(small_cora.features)).data
        np.testing.assert_allclose(with_prop, local, atol=1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            APPNP(4, 2, k_steps=0)
        with pytest.raises(ValueError):
            APPNP(4, 2, alpha=0.0)


class TestDropEdge:
    def test_subgraph_sampling(self, small_cora):
        rng = np.random.default_rng(0)
        sampled = sample_edge_subgraph(small_cora.adjacency, 0.5, rng)
        assert sampled.nnz <= small_cora.adjacency.nnz
        assert ((sampled - sampled.T) != 0).nnz == 0
        # Kept edges are a subset of the original edges.
        extra = sampled - small_cora.adjacency.multiply(sampled)
        assert extra.nnz == 0

    def test_keep_prob_one_keeps_everything(self, small_cora):
        rng = np.random.default_rng(0)
        sampled = sample_edge_subgraph(small_cora.adjacency, 1.0, rng)
        assert (sampled != small_cora.adjacency).nnz == 0

    def test_keep_prob_validation(self, small_cora):
        with pytest.raises(ConfigError):
            sample_edge_subgraph(small_cora.adjacency, 0.0, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            DropEdgeGCN(keep_prob=1.5)

    def test_fit(self, small_cora):
        result = DropEdgeGCN(
            train_config=TrainConfig(epochs=40, patience=40), seed=0
        ).fit(small_cora)
        assert result.test_accuracy > 1.5 / small_cora.num_classes
        assert result.details["keep_prob"] == 0.7


class TestAttackProfile:
    def test_peega_profile(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.1)
        profile = attack_profile(result)
        n_endpoints = 2 * len(result.edge_flips)
        assert len(profile.endpoint_degrees) == n_endpoints
        # PEEGA adds dissimilar pairs: positive similarity gap.
        if len(profile.added_pair_similarity):
            assert profile.similarity_gap > 0.0
        assert "similarity gap" in profile.summary()

    def test_empty_attack_profile(self, small_cora):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.0)
        profile = attack_profile(result)
        assert profile.mean_endpoint_degree == 0.0
        assert profile.median_added_distance == 0.0
        assert profile.similarity_gap == 0.0

    def test_added_distances_exclude_deletions(self, small_cora):
        result = PEEGA(attack_features=False, seed=0).attack(
            small_cora, perturbation_rate=0.1
        )
        profile = attack_profile(result)
        added = [
            f for f in result.edge_flips if not small_cora.has_edge(f.u, f.v)
        ]
        assert len(profile.added_pair_distances) == len(added)
        # Newly added pairs were at distance >= 2 before the attack.
        finite = profile.added_pair_distances[
            np.isfinite(profile.added_pair_distances)
        ]
        assert (finite >= 2).all()
