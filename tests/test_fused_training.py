"""Fused training engine: bit-identity, dispatch, gradients, and caching.

The fused kernels (:mod:`repro.nn.fastpath`) promise *bit-identical* weight
trajectories to the autodiff engine — not approximately equal, equal to the
last ULP.  These tests pin that promise across the whole fusible family
(GCN depths 1-4 with and without dropout, SGC, every GNAT view subset in
both merged and multi-view form, GAT's dense masked attention, and the
RGCN/SimPGCN defense fits via their recognized loss terms), verify the
closed-form backwards against finite differences, check that ineligible
setups fall back (or refuse, naming the specific blocker) exactly as
documented, and exercise the sweep-wide view-operator cache's
content-addressed invalidation.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import GNAT
from repro.defenses.rgcn import RGCN, GaussianGCNModel, KLLoss, _power_normalize
from repro.defenses.simpgcn import (
    SSLLoss,
    SimPGCN,
    SimPGCNModel,
    cosine_similarity_matrix,
    knn_graph,
)
from repro.errors import ConfigError
from repro.graph import gcn_normalize
from repro.graph.viewcache import (
    array_fingerprint,
    cached_operator,
    clear_view_cache,
    csr_fingerprint,
    view_cache_stats,
)
from repro.nn import (
    GAT,
    GCN,
    SGC,
    MultiViewForward,
    TrainConfig,
    train_node_classifier,
)
from repro.nn.fastpath import (
    ENGINES,
    make_fused_kernel,
    resolve_engine,
    training_matches_eval,
)
from repro.utils.rng import ensure_rng

CONFIG = TrainConfig(epochs=30, patience=10)


def rgcn_setup(graph, seed=11, hidden=8):
    """Model + operators + loss term exactly as ``RGCN._fit`` builds them."""
    rng = ensure_rng(seed)
    model = GaussianGCNModel(graph.num_features, graph.num_classes, hidden, 1.0, rng)
    operators = (
        _power_normalize(graph.adjacency, 0.5),
        _power_normalize(graph.adjacency, 1.0),
    )
    return model, operators, KLLoss(model, 5e-4)


def simpgcn_setup(graph, seed=13, hidden=8, knn_k=5):
    """Model + operators + loss term exactly as ``SimPGCN._fit`` builds them."""
    rng = ensure_rng(seed)
    adj_feat = gcn_normalize(knn_graph(graph.features, knn_k))
    adj_topo = gcn_normalize(graph.adjacency)
    model = SimPGCNModel(graph.num_features, hidden, graph.num_classes, rng)
    ssl = SSLLoss(
        model, cosine_similarity_matrix(graph.features), 0.1, 400,
        graph.num_nodes, rng,
    )
    return model, (adj_topo, adj_feat), ssl


def outcome(result):
    return (
        result.train_losses,
        result.val_accuracies,
        result.best_val_accuracy,
        result.test_accuracy,
        result.epochs_run,
    )


def assert_same_weights(model_a, model_b):
    for left, right in zip(model_a.state_dict(), model_b.state_dict()):
        assert np.array_equal(left, right)


# ---------------------------------------------------------------------------
# Bit-identity: fused vs autodiff walk the same trajectory


class TestGCNBitIdentity:
    @pytest.mark.parametrize("num_layers", [1, 2, 3, 4])
    @pytest.mark.parametrize("dropout", [0.0, 0.5])
    def test_trajectory_identical(self, small_cora, num_layers, dropout):
        results = {}
        for engine in ("autodiff", "fused"):
            model = GCN(
                small_cora.num_features,
                small_cora.num_classes,
                hidden_dim=8,
                num_layers=num_layers,
                dropout=dropout,
                seed=42,
            )
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, engine=engine
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)

    def test_auto_equals_fused(self, small_cora):
        results = {}
        for engine in ("auto", "fused"):
            model = GCN(
                small_cora.num_features, small_cora.num_classes, seed=3
            )
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, engine=engine
            )
        assert outcome(results["auto"]) == outcome(results["fused"])


class TestSGCBitIdentity:
    def test_trajectory_identical(self, small_cora):
        results = {}
        for engine in ("autodiff", "fused"):
            model = SGC(small_cora.num_features, small_cora.num_classes, seed=9)
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, engine=engine
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)


class TestGNATBitIdentity:
    @pytest.mark.parametrize("views", ["tfe", "t", "f", "e", "tf"])
    @pytest.mark.parametrize("merged", [False, True])
    def test_fit_identical(self, small_cora, views, merged):
        accuracies = {}
        for engine in ("autodiff", "fused"):
            clear_view_cache()
            defender = GNAT(
                views=views,
                merge_views=merged,
                train_config=CONFIG,
                engine=engine,
                seed=5,
            )
            result = defender.fit(small_cora)
            accuracies[engine] = (result.test_accuracy, result.val_accuracy)
        assert accuracies["autodiff"] == accuracies["fused"]

    def test_multi_view_weights_identical(self, small_cora):
        """Direct trainer-level check with weight access (3-view GNAT math)."""
        operators = [
            gcn_normalize(small_cora.adjacency),
            gcn_normalize(sp.eye(small_cora.num_nodes, format="csr")),
        ]
        results = {}
        for engine in ("autodiff", "fused"):
            model = GCN(
                small_cora.num_features, small_cora.num_classes, seed=17
            )
            results[engine] = train_node_classifier(
                model,
                small_cora,
                CONFIG,
                adjacency=operators[0],
                forward=MultiViewForward(model, operators),
                engine=engine,
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)


class TestGATBitIdentity:
    @pytest.mark.parametrize("num_heads", [1, 3])
    @pytest.mark.parametrize("dropout", [0.0, 0.5])
    def test_trajectory_identical(self, small_cora, num_heads, dropout):
        results = {}
        for engine in ("autodiff", "fused"):
            model = GAT(
                small_cora.num_features,
                small_cora.num_classes,
                hidden_dim=4,
                num_heads=num_heads,
                dropout=dropout,
                seed=42,
            )
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, engine=engine
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)


class TestRGCNBitIdentity:
    @pytest.mark.parametrize("seed", [0, 11])
    def test_trajectory_identical(self, small_cora, seed):
        results = {}
        for engine in ("autodiff", "fused"):
            model, operators, loss = rgcn_setup(small_cora, seed=seed)
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, adjacency=operators,
                loss_fn=loss, engine=engine,
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)

    def test_defender_fit_identical(self, small_cora):
        accuracies = {}
        for engine in ("autodiff", "auto"):
            defender = RGCN(train_config=CONFIG, engine=engine, seed=7)
            result = defender.fit(small_cora)
            accuracies[engine] = (result.test_accuracy, result.val_accuracy)
        assert accuracies["autodiff"] == accuracies["auto"]


class TestSimPGCNBitIdentity:
    @pytest.mark.parametrize("seed", [0, 13])
    def test_trajectory_identical(self, small_cora, seed):
        results = {}
        for engine in ("autodiff", "fused"):
            model, operators, ssl = simpgcn_setup(small_cora, seed=seed)
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, adjacency=operators,
                loss_fn=ssl, engine=engine,
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)

    def test_defender_fit_identical(self, small_cora):
        accuracies = {}
        for engine in ("autodiff", "auto"):
            defender = SimPGCN(
                knn_k=5, train_config=CONFIG, engine=engine, seed=7
            )
            result = defender.fit(small_cora)
            accuracies[engine] = (result.test_accuracy, result.val_accuracy)
        assert accuracies["autodiff"] == accuracies["auto"]


# ---------------------------------------------------------------------------
# Gradcheck: the closed-form backward against finite differences


def _numeric_check(kernel, params, atol=1e-5, rtol=1e-4, eps=1e-6):
    """Central-difference check of every parameter grad of a fused kernel."""
    kernel.train_forward()
    kernel.backward()
    analytic = [np.array(p.grad, copy=True) for p in params]
    for param, grad in zip(params, analytic):
        flat = param.data.reshape(-1)
        numeric = np.zeros_like(flat)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus, _ = kernel.train_forward()
            flat[i] = original - eps
            minus, _ = kernel.train_forward()
            flat[i] = original
            numeric[i] = (plus - minus) / (2.0 * eps)
        assert np.allclose(grad.reshape(-1), numeric, atol=atol, rtol=rtol), (
            f"max abs diff {np.max(np.abs(grad.reshape(-1) - numeric)):.3e}"
        )


class TestGradcheck:
    def test_fused_gcn_backward(self, tiny_graph):
        model = GCN(
            tiny_graph.num_features,
            tiny_graph.num_classes,
            hidden_dim=5,
            num_layers=3,
            dropout=0.0,  # deterministic forward, required for differencing
            seed=1,
        )
        adjacency = gcn_normalize(tiny_graph.adjacency)
        kernel = make_fused_kernel(
            model, tiny_graph, adjacency, model.forward, None
        )
        assert kernel is not None
        _numeric_check(kernel, list(model.parameters()))

    def test_fused_multiview_backward(self, tiny_graph):
        model = GCN(
            tiny_graph.num_features,
            tiny_graph.num_classes,
            hidden_dim=5,
            dropout=0.0,
            seed=2,
        )
        operators = [
            gcn_normalize(tiny_graph.adjacency),
            gcn_normalize(sp.eye(tiny_graph.num_nodes, format="csr")),
        ]
        forward = MultiViewForward(model, operators)
        kernel = make_fused_kernel(model, tiny_graph, operators[0], forward, None)
        assert kernel is not None
        _numeric_check(kernel, list(model.parameters()))

    def test_fused_gat_backward(self, tiny_graph):
        model = GAT(
            tiny_graph.num_features,
            tiny_graph.num_classes,
            hidden_dim=3,
            num_heads=2,
            dropout=0.0,  # deterministic forward, required for differencing
            seed=3,
        )
        adjacency = gcn_normalize(tiny_graph.adjacency)
        kernel = make_fused_kernel(model, tiny_graph, adjacency, model.forward, None)
        assert kernel is not None
        _numeric_check(kernel, list(model.parameters()))

    def test_fused_rgcn_backward(self, tiny_graph):
        model, operators, loss = rgcn_setup(tiny_graph, seed=5, hidden=4)
        # Replaying the same ε draw makes the sampled forward a fixed
        # deterministic function of the weights, as differencing needs.
        model._sample_rng = _ReplayRng(model._sample_rng)
        kernel = make_fused_kernel(
            model, tiny_graph, operators, model.forward, loss
        )
        assert kernel is not None
        _numeric_check(kernel, list(model.parameters()))

    def test_fused_simpgcn_backward(self, tiny_graph):
        model, operators, ssl = simpgcn_setup(tiny_graph, seed=5, hidden=4, knn_k=2)
        ssl.rng = _ReplayRng(ssl.rng)  # fixed pair batch across calls
        kernel = make_fused_kernel(
            model, tiny_graph, operators, model.forward, ssl
        )
        assert kernel is not None
        _numeric_check(kernel, list(model.parameters()))


class _ReplayRng:
    """Replays the first draw forever — freezes a stochastic forward."""

    def __init__(self, rng):
        self._rng = rng
        self._draws = {}

    def normal(self, size=None):
        key = ("normal", tuple(np.atleast_1d(size)))
        if key not in self._draws:
            self._draws[key] = self._rng.normal(size=size)
        return self._draws[key]

    def integers(self, low, high=None, size=None):
        key = ("integers", low, high, tuple(np.atleast_1d(size)))
        if key not in self._draws:
            self._draws[key] = self._rng.integers(low, high, size=size)
        return self._draws[key]


# ---------------------------------------------------------------------------
# Dispatch: what fuses, what falls back, what refuses


class TestDispatch:
    def test_gat_now_fusible(self, tiny_graph):
        """GAT joined the fused family in the expensive-defender PR."""
        model = GAT(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        kernel = make_fused_kernel(model, tiny_graph, adjacency, model.forward, None)
        assert kernel is not None
        result = train_node_classifier(model, tiny_graph, CONFIG, engine="fused")
        assert result.epochs_run > 0

    def test_rgcn_and_simpgcn_fusible_via_loss_terms(self, tiny_graph):
        model, operators, loss = rgcn_setup(tiny_graph, seed=0, hidden=4)
        assert (
            make_fused_kernel(model, tiny_graph, operators, model.forward, loss)
            is not None
        )
        model, operators, ssl = simpgcn_setup(tiny_graph, seed=0, hidden=4, knn_k=2)
        assert (
            make_fused_kernel(model, tiny_graph, operators, model.forward, ssl)
            is not None
        )

    def test_extra_loss_fn_not_fusible(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        loss_fn = lambda logits: (logits * 0.0).sum()  # noqa: E731
        assert (
            make_fused_kernel(model, tiny_graph, adjacency, model.forward, loss_fn)
            is None
        )
        with pytest.raises(ConfigError, match="custom loss_fn"):
            make_fused_kernel(
                model, tiny_graph, adjacency, model.forward, loss_fn, strict=True
            )

    def test_dense_adjacency_not_fusible(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        dense = gcn_normalize(tiny_graph.adjacency).toarray()
        assert make_fused_kernel(model, tiny_graph, dense, model.forward, None) is None
        with pytest.raises(ConfigError, match="dense ndarray, not scipy.sparse"):
            make_fused_kernel(
                model, tiny_graph, dense, model.forward, None, strict=True
            )

    def test_subclass_not_fusible(self, tiny_graph):
        class TweakedGCN(GCN):
            pass

        model = TweakedGCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        assert make_fused_kernel(model, tiny_graph, adjacency, model.forward, None) is None
        with pytest.raises(ConfigError, match="model class TweakedGCN"):
            make_fused_kernel(
                model, tiny_graph, adjacency, model.forward, None, strict=True
            )

    def test_wrapped_forward_not_fusible(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        wrapped = lambda adj, x: model.forward(adj, x)  # noqa: E731
        assert make_fused_kernel(model, tiny_graph, adjacency, wrapped, None) is None
        with pytest.raises(ConfigError, match="wrapped or overridden"):
            make_fused_kernel(
                model, tiny_graph, adjacency, wrapped, None, strict=True
            )

    def test_strict_errors_name_the_specific_component(self, tiny_graph):
        """The engine='fused' refusal must say WHAT is ineligible (bugfix)."""
        # A KLLoss bound to the wrong model class.
        gcn = GCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        rmodel, operators, kl = rgcn_setup(tiny_graph, seed=0, hidden=4)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        with pytest.raises(ConfigError, match="KLLoss pairs with GaussianGCNModel"):
            make_fused_kernel(gcn, tiny_graph, adjacency, gcn.forward, kl, strict=True)
        # A KLLoss bound to a different instance of the right class.
        other, _, _ = rgcn_setup(tiny_graph, seed=1, hidden=4)
        with pytest.raises(ConfigError, match="different model instance"):
            make_fused_kernel(
                rmodel, tiny_graph, operators, rmodel.forward,
                KLLoss(other, 5e-4), strict=True,
            )
        # A dense operator inside the (mean, variance) pair.
        dense_pair = (operators[0].toarray(), operators[1])
        with pytest.raises(ConfigError, match="mean operator is a dense ndarray"):
            make_fused_kernel(
                rmodel, tiny_graph, dense_pair, rmodel.forward, kl, strict=True
            )
        # An SSLLoss paired with the wrong model class.
        smodel, s_ops, ssl = simpgcn_setup(tiny_graph, seed=0, hidden=4, knn_k=2)
        with pytest.raises(ConfigError, match="SSLLoss pairs with SimPGCNModel"):
            make_fused_kernel(gcn, tiny_graph, s_ops, gcn.forward, ssl, strict=True)
        # The engine='fused' prefix survives through the trainer.
        with pytest.raises(ConfigError, match="engine='fused'.*custom loss_fn"):
            train_node_classifier(
                gcn, tiny_graph, CONFIG, adjacency=adjacency,
                loss_fn=lambda logits: logits.sum(), engine="fused",
            )

    def test_training_matches_eval_rules(self, tiny_graph):
        deterministic = GCN(tiny_graph.num_features, tiny_graph.num_classes, dropout=0.0)
        stochastic = GCN(tiny_graph.num_features, tiny_graph.num_classes, dropout=0.5)
        single = GCN(
            tiny_graph.num_features, tiny_graph.num_classes, num_layers=1, dropout=0.5
        )
        sgc = SGC(tiny_graph.num_features, tiny_graph.num_classes)
        assert training_matches_eval(deterministic, deterministic.forward, None)
        assert not training_matches_eval(stochastic, stochastic.forward, None)
        # Dropout only applies to inputs of layers > 0: L=1 is deterministic.
        assert training_matches_eval(single, single.forward, None)
        assert training_matches_eval(sgc, sgc.forward, None)
        assert not training_matches_eval(
            deterministic, deterministic.forward, lambda logits: logits.sum()
        )
        # GAT: deterministic exactly when dropout is off.
        gat_det = GAT(tiny_graph.num_features, tiny_graph.num_classes, dropout=0.0)
        gat_sto = GAT(tiny_graph.num_features, tiny_graph.num_classes, dropout=0.5)
        assert training_matches_eval(gat_det, gat_det.forward, None)
        assert not training_matches_eval(gat_sto, gat_sto.forward, None)
        # SimPGCN's SSL term randomizes the loss, never the logits.
        smodel, _, ssl = simpgcn_setup(tiny_graph, seed=0, hidden=4, knn_k=2)
        assert training_matches_eval(smodel, smodel.forward, ssl)
        # RGCN's training logits are sampled: never reusable for validation.
        rmodel, _, kl = rgcn_setup(tiny_graph, seed=0, hidden=4)
        assert not training_matches_eval(rmodel, rmodel.forward, kl)


class TestResolveEngine:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(None) == "auto"

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "autodiff")
        assert resolve_engine(None) == "autodiff"
        # An explicit argument wins over the environment.
        assert resolve_engine("fused") == "fused"

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            resolve_engine("turbo")

    def test_engine_list(self):
        assert set(ENGINES) == {"auto", "fused", "autodiff"}


# ---------------------------------------------------------------------------
# View-operator cache: content-addressed hits, misses, and invalidation


class TestViewCache:
    def setup_method(self):
        clear_view_cache()

    def teardown_method(self):
        clear_view_cache()

    def test_hit_and_miss_counting(self):
        features = np.arange(12.0).reshape(4, 3)
        calls = []

        def build():
            calls.append(1)
            return sp.eye(4, format="csr")

        key = array_fingerprint(features)
        cached_operator("test", key, build)
        cached_operator("test", key, build)
        assert len(calls) == 1
        stats = view_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_mutation_invalidates_by_changing_key(self):
        features = np.arange(12.0).reshape(4, 3)
        before = array_fingerprint(features)
        features[0, 0] = -1.0  # in-place mutation, same object
        after = array_fingerprint(features)
        assert before != after
        adjacency = sp.eye(4, format="csr")
        sparse_before = csr_fingerprint(adjacency)
        adjacency.data[0] = 2.0
        assert csr_fingerprint(adjacency) != sparse_before

    def test_entries_are_copies(self):
        key = ("isolated",)
        first = cached_operator("test", key, lambda: sp.eye(3, format="csr"))
        first.data[:] = 99.0
        second = cached_operator("test", key, lambda: sp.eye(3, format="csr"))
        assert second.data[0] == 1.0  # the cache entry was not poisoned

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VIEW_CACHE", "0")
        calls = []

        def build():
            calls.append(1)
            return sp.eye(2, format="csr")

        cached_operator("test", ("off",), build)
        cached_operator("test", ("off",), build)
        assert len(calls) == 2


# ---------------------------------------------------------------------------
# CLI: --engine is parsed, exported, and engine-independent in output


class TestCliEngineFlag:
    def test_parser_accepts_engine(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["defend", "GCN", "--engine", "fused"])
        assert args.engine == "fused"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["defend", "GCN", "--engine", "turbo"])

    def test_defend_output_engine_independent(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        graph_path = tmp_path / "g.npz"
        assert (
            main(
                ["dataset", "cora", "--scale", "0.05", "--seed", "1", "--out", str(graph_path)]
            )
            == 0
        )
        capsys.readouterr()  # drain the dataset command's output
        outputs = {}
        for engine in ("autodiff", "fused"):
            monkeypatch.delenv("REPRO_ENGINE", raising=False)
            assert (
                main(
                    [
                        "defend", "GCN", "--graph", str(graph_path),
                        "--seeds", "1", "--engine", engine,
                    ]
                )
                == 0
            )
            # The flag is exported so pool workers inherit it.
            import os

            assert os.environ["REPRO_ENGINE"] == engine
            outputs[engine] = capsys.readouterr().out
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert outputs["autodiff"] == outputs["fused"]


# ---------------------------------------------------------------------------
# Sweep integration: journals are engine- and jobs-independent


class TestSweepEquivalence:
    def test_journals_identical_across_engines_and_jobs(self, tmp_path, monkeypatch):
        from tests.test_parallel_sweep import cells_of, journal_records, run_sweep
        from repro.experiments import SweepCheckpoint

        # engine="auto" (not "fused"): a sweep mixes fusible trainers with
        # ineligible ones (GCN-SVD trains over a dense low-rank operator),
        # and auto is the mode that must route each to the right path with
        # identical journals.
        runs = {}
        for label, engine, jobs in (
            ("autodiff-serial", "autodiff", 1),
            ("auto-serial", "auto", 1),
            ("auto-parallel", "auto", 2),
        ):
            monkeypatch.setenv("REPRO_ENGINE", engine)
            clear_view_cache()
            workdir = tmp_path / label
            table, _, _ = run_sweep(jobs=jobs, checkpoint=SweepCheckpoint(workdir))
            runs[label] = (cells_of(table), journal_records(workdir))

        assert runs["autodiff-serial"] == runs["auto-serial"]
        assert runs["auto-serial"] == runs["auto-parallel"]

    def test_expensive_defenders_fuse_identically_in_sweeps(
        self, tmp_path, monkeypatch
    ):
        """GAT/RGCN/SimPGCN cells: fused sweeps match the autodiff oracle
        cell-for-cell and journal-for-journal, serial and parallel."""
        from tests.test_parallel_sweep import cells_of, journal_records, run_sweep
        from repro.experiments import ExperimentScale, SweepCheckpoint

        scale = ExperimentScale(scale=0.04, seeds=1, rate=0.1)
        runs = {}
        for label, engine, jobs in (
            ("autodiff-serial", "autodiff", 1),
            ("auto-serial", "auto", 1),
            ("auto-parallel", "auto", 2),
        ):
            monkeypatch.setenv("REPRO_ENGINE", engine)
            clear_view_cache()
            workdir = tmp_path / label
            table, _, _ = run_sweep(
                jobs=jobs,
                checkpoint=SweepCheckpoint(workdir),
                defenders=["GAT", "RGCN", "SimPGCN"],
                scale=scale,
            )
            runs[label] = (cells_of(table), journal_records(workdir))

        assert runs["autodiff-serial"] == runs["auto-serial"]
        assert runs["auto-serial"] == runs["auto-parallel"]
