"""Fused training engine: bit-identity, dispatch, gradients, and caching.

The fused kernels (:mod:`repro.nn.fastpath`) promise *bit-identical* weight
trajectories to the autodiff engine — not approximately equal, equal to the
last ULP.  These tests pin that promise across the whole fusible family
(GCN depths 1-4 with and without dropout, SGC, every GNAT view subset in
both merged and multi-view form), verify the closed-form backward against
finite differences, check that ineligible setups fall back (or refuse)
exactly as documented, and exercise the sweep-wide view-operator cache's
content-addressed invalidation.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import GNAT
from repro.errors import ConfigError
from repro.graph import gcn_normalize
from repro.graph.viewcache import (
    array_fingerprint,
    cached_operator,
    clear_view_cache,
    csr_fingerprint,
    view_cache_stats,
)
from repro.nn import (
    GAT,
    GCN,
    SGC,
    MultiViewForward,
    TrainConfig,
    train_node_classifier,
)
from repro.nn.fastpath import (
    ENGINES,
    make_fused_kernel,
    resolve_engine,
    training_matches_eval,
)

CONFIG = TrainConfig(epochs=30, patience=10)


def outcome(result):
    return (
        result.train_losses,
        result.val_accuracies,
        result.best_val_accuracy,
        result.test_accuracy,
        result.epochs_run,
    )


def assert_same_weights(model_a, model_b):
    for left, right in zip(model_a.state_dict(), model_b.state_dict()):
        assert np.array_equal(left, right)


# ---------------------------------------------------------------------------
# Bit-identity: fused vs autodiff walk the same trajectory


class TestGCNBitIdentity:
    @pytest.mark.parametrize("num_layers", [1, 2, 3, 4])
    @pytest.mark.parametrize("dropout", [0.0, 0.5])
    def test_trajectory_identical(self, small_cora, num_layers, dropout):
        results = {}
        for engine in ("autodiff", "fused"):
            model = GCN(
                small_cora.num_features,
                small_cora.num_classes,
                hidden_dim=8,
                num_layers=num_layers,
                dropout=dropout,
                seed=42,
            )
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, engine=engine
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)

    def test_auto_equals_fused(self, small_cora):
        results = {}
        for engine in ("auto", "fused"):
            model = GCN(
                small_cora.num_features, small_cora.num_classes, seed=3
            )
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, engine=engine
            )
        assert outcome(results["auto"]) == outcome(results["fused"])


class TestSGCBitIdentity:
    def test_trajectory_identical(self, small_cora):
        results = {}
        for engine in ("autodiff", "fused"):
            model = SGC(small_cora.num_features, small_cora.num_classes, seed=9)
            results[engine] = train_node_classifier(
                model, small_cora, CONFIG, engine=engine
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)


class TestGNATBitIdentity:
    @pytest.mark.parametrize("views", ["tfe", "t", "f", "e", "tf"])
    @pytest.mark.parametrize("merged", [False, True])
    def test_fit_identical(self, small_cora, views, merged):
        accuracies = {}
        for engine in ("autodiff", "fused"):
            clear_view_cache()
            defender = GNAT(
                views=views,
                merge_views=merged,
                train_config=CONFIG,
                engine=engine,
                seed=5,
            )
            result = defender.fit(small_cora)
            accuracies[engine] = (result.test_accuracy, result.val_accuracy)
        assert accuracies["autodiff"] == accuracies["fused"]

    def test_multi_view_weights_identical(self, small_cora):
        """Direct trainer-level check with weight access (3-view GNAT math)."""
        operators = [
            gcn_normalize(small_cora.adjacency),
            gcn_normalize(sp.eye(small_cora.num_nodes, format="csr")),
        ]
        results = {}
        for engine in ("autodiff", "fused"):
            model = GCN(
                small_cora.num_features, small_cora.num_classes, seed=17
            )
            results[engine] = train_node_classifier(
                model,
                small_cora,
                CONFIG,
                adjacency=operators[0],
                forward=MultiViewForward(model, operators),
                engine=engine,
            )
        assert outcome(results["autodiff"]) == outcome(results["fused"])
        assert_same_weights(results["autodiff"].model, results["fused"].model)


# ---------------------------------------------------------------------------
# Gradcheck: the closed-form backward against finite differences


def _numeric_check(kernel, params, atol=1e-5, rtol=1e-4, eps=1e-6):
    """Central-difference check of every parameter grad of a fused kernel."""
    kernel.train_forward()
    kernel.backward()
    analytic = [np.array(p.grad, copy=True) for p in params]
    for param, grad in zip(params, analytic):
        flat = param.data.reshape(-1)
        numeric = np.zeros_like(flat)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus, _ = kernel.train_forward()
            flat[i] = original - eps
            minus, _ = kernel.train_forward()
            flat[i] = original
            numeric[i] = (plus - minus) / (2.0 * eps)
        assert np.allclose(grad.reshape(-1), numeric, atol=atol, rtol=rtol), (
            f"max abs diff {np.max(np.abs(grad.reshape(-1) - numeric)):.3e}"
        )


class TestGradcheck:
    def test_fused_gcn_backward(self, tiny_graph):
        model = GCN(
            tiny_graph.num_features,
            tiny_graph.num_classes,
            hidden_dim=5,
            num_layers=3,
            dropout=0.0,  # deterministic forward, required for differencing
            seed=1,
        )
        adjacency = gcn_normalize(tiny_graph.adjacency)
        kernel = make_fused_kernel(
            model, tiny_graph, adjacency, model.forward, None
        )
        assert kernel is not None
        _numeric_check(kernel, list(model.parameters()))

    def test_fused_multiview_backward(self, tiny_graph):
        model = GCN(
            tiny_graph.num_features,
            tiny_graph.num_classes,
            hidden_dim=5,
            dropout=0.0,
            seed=2,
        )
        operators = [
            gcn_normalize(tiny_graph.adjacency),
            gcn_normalize(sp.eye(tiny_graph.num_nodes, format="csr")),
        ]
        forward = MultiViewForward(model, operators)
        kernel = make_fused_kernel(model, tiny_graph, operators[0], forward, None)
        assert kernel is not None
        _numeric_check(kernel, list(model.parameters()))


# ---------------------------------------------------------------------------
# Dispatch: what fuses, what falls back, what refuses


class TestDispatch:
    def test_gat_not_fusible(self, tiny_graph):
        model = GAT(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        assert make_fused_kernel(model, tiny_graph, adjacency, model.forward, None) is None
        with pytest.raises(ConfigError, match="engine='fused'"):
            train_node_classifier(
                model, tiny_graph, CONFIG, engine="fused"
            )
        # auto silently falls back and still trains.
        result = train_node_classifier(model, tiny_graph, CONFIG, engine="auto")
        assert result.epochs_run > 0

    def test_extra_loss_fn_not_fusible(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        loss_fn = lambda logits: (logits * 0.0).sum()  # noqa: E731
        assert (
            make_fused_kernel(model, tiny_graph, adjacency, model.forward, loss_fn)
            is None
        )

    def test_dense_adjacency_not_fusible(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        dense = gcn_normalize(tiny_graph.adjacency).toarray()
        assert make_fused_kernel(model, tiny_graph, dense, model.forward, None) is None

    def test_subclass_not_fusible(self, tiny_graph):
        class TweakedGCN(GCN):
            pass

        model = TweakedGCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        assert make_fused_kernel(model, tiny_graph, adjacency, model.forward, None) is None

    def test_wrapped_forward_not_fusible(self, tiny_graph):
        model = GCN(tiny_graph.num_features, tiny_graph.num_classes, seed=0)
        adjacency = gcn_normalize(tiny_graph.adjacency)
        wrapped = lambda adj, x: model.forward(adj, x)  # noqa: E731
        assert make_fused_kernel(model, tiny_graph, adjacency, wrapped, None) is None

    def test_training_matches_eval_rules(self, tiny_graph):
        deterministic = GCN(tiny_graph.num_features, tiny_graph.num_classes, dropout=0.0)
        stochastic = GCN(tiny_graph.num_features, tiny_graph.num_classes, dropout=0.5)
        single = GCN(
            tiny_graph.num_features, tiny_graph.num_classes, num_layers=1, dropout=0.5
        )
        sgc = SGC(tiny_graph.num_features, tiny_graph.num_classes)
        assert training_matches_eval(deterministic, deterministic.forward, None)
        assert not training_matches_eval(stochastic, stochastic.forward, None)
        # Dropout only applies to inputs of layers > 0: L=1 is deterministic.
        assert training_matches_eval(single, single.forward, None)
        assert training_matches_eval(sgc, sgc.forward, None)
        assert not training_matches_eval(
            deterministic, deterministic.forward, lambda logits: logits.sum()
        )


class TestResolveEngine:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(None) == "auto"

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "autodiff")
        assert resolve_engine(None) == "autodiff"
        # An explicit argument wins over the environment.
        assert resolve_engine("fused") == "fused"

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            resolve_engine("turbo")

    def test_engine_list(self):
        assert set(ENGINES) == {"auto", "fused", "autodiff"}


# ---------------------------------------------------------------------------
# View-operator cache: content-addressed hits, misses, and invalidation


class TestViewCache:
    def setup_method(self):
        clear_view_cache()

    def teardown_method(self):
        clear_view_cache()

    def test_hit_and_miss_counting(self):
        features = np.arange(12.0).reshape(4, 3)
        calls = []

        def build():
            calls.append(1)
            return sp.eye(4, format="csr")

        key = array_fingerprint(features)
        cached_operator("test", key, build)
        cached_operator("test", key, build)
        assert len(calls) == 1
        stats = view_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_mutation_invalidates_by_changing_key(self):
        features = np.arange(12.0).reshape(4, 3)
        before = array_fingerprint(features)
        features[0, 0] = -1.0  # in-place mutation, same object
        after = array_fingerprint(features)
        assert before != after
        adjacency = sp.eye(4, format="csr")
        sparse_before = csr_fingerprint(adjacency)
        adjacency.data[0] = 2.0
        assert csr_fingerprint(adjacency) != sparse_before

    def test_entries_are_copies(self):
        key = ("isolated",)
        first = cached_operator("test", key, lambda: sp.eye(3, format="csr"))
        first.data[:] = 99.0
        second = cached_operator("test", key, lambda: sp.eye(3, format="csr"))
        assert second.data[0] == 1.0  # the cache entry was not poisoned

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VIEW_CACHE", "0")
        calls = []

        def build():
            calls.append(1)
            return sp.eye(2, format="csr")

        cached_operator("test", ("off",), build)
        cached_operator("test", ("off",), build)
        assert len(calls) == 2


# ---------------------------------------------------------------------------
# CLI: --engine is parsed, exported, and engine-independent in output


class TestCliEngineFlag:
    def test_parser_accepts_engine(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["defend", "GCN", "--engine", "fused"])
        assert args.engine == "fused"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["defend", "GCN", "--engine", "turbo"])

    def test_defend_output_engine_independent(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        graph_path = tmp_path / "g.npz"
        assert (
            main(
                ["dataset", "cora", "--scale", "0.05", "--seed", "1", "--out", str(graph_path)]
            )
            == 0
        )
        capsys.readouterr()  # drain the dataset command's output
        outputs = {}
        for engine in ("autodiff", "fused"):
            monkeypatch.delenv("REPRO_ENGINE", raising=False)
            assert (
                main(
                    [
                        "defend", "GCN", "--graph", str(graph_path),
                        "--seeds", "1", "--engine", engine,
                    ]
                )
                == 0
            )
            # The flag is exported so pool workers inherit it.
            import os

            assert os.environ["REPRO_ENGINE"] == engine
            outputs[engine] = capsys.readouterr().out
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert outputs["autodiff"] == outputs["fused"]


# ---------------------------------------------------------------------------
# Sweep integration: journals are engine- and jobs-independent


class TestSweepEquivalence:
    def test_journals_identical_across_engines_and_jobs(self, tmp_path, monkeypatch):
        from tests.test_parallel_sweep import cells_of, journal_records, run_sweep
        from repro.experiments import SweepCheckpoint

        # engine="auto" (not "fused"): a sweep mixes fusible trainers with
        # ineligible ones (GCN-SVD trains over a dense low-rank operator),
        # and auto is the mode that must route each to the right path with
        # identical journals.
        runs = {}
        for label, engine, jobs in (
            ("autodiff-serial", "autodiff", 1),
            ("auto-serial", "auto", 1),
            ("auto-parallel", "auto", 2),
        ):
            monkeypatch.setenv("REPRO_ENGINE", engine)
            clear_view_cache()
            workdir = tmp_path / label
            table, _, _ = run_sweep(jobs=jobs, checkpoint=SweepCheckpoint(workdir))
            runs[label] = (cells_of(table), journal_records(workdir))

        assert runs["autodiff-serial"] == runs["auto-serial"]
        assert runs["auto-serial"] == runs["auto-parallel"]
