"""Property tier for the sampled-block attackers.

Invariants, over seeds and budgets: sampled blocks are deduplicated
canonical pairs with exclusions honored; the budget projection stays inside
its polytope and preserves order; attacks never exceed the budget, never
flip a pair twice, never add self-loops, keep the poisoned graph inside the
strict graph contract; identical seeds give bit-identical flip sequences —
including through PRBCD's resampling path and across ``--jobs 1``/``--jobs
2`` sweep execution; infeasible budgets clamp with a warning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import GRBCD, PRBCD
from repro.attacks.base import AttackBudget, feasible_budget_ceiling
from repro.attacks.rbcd import (
    decode_pair_keys,
    encode_pair_keys,
    project_onto_budget,
    sample_candidate_pairs,
)
from repro.errors import BudgetWarning, ConfigError
from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    make_executor,
)
from repro.graph import check_graph

ATTACKER_CLASSES = [PRBCD, GRBCD]


def _flips(result):
    return [(f.u, f.v) for f in result.edge_flips]


# ---------------------------------------------------------------------------
# Block sampler


@pytest.mark.parametrize("seed", range(5))
def test_sampled_blocks_are_unique_canonical_pairs(seed):
    rng = np.random.default_rng(seed)
    keys = sample_candidate_pairs(rng, num_nodes=200, count=3000)
    assert len(np.unique(keys)) == len(keys)
    uu, vv = decode_pair_keys(keys, 200)
    assert np.all(uu < vv)  # canonical and self-loop-free
    assert np.all((keys >= 0) & (keys < 200 * 200))


@pytest.mark.parametrize("seed", range(5))
def test_sampler_exclusion_is_honored(seed):
    rng = np.random.default_rng(seed)
    excluded = sample_candidate_pairs(np.random.default_rng(99), 50, 300)
    keys = sample_candidate_pairs(rng, 50, 2000, exclude_keys=excluded)
    assert len(np.intersect1d(keys, excluded)) == 0


def test_encode_decode_roundtrip():
    rng = np.random.default_rng(0)
    uu = rng.integers(0, 1000, size=500)
    vv = rng.integers(0, 1000, size=500)
    keep = uu != vv
    keys = encode_pair_keys(uu[keep], vv[keep], 1000)
    du, dv = decode_pair_keys(keys, 1000)
    np.testing.assert_array_equal(du, np.minimum(uu[keep], vv[keep]))
    np.testing.assert_array_equal(dv, np.maximum(uu[keep], vv[keep]))


# ---------------------------------------------------------------------------
# Budget projection


@pytest.mark.parametrize("seed", range(5))
def test_projection_stays_in_polytope(seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(0.0, 3.0, size=400)
    out = project_onto_budget(w, 17.0)
    assert np.all(out >= 0.0) and np.all(out <= 1.0)
    assert float(out.sum()) <= 17.0 + 1e-9


def test_projection_is_monotone():
    rng = np.random.default_rng(3)
    w = rng.normal(0.0, 2.0, size=300)
    out = project_onto_budget(w, 9.0)
    order = np.argsort(w)
    assert np.all(np.diff(out[order]) >= -1e-12)


def test_projection_feasible_input_only_clips():
    w = np.array([-0.5, 0.2, 0.9, 1.7])
    np.testing.assert_array_equal(
        project_onto_budget(w, 10.0), np.clip(w, 0.0, 1.0)
    )


# ---------------------------------------------------------------------------
# Attack invariants


@pytest.mark.parametrize("attacker_cls", ATTACKER_CLASSES)
@pytest.mark.parametrize("budget", [0, 1, 7, 23])
def test_budget_never_exceeded(small_cora, attacker_cls, budget):
    result = attacker_cls(lam=0.0, p=2, block_size=400, seed=11).attack(
        small_cora, AttackBudget(total=float(budget))
    )
    assert len(result.edge_flips) <= budget
    result.verify_budget()
    # No duplicate flips: every flip lands on a distinct pair, so the
    # structural distance equals the flip count exactly.
    pairs = {(min(u, v), max(u, v)) for u, v in _flips(result)}
    assert len(pairs) == len(result.edge_flips)


@pytest.mark.parametrize("attacker_cls", ATTACKER_CLASSES)
def test_poisoned_graph_passes_strict_contract(small_cora, attacker_cls):
    result = attacker_cls(lam=0.0, p=2, block_size=400, seed=2).attack(
        small_cora, AttackBudget(total=12.0)
    )
    assert check_graph(result.poisoned) == []  # symmetric, binary, no loops
    assert all(u != v for u, v in _flips(result))


@pytest.mark.parametrize("attacker_cls", ATTACKER_CLASSES)
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_identical_seed_gives_bit_identical_flips(small_cora, attacker_cls, seed):
    runs = [
        attacker_cls(lam=0.0, p=2, block_size=350, seed=seed).attack(
            small_cora, AttackBudget(total=10.0)
        )
        for _ in range(2)
    ]
    assert _flips(runs[0]) == _flips(runs[1])
    np.testing.assert_array_equal(
        np.asarray(runs[0].objective_trace), np.asarray(runs[1].objective_trace)
    )


def test_prbcd_resampling_path_is_deterministic(small_cora):
    # A tiny block with several epochs exercises the resample/merge path
    # every epoch; the run must still be bit-reproducible.
    kwargs = dict(lam=0.0, p=2, block_size=60, epochs=6, seed=9)
    a = PRBCD(**kwargs).attack(small_cora, AttackBudget(total=8.0))
    b = PRBCD(**kwargs).attack(small_cora, AttackBudget(total=8.0))
    assert _flips(a) == _flips(b)


@pytest.mark.parametrize("attacker_cls", ATTACKER_CLASSES)
def test_infeasible_budget_clamps_with_warning(tiny_graph, attacker_cls):
    ceiling = feasible_budget_ceiling(tiny_graph)
    with pytest.warns(BudgetWarning, match="feasible flip ceiling"):
        result = attacker_cls(lam=0.0, p=2, block_size=100, seed=0).attack(
            tiny_graph, budget=AttackBudget(total=ceiling * 10)
        )
    assert result.budget.total == ceiling
    result.verify_budget()


@pytest.mark.parametrize("attacker_cls", ATTACKER_CLASSES)
def test_config_validation(attacker_cls):
    with pytest.raises(ConfigError):
        attacker_cls(block_size=0)
    with pytest.raises(ConfigError):
        attacker_cls(layers=0)
    with pytest.raises(ConfigError):
        PRBCD(epochs=0)
    with pytest.raises(ConfigError):
        PRBCD(lr=0.0)
    with pytest.raises(ConfigError):
        GRBCD(flips_per_step=0)


# ---------------------------------------------------------------------------
# Sweep determinism across --jobs 1 / --jobs 2


def _sweep_cells(jobs):
    runner = ExperimentRunner(
        ExperimentScale(scale=0.04, seeds=2, rate=0.1),
        executor=make_executor(jobs),
    )
    table = runner.accuracy_table(
        "cora", attackers=["PRBCD", "GRBCD"], defenders=["GCN"]
    )
    return {
        (row, name): (cell.values if cell is not None else None)
        for row, columns in table.rows.items()
        for name, cell in columns.items()
    }


def test_sweep_bit_identical_across_jobs(tmp_path):
    serial = _sweep_cells(jobs=1)
    parallel = _sweep_cells(jobs=2)
    assert serial.keys() == parallel.keys()
    for key in serial:
        if serial[key] is None:
            assert parallel[key] is None
        else:
            np.testing.assert_array_equal(
                np.asarray(serial[key]), np.asarray(parallel[key])
            )
