"""Training loop: early stopping, best-weight restoration, hooks, metrics."""

import numpy as np
import pytest
from dataclasses import replace

from repro.errors import ConfigError, ShapeError
from repro.nn import GCN, TrainConfig, accuracy, confusion_matrix, train_node_classifier
from repro.tensor import Tensor


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainConfig(epochs=0)
        with pytest.raises(ConfigError):
            TrainConfig(patience=0)


class TestTrainingLoop:
    def test_loss_decreases(self, small_cora):
        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        result = train_node_classifier(model, small_cora, TrainConfig(epochs=50, patience=50))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_early_stopping_triggers(self, small_cora):
        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        result = train_node_classifier(model, small_cora, TrainConfig(epochs=500, patience=5))
        assert result.epochs_run < 500

    def test_best_weights_restored(self, small_cora):
        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        result = train_node_classifier(model, small_cora, TrainConfig(epochs=60))
        # Re-evaluating with the restored weights reproduces best val acc.
        from repro.graph import gcn_normalize
        from repro.nn import evaluate

        val_acc = evaluate(
            model,
            gcn_normalize(small_cora.adjacency),
            small_cora.features,
            small_cora.labels,
            small_cora.val_mask,
        )
        assert val_acc == pytest.approx(result.best_val_accuracy)

    def test_requires_labels_and_masks(self, small_cora):
        bare = replace(small_cora, labels=None)
        with pytest.raises(ConfigError):
            train_node_classifier(GCN(4, 2, seed=0), bare)
        no_masks = replace(small_cora, train_mask=None)
        with pytest.raises(ConfigError):
            train_node_classifier(GCN(4, 2, seed=0), no_masks)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_nonfinite_loss_raises_divergence_error(self, small_cora, bad):
        from repro.errors import DivergenceError

        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        with pytest.raises(DivergenceError) as excinfo:
            train_node_classifier(
                model,
                small_cora,
                TrainConfig(epochs=5),
                loss_fn=lambda logits: Tensor(bad),
            )
        assert excinfo.value.epoch == 0
        assert not np.isfinite(excinfo.value.loss)

    def test_extra_loss_hook_called(self, small_cora):
        calls = []

        def hook(logits):
            calls.append(1)
            return Tensor(0.0)

        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        result = train_node_classifier(
            model, small_cora, TrainConfig(epochs=5, patience=5), loss_fn=hook
        )
        assert len(calls) == result.epochs_run

    def test_custom_adjacency_used(self, small_cora):
        # Identity adjacency disables propagation: the model becomes an MLP.
        import scipy.sparse as sp

        model = GCN(small_cora.num_features, small_cora.num_classes, dropout=0.0, seed=0)
        result = train_node_classifier(
            model,
            small_cora,
            TrainConfig(epochs=30),
            adjacency=sp.eye(small_cora.num_nodes, format="csr"),
        )
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_missing_test_mask_defaults_to_complement(self, small_cora):
        graph = replace(small_cora, test_mask=None)
        model = GCN(graph.num_features, graph.num_classes, seed=0)
        result = train_node_classifier(model, graph, TrainConfig(epochs=10))
        assert 0.0 <= result.test_accuracy <= 1.0


class TestMetrics:
    def test_accuracy_with_logits_and_labels(self):
        logits = np.array([[2.0, 0.0], [0.0, 3.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)
        assert accuracy(np.array([0, 1, 1]), labels) == 1.0

    def test_accuracy_mask(self):
        preds = np.array([0, 1, 0])
        labels = np.array([0, 0, 0])
        assert accuracy(preds, labels, np.array([True, False, True])) == 1.0

    def test_accuracy_tensor_input(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0

    def test_accuracy_validations(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([0, 1]), np.array([0]))
        with pytest.raises(ShapeError):
            accuracy(np.array([0]), np.array([0]), np.array([False]))

    def test_confusion_matrix(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(preds, labels)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4
