"""The linearized propagation surrogate A_n^l X (paper Eq. 7)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.graph import gcn_normalize
from repro.surrogate import linear_propagation, propagation_matrix
from repro.tensor import Tensor


class TestPropagationMatrix:
    def test_sparse_power(self, tiny_graph):
        normalized = gcn_normalize(tiny_graph.adjacency)
        squared = propagation_matrix(tiny_graph.adjacency, layers=2)
        np.testing.assert_allclose(
            squared.toarray(), (normalized @ normalized).toarray(), atol=1e-12
        )

    def test_dense_matches_sparse(self, tiny_graph):
        sparse_m = propagation_matrix(tiny_graph.adjacency, layers=3).toarray()
        dense_m = propagation_matrix(tiny_graph.dense_adjacency(), layers=3).data
        np.testing.assert_allclose(sparse_m, dense_m, atol=1e-9)

    def test_invalid_layers(self, tiny_graph):
        with pytest.raises(ConfigError):
            propagation_matrix(tiny_graph.adjacency, layers=0)


class TestLinearPropagation:
    def test_constant_path_returns_array(self, tiny_graph):
        out = linear_propagation(tiny_graph.adjacency, tiny_graph.features, layers=2)
        assert isinstance(out, np.ndarray)
        assert out.shape == tiny_graph.features.shape

    def test_all_paths_agree(self, tiny_graph):
        constant = linear_propagation(tiny_graph.adjacency, tiny_graph.features, 2)
        sparse_tensor = linear_propagation(
            tiny_graph.adjacency, Tensor(tiny_graph.features), 2
        )
        dense_tensor = linear_propagation(
            Tensor(tiny_graph.dense_adjacency()), Tensor(tiny_graph.features), 2
        )
        np.testing.assert_allclose(constant, sparse_tensor.data, atol=1e-10)
        np.testing.assert_allclose(constant, dense_tensor.data, atol=1e-10)

    def test_matches_explicit_matrix_power(self, tiny_graph):
        direct = linear_propagation(tiny_graph.adjacency, tiny_graph.features, 3)
        power = propagation_matrix(tiny_graph.adjacency, 3) @ tiny_graph.features
        np.testing.assert_allclose(direct, power, atol=1e-10)

    def test_gradients_flow_to_adjacency_and_features(self, tiny_graph):
        adj = Tensor(tiny_graph.dense_adjacency(), requires_grad=True)
        feats = Tensor(tiny_graph.features, requires_grad=True)
        linear_propagation(adj, feats, 2).sum().backward()
        assert adj.grad is not None and np.isfinite(adj.grad).all()
        assert feats.grad is not None and np.isfinite(feats.grad).all()

    def test_one_layer_is_single_aggregation(self, tiny_graph):
        normalized = gcn_normalize(tiny_graph.adjacency)
        out = linear_propagation(tiny_graph.adjacency, tiny_graph.features, 1)
        np.testing.assert_allclose(out, normalized @ tiny_graph.features, atol=1e-12)

    def test_invalid_layers(self, tiny_graph):
        with pytest.raises(ConfigError):
            linear_propagation(tiny_graph.adjacency, tiny_graph.features, 0)
