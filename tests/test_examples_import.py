"""Examples must at least parse, import, and expose a main() entry point.

Full runs take minutes each (they are exercised manually / in CI's nightly
lane); this guards against import-time breakage from library refactors.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} lacks a main()"
    assert callable(module.main)
    assert module.__doc__, f"{path.name} lacks a module docstring"


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "privacy_publication",
        "attack_comparison",
        "robust_training",
        "targeted_attack",
    } <= names
