"""CLI: every subcommand end-to-end through main()."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_attack_result, load_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "cora.npz"
    code = main(["dataset", "cora", "--scale", "0.05", "--seed", "1", "--out", str(path)])
    assert code == 0
    return path


@pytest.fixture
def attack_file(tmp_path, graph_file):
    path = tmp_path / "poison.npz"
    code = main(
        ["attack", "PEEGA", "--graph", str(graph_file), "--rate", "0.05", "--out", str(path)]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_attacker_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "Nope", "--out", "x.npz"])


class TestDatasetCommand:
    def test_writes_loadable_graph(self, graph_file, capsys):
        graph = load_graph(graph_file)
        assert graph.name == "cora"
        assert graph.num_nodes >= 80


class TestAttackCommand:
    def test_writes_attack_archive(self, attack_file):
        result = load_attack_result(attack_file)
        assert result.num_perturbations > 0
        result.verify_budget()

    def test_dataset_source(self, tmp_path, capsys):
        out = tmp_path / "p.npz"
        code = main(
            [
                "attack", "PEEGA", "--dataset", "cora", "--scale", "0.05",
                "--rate", "0.05", "--out", str(out),
            ]
        )
        assert code == 0
        assert "edge flips" in capsys.readouterr().out

    def test_both_sources_rejected(self, tmp_path, graph_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "attack", "PEEGA", "--graph", str(graph_file), "--dataset",
                    "cora", "--out", str(tmp_path / "x.npz"),
                ]
            )


class TestDefendCommand:
    def test_defend_on_attack_archive(self, attack_file, capsys):
        code = main(["defend", "GCN", "--attack", str(attack_file), "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GCN on cora" in out

    def test_defend_on_clean_graph(self, graph_file, capsys):
        code = main(["defend", "GNAT", "--graph", str(graph_file), "--seeds", "1"])
        assert code == 0
        assert "GNAT" in capsys.readouterr().out

    def test_exactly_one_source(self, graph_file, attack_file):
        with pytest.raises(SystemExit):
            main(["defend", "GCN", "--graph", str(graph_file), "--attack", str(attack_file)])
        with pytest.raises(SystemExit):
            main(["defend", "GCN"])


class TestAnalyzeAndInfo:
    def test_analyze(self, attack_file, capsys):
        code = main(["analyze", "--attack", str(attack_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "homophily" in out and "add_diff" in out

    def test_info(self, graph_file, capsys):
        code = main(["info", "--graph", str(graph_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "degrees" in out and "homophily" in out


class TestTableCommand:
    def test_small_table(self, capsys):
        code = main(
            [
                "table", "cora", "--scale", "0.05", "--seeds", "1",
                "--attackers", "PEEGA", "--defenders", "GCN", "GNAT",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PEEGA" in out and "GNAT" in out and "Clean" in out
