"""Parallel sweep execution: equivalence, resume, and fault accounting.

The determinism contract (docs/parallel_sweeps.md): a sweep run with
``--jobs N`` produces the *bit-identical* AccuracyTable, failure appendix,
and (order-normalized) checkpoint journal as ``--jobs 1`` — completion
order must never leak into the output.  These tests pin that contract
down, including under injected faults, an injected mid-sweep kill with
``--resume``, and fault-injection rules that must fire inside pool
workers with the same trial-index accounting as a serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    ParallelTrialExecutor,
    SerialTrialExecutor,
    SweepCheckpoint,
    SweepPlan,
    SweepTimings,
    TrialPolicy,
    TrialSupervisor,
    make_executor,
)
from repro.utils import faults
from repro.utils.blas import (
    BLAS_ENV_VARS,
    blas_thread_budget,
    limit_blas_threads,
    plan_worker_threads,
)
from repro.utils.faults import FaultInjector, InjectedKill

CONFIG = ExperimentScale(scale=0.04, seeds=2, rate=0.1)
ATTACKERS = ["PEEGA"]
DEFENDERS = ["GCN", "GCN-SVD"]
JOBS = 2


def run_sweep(
    jobs=1,
    checkpoint=None,
    fault_spec=None,
    deadline=None,
    attackers=None,
    defenders=None,
    scale=None,
):
    executor = make_executor(jobs)
    runner = ExperimentRunner(
        scale or CONFIG,
        supervisor=TrialSupervisor(TrialPolicy(max_attempts=2, deadline_seconds=deadline)),
        checkpoint=checkpoint,
        executor=executor,
    )
    injector = FaultInjector(FaultInjector.parse(fault_spec)) if fault_spec else None
    with faults.active(injector):
        table = runner.accuracy_table(
            "cora",
            attackers=attackers or ATTACKERS,
            defenders=defenders or DEFENDERS,
        )
    return table, executor, injector


def cells_of(table):
    return {
        (row, name): (cell.values if cell is not None else None)
        for row, columns in table.rows.items()
        for name, cell in columns.items()
    }


def failures_of(table):
    """Failure appendix normalized to its deterministic fields."""
    return [
        (f.key.attacker, f.key.defender, f.key.seed, f.attempts, f.error_type)
        for f in table.failures
    ]


def journal_records(checkpoint_dir):
    """Journal contents normalized for order and volatile fields."""
    cells, failures = [], []
    path = checkpoint_dir / "journal.jsonl"
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record["kind"] == "cell":
            cells.append(
                (record["attacker"], record["defender"], tuple(record["values"]))
            )
        else:
            failures.append(
                (
                    record["attacker"],
                    record.get("defender"),
                    record.get("seed"),
                    record["attempts"],
                    record["error_type"],
                )
            )
    return sorted(cells), sorted(failures)


# ---------------------------------------------------------------------------
# Bit-equivalence


class TestParallelSerialEquivalence:
    def test_clean_sweep_bit_identical(self, tmp_path):
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        serial, _, _ = run_sweep(jobs=1, checkpoint=SweepCheckpoint(serial_dir))
        parallel, executor, _ = run_sweep(jobs=JOBS, checkpoint=SweepCheckpoint(parallel_dir))

        assert cells_of(serial) == cells_of(parallel)
        assert serial.failures == parallel.failures == []
        assert journal_records(serial_dir) == journal_records(parallel_dir)
        # The sweep really went through the pool, and the instrumentation saw it.
        assert executor.timings.jobs == JOBS
        assert len(executor.timings.trials) == 1 + 2 * len(DEFENDERS) * CONFIG.seeds
        assert executor.timings.makespan_seconds > 0

    def test_permanent_defender_failure_identical(self, tmp_path):
        spec = "defender:throw:defender=GCN-SVD"
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        serial, _, _ = run_sweep(
            jobs=1, checkpoint=SweepCheckpoint(serial_dir), fault_spec=spec
        )
        parallel, _, _ = run_sweep(
            jobs=JOBS, checkpoint=SweepCheckpoint(parallel_dir), fault_spec=spec
        )

        assert cells_of(serial) == cells_of(parallel)
        # One canonical-first failure despite both rows hitting the defender.
        assert len(parallel.failures) == 1
        assert failures_of(serial) == failures_of(parallel)
        assert parallel.num_failed_cells == serial.num_failed_cells == 2
        assert journal_records(serial_dir) == journal_records(parallel_dir)

    def test_attack_failure_identical(self):
        spec = "attacker:throw"
        serial, _, _ = run_sweep(jobs=1, fault_spec=spec)
        parallel, _, _ = run_sweep(jobs=JOBS, fault_spec=spec)

        assert cells_of(serial) == cells_of(parallel)
        assert failures_of(serial) == failures_of(parallel)
        # The whole PEEGA row is n/a; Clean is unaffected.
        assert all(cell is None for cell in parallel.rows["PEEGA"].values())
        assert all(cell is not None for cell in parallel.rows["Clean"].values())


# ---------------------------------------------------------------------------
# Kill → resume under parallel execution


class TestParallelResume:
    def test_kill_then_resume_matches_uninterrupted(self, tmp_path):
        reference, _, _ = run_sweep(jobs=1)

        workdir = tmp_path / "ckpt"
        with pytest.raises(InjectedKill):
            run_sweep(
                jobs=JOBS,
                checkpoint=SweepCheckpoint(workdir),
                fault_spec="defender:kill:attacker=PEEGA:defender=GCN-SVD:seed=1",
            )

        # The attack completed before the kill, so its poison is on disk and
        # must be reused (not regenerated) on resume.
        poisons = list(workdir.glob("poison_*.npz"))
        assert len(poisons) == 1
        mtime = poisons[0].stat().st_mtime_ns

        resumed, _, _ = run_sweep(
            jobs=JOBS, checkpoint=SweepCheckpoint(workdir, resume=True)
        )
        assert cells_of(resumed) == cells_of(reference)
        assert resumed.failures == []
        assert poisons[0].stat().st_mtime_ns == mtime

    def test_resume_serial_after_parallel_kill(self, tmp_path):
        """Jobs is an execution knob, not part of the checkpoint format."""
        reference, _, _ = run_sweep(jobs=1)
        workdir = tmp_path / "ckpt"
        with pytest.raises(InjectedKill):
            run_sweep(
                jobs=JOBS,
                checkpoint=SweepCheckpoint(workdir),
                fault_spec="defender:kill:attacker=PEEGA:defender=GCN:seed=0",
            )
        resumed, _, _ = run_sweep(jobs=1, checkpoint=SweepCheckpoint(workdir, resume=True))
        assert cells_of(resumed) == cells_of(reference)


# ---------------------------------------------------------------------------
# Fault injection inside pool workers


class TestFaultsInWorkers:
    def test_transient_fault_absorbed_in_worker(self):
        """A times=1 throw retries inside the worker and the value survives.

        The retried attempt reseeds (seed + RESEED_STRIDE) identically in
        both modes, so the faulted sweep is still serial/parallel
        bit-identical — just not identical to an unfaulted sweep.
        """
        spec = "defender:throw:times=1:attacker=Clean:defender=GCN:seed=0"
        serial, _, _ = run_sweep(jobs=1, fault_spec=spec)
        parallel, _, injector = run_sweep(jobs=JOBS, fault_spec=spec)

        assert cells_of(parallel) == cells_of(serial)
        assert serial.failures == [] and parallel.failures == []
        # The worker's fault events were merged back into the parent injector.
        assert len(injector.events) == 1
        assert injector.events[0].site == "defender"
        assert dict(injector.events[0].context)["attempt"] == "0"

    def test_at_rule_fires_on_canonical_trial_index(self):
        """at=N accounting survives the process boundary.

        Canonical defender-site order for this grid: Clean/GCN seeds 0-1,
        Clean/GCN-SVD seeds 0-1, PEEGA/GCN seeds 0-1, ...; at=3 is
        Clean/GCN-SVD seed 1 in both execution modes.
        """
        spec = "defender:throw:at=3"
        serial, _, serial_injector = run_sweep(jobs=1, fault_spec=spec)
        parallel, _, parallel_injector = run_sweep(jobs=JOBS, fault_spec=spec)

        # The hit trial's retry advances past at=3 and succeeds (with the
        # reseeded attempt-1 value) — identically in both modes.
        assert serial.failures == [] and parallel.failures == []
        assert cells_of(serial) == cells_of(parallel)
        serial_events = [
            (e.site, e.index, dict(e.context)["defender"], dict(e.context)["seed"])
            for e in serial_injector.events
        ]
        parallel_events = [
            (e.site, e.index, dict(e.context)["defender"], dict(e.context)["seed"])
            for e in parallel_injector.events
        ]
        assert serial_events == parallel_events == [("defender", 3, "GCN-SVD", "1")]

    def test_hang_deadline_enforced_in_worker(self):
        spec = "defender:hang:seconds=15:defender=GCN-SVD"
        parallel, _, _ = run_sweep(jobs=JOBS, fault_spec=spec, deadline=0.5)
        assert len(parallel.failures) == 1
        assert parallel.failures[0].error_type == "DeadlineError"
        assert parallel.rows["Clean"]["GCN"] is not None
        assert parallel.rows["Clean"]["GCN-SVD"] is None


# ---------------------------------------------------------------------------
# Planning and scaffolding units


class TestSweepPlan:
    def test_canonical_order_and_dependencies(self):
        plan = SweepPlan.build(
            dataset="Cora",
            rows=["Clean", "PEEGA"],
            defenders=["GCN", "GCN-SVD"],
            rate=0.1,
            seeds=2,
        )
        labels = [(t.kind, t.key.attacker, t.key.defender, t.key.seed) for t in plan.tasks]
        assert labels == [
            ("defense", "Clean", "GCN", 0),
            ("defense", "Clean", "GCN", 1),
            ("defense", "Clean", "GCN-SVD", 0),
            ("defense", "Clean", "GCN-SVD", 1),
            ("attack", "PEEGA", None, None),
            ("defense", "PEEGA", "GCN", 0),
            ("defense", "PEEGA", "GCN", 1),
            ("defense", "PEEGA", "GCN-SVD", 0),
            ("defense", "PEEGA", "GCN-SVD", 1),
        ]
        attack = plan.attack_tasks["PEEGA"]
        assert all(
            t.depends_on == attack.index for t in plan.tasks if t.key.attacker == "PEEGA" and t.kind == "defense"
        )
        assert all(t.depends_on is None for t in plan.tasks if t.key.attacker == "Clean")
        # Fault-site ordinals are canonical per-site indices.
        assert [t.site_ordinal for t in plan.tasks if t.kind == "defense"] == list(range(8))
        assert attack.site_ordinal == 0
        assert plan.tasks[0].key.dataset == "cora"  # keys are lowercased

    def test_completed_cells_pruned(self):
        plan = SweepPlan.build(
            dataset="cora",
            rows=["Clean", "PEEGA"],
            defenders=["GCN", "GCN-SVD"],
            rate=0.1,
            seeds=2,
            completed={("PEEGA", "GCN"), ("PEEGA", "GCN-SVD")},
        )
        # Fully-cached row: no attack task, no defense tasks.
        assert "PEEGA" not in plan.attack_tasks
        assert all(t.key.attacker == "Clean" for t in plan.tasks)

    def test_partially_completed_row_keeps_attack(self):
        plan = SweepPlan.build(
            dataset="cora",
            rows=["PEEGA"],
            defenders=["GCN", "GCN-SVD"],
            rate=0.1,
            seeds=2,
            completed={("PEEGA", "GCN")},
        )
        assert "PEEGA" in plan.attack_tasks
        assert [t.key.defender for t in plan.tasks if t.kind == "defense"] == [
            "GCN-SVD",
            "GCN-SVD",
        ]


class TestExecutorFactory:
    def test_jobs_one_is_serial(self):
        assert isinstance(make_executor(1), SerialTrialExecutor)

    def test_jobs_many_is_parallel(self):
        # total_cores pins capacity so the assertion holds on any machine.
        executor = make_executor(3, blas_threads=1, total_cores=4)
        assert isinstance(executor, ParallelTrialExecutor)
        assert executor.jobs == 3
        assert executor.blas_threads == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError):
            make_executor(0)
        with pytest.raises(ConfigError):
            ParallelTrialExecutor(1)


class TestBlasGovernance:
    def test_plan_divides_cores(self):
        assert plan_worker_threads(4, total_cores=16) == 4
        assert plan_worker_threads(3, total_cores=8) == 2
        # More jobs than cores floors at single-threaded BLAS.
        assert plan_worker_threads(8, total_cores=4) == 1

    def test_plan_validates(self):
        with pytest.raises(ConfigError):
            plan_worker_threads(0)
        with pytest.raises(ConfigError):
            plan_worker_threads(2, total_cores=0)

    def test_limit_sets_and_budget_restores(self, monkeypatch):
        import os

        monkeypatch.setenv("OMP_NUM_THREADS", "7")
        monkeypatch.delenv("MKL_NUM_THREADS", raising=False)
        with blas_thread_budget(2):
            for var in BLAS_ENV_VARS:
                assert os.environ[var] == "2"
        assert os.environ["OMP_NUM_THREADS"] == "7"
        assert "MKL_NUM_THREADS" not in os.environ

    def test_limit_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            limit_blas_threads(0)


class TestSweepTimings:
    def test_utilization_accounting(self):
        timings = SweepTimings(jobs=2)
        timings.start()
        timings.record("a", "defense", wall_seconds=1.0, queue_seconds=0.5)
        timings.record("b", "defense", wall_seconds=3.0)
        timings.finish()
        timings.makespan_seconds = 4.0
        assert timings.busy_seconds == 4.0
        assert timings.utilization == pytest.approx(0.5)
        assert timings.mean_queue_seconds == pytest.approx(0.25)
        summary = timings.summary()
        assert "2 jobs" in summary and "utilization" in summary

    def test_empty_sweep(self):
        timings = SweepTimings(jobs=4)
        assert timings.utilization == 0.0
        assert timings.mean_queue_seconds == 0.0
