"""Utility substrate: RNG helpers, timer, error hierarchy, gradcheck."""

import time

import numpy as np
import pytest

from repro import errors
from repro.tensor import Tensor, check_gradients, numeric_gradient
from repro.utils import Timer, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_independent_and_deterministic(self):
        children_a = spawn_rngs(7, 3)
        children_b = spawn_rngs(7, 3)
        for a, b in zip(children_a, children_b):
            np.testing.assert_array_equal(a.random(4), b.random(4))
        streams = [tuple(c.random(4)) for c in spawn_rngs(7, 3)]
        assert len(set(streams)) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            errors.ShapeError,
            errors.GraphError,
            errors.BudgetError,
            errors.ConfigError,
            errors.DatasetError,
            errors.ConvergenceError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, errors.ReproError)

    def test_value_errors_catchable_as_builtin(self):
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.ConvergenceError, RuntimeError)


class TestGradcheck:
    def test_passes_for_correct_gradient(self):
        check_gradients(lambda a: (a * a).sum(), [np.array([1.0, 2.0])])

    def test_fails_for_wrong_gradient(self):
        from repro.tensor.tensor import _unary

        def buggy_square(x):
            return _unary(x, lambda a: a * a, lambda g, a, out: g * a)  # missing 2x

        with pytest.raises(AssertionError, match="gradient mismatch"):
            check_gradients(lambda a: buggy_square(a).sum(), [np.array([1.0, 2.0])])

    def test_numeric_gradient_of_quadratic(self):
        grad = numeric_gradient(
            lambda a: (a * a).sum(), [np.array([3.0, -1.0])], index=0
        )
        np.testing.assert_allclose(grad, [6.0, -2.0], atol=1e-5)
