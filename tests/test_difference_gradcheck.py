"""Gradient checks for the closed-form sparse attack-score path.

Three layers of verification on random 30-node graphs:

1. the raw ``sparse_matmul_grad_matrix`` kernel against a finite-difference
   probe of the matmul it is the backward of;
2. the assembled :func:`sparse_attack_gradients` against the dense autodiff
   reference (same objective, gradients taken through the dense
   normalization chain);
3. the topology/feature gradients against central finite differences of the
   objective itself.

Features carry a continuous offset so every row of ``M̂ − M`` sits away from
the p-norm kink — finite differences are only meaningful on the smooth part.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.difference import DifferenceObjective, sparse_attack_gradients
from repro.errors import ShapeError
from repro.graph import Graph
from repro.surrogate import PropagationCache
from repro.tensor import Tensor
from repro.tensor.functional import sparse_matmul_grad_matrix


def _random_graph(seed: int, n: int = 30, density: float = 0.15, d: int = 12):
    rng = np.random.default_rng(seed)
    upper = np.triu((rng.random((n, n)) < density).astype(np.float64), 1)
    adjacency = upper + upper.T
    features = (rng.random((n, d)) < 0.4).astype(np.float64)
    graph = Graph(
        adjacency=sp.csr_matrix(adjacency), features=features, name=f"rand-{seed}"
    )
    return graph, rng


# ---------------------------------------------------------------------------
# 1. The backward kernel itself
# ---------------------------------------------------------------------------
def test_kernel_matches_einsum():
    rng = np.random.default_rng(0)
    upstream = rng.normal(size=(7, 5))
    x = rng.normal(size=(9, 5))
    expected = np.einsum("id,jd->ij", upstream, x)
    np.testing.assert_allclose(
        sparse_matmul_grad_matrix(upstream, x), expected, atol=1e-12
    )
    rows = np.array([1, 4, 6])
    np.testing.assert_allclose(
        sparse_matmul_grad_matrix(upstream, x, rows), expected[rows], atol=1e-12
    )


def test_kernel_is_matmul_backward():
    """d/dA_ij of sum(W ⊙ (A @ X)) equals (W @ X.T)_ij — probe by FD."""
    rng = np.random.default_rng(1)
    a = rng.normal(size=(6, 6))
    x = rng.normal(size=(6, 4))
    weight = rng.normal(size=(6, 4))

    def loss(mat):
        return float((weight * (mat @ x)).sum())

    grad = sparse_matmul_grad_matrix(weight, x)
    eps = 1e-6
    for i, j in [(0, 0), (2, 5), (4, 1)]:
        plus, minus = a.copy(), a.copy()
        plus[i, j] += eps
        minus[i, j] -= eps
        fd = (loss(plus) - loss(minus)) / (2 * eps)
        assert fd == pytest.approx(grad[i, j], abs=1e-6)


def test_kernel_rejects_bad_shapes():
    with pytest.raises(ShapeError):
        sparse_matmul_grad_matrix(np.zeros((3, 4)), np.zeros((5, 6)))
    with pytest.raises(ShapeError):
        sparse_matmul_grad_matrix(np.zeros(3), np.zeros((3, 3)))


# ---------------------------------------------------------------------------
# 2. Closed form vs dense autodiff
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layers", [1, 2, 3])
@pytest.mark.parametrize("p", [1, 2])
@pytest.mark.parametrize("lam", [0.0, 0.01])
def test_matches_dense_autodiff(layers, p, lam):
    graph, rng = _random_graph(11)
    x_hat = graph.features + rng.normal(0.0, 0.3, size=graph.features.shape)

    dense_objective = DifferenceObjective(graph, layers=layers, p=p, lam=lam)
    adj_t = Tensor(graph.dense_adjacency(), requires_grad=True)
    feat_t = Tensor(x_hat.copy(), requires_grad=True)
    loss = dense_objective(adj_t, feat_t)
    loss.backward()

    cache = PropagationCache(graph)
    cached_objective = DifferenceObjective(
        graph, layers=layers, p=p, lam=lam, cache=cache
    )
    grads = sparse_attack_gradients(cached_objective, cache, x_hat)

    assert grads.loss == pytest.approx(float(loss.item()), abs=1e-9)
    np.testing.assert_allclose(
        grads.grad_topology, adj_t.grad + adj_t.grad.T, atol=1e-10
    )
    np.testing.assert_allclose(grads.grad_features, feat_t.grad, atol=1e-10)


@pytest.mark.parametrize("seed", [3, 19, 42])
def test_matches_dense_autodiff_with_node_mask(seed):
    """The focused (train-mask) objective must agree too."""
    graph, rng = _random_graph(seed)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[rng.choice(graph.num_nodes, size=12, replace=False)] = True
    x_hat = graph.features + rng.normal(0.0, 0.3, size=graph.features.shape)

    dense_objective = DifferenceObjective(graph, layers=2, p=2, node_mask=mask)
    adj_t = Tensor(graph.dense_adjacency(), requires_grad=True)
    feat_t = Tensor(x_hat.copy(), requires_grad=True)
    loss = dense_objective(adj_t, feat_t)
    loss.backward()

    cache = PropagationCache(graph)
    cached_objective = DifferenceObjective(
        graph, layers=2, p=2, node_mask=mask, cache=cache
    )
    grads = sparse_attack_gradients(cached_objective, cache, x_hat)
    assert grads.loss == pytest.approx(float(loss.item()), abs=1e-9)
    np.testing.assert_allclose(
        grads.grad_topology, adj_t.grad + adj_t.grad.T, atol=1e-10
    )
    np.testing.assert_allclose(grads.grad_features, feat_t.grad, atol=1e-10)


def test_row_slice_consistent_with_full():
    graph, rng = _random_graph(23)
    x_hat = graph.features + rng.normal(0.0, 0.3, size=graph.features.shape)
    cache = PropagationCache(graph)
    objective = DifferenceObjective(graph, layers=2, p=2, cache=cache)
    full = sparse_attack_gradients(objective, cache, x_hat)
    rows = np.array([2, 7, 13, 28])
    sliced = sparse_attack_gradients(objective, cache, x_hat, rows=rows)
    assert sliced.grad_topology.shape == (len(rows), graph.num_nodes)
    np.testing.assert_allclose(
        sliced.grad_topology, full.grad_topology[rows], atol=1e-12
    )
    np.testing.assert_allclose(sliced.grad_features, full.grad_features, atol=0)
    assert sliced.loss == pytest.approx(full.loss, abs=0)


def test_need_flags_prune_work():
    graph, rng = _random_graph(29)
    cache = PropagationCache(graph)
    objective = DifferenceObjective(graph, layers=2, p=2, cache=cache)
    topo_only = sparse_attack_gradients(
        objective, cache, graph.features, need_features=False
    )
    assert topo_only.grad_features is None
    assert topo_only.grad_topology is not None
    feat_only = sparse_attack_gradients(
        objective, cache, graph.features, need_topology=False
    )
    assert feat_only.grad_topology is None
    assert feat_only.grad_features is not None


# ---------------------------------------------------------------------------
# 3. Finite differences of the objective
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layers,p", [(1, 2), (2, 2), (2, 1)])
def test_topology_gradient_finite_difference(layers, p):
    graph, rng = _random_graph(5)
    x_hat = graph.features + rng.normal(0.0, 0.25, size=graph.features.shape)

    cache = PropagationCache(graph)
    cached_objective = DifferenceObjective(graph, layers=layers, p=p, cache=cache)
    grads = sparse_attack_gradients(cached_objective, cache, x_hat)

    evaluator = DifferenceObjective(graph, layers=layers, p=p)
    base = graph.dense_adjacency()
    feat = Tensor(x_hat.copy())
    eps = 1e-6
    # A mix of occupied and empty adjacency entries.
    pairs = [(0, 1), (2, 17), (5, 9), (12, 29), (3, 22)]
    for u, v in pairs:
        plus, minus = base.copy(), base.copy()
        plus[u, v] += eps
        plus[v, u] += eps
        minus[u, v] -= eps
        minus[v, u] -= eps
        fd = (
            float(evaluator(Tensor(plus), feat).item())
            - float(evaluator(Tensor(minus), feat).item())
        ) / (2 * eps)
        assert fd == pytest.approx(grads.grad_topology[u, v], abs=1e-4)


def test_feature_gradient_finite_difference():
    graph, rng = _random_graph(13)
    x_hat = graph.features + rng.normal(0.0, 0.25, size=graph.features.shape)

    cache = PropagationCache(graph)
    cached_objective = DifferenceObjective(graph, layers=2, p=2, cache=cache)
    grads = sparse_attack_gradients(cached_objective, cache, x_hat)

    evaluator = DifferenceObjective(graph, layers=2, p=2)
    adj = Tensor(graph.dense_adjacency())
    eps = 1e-6
    for node, dim in [(0, 0), (7, 3), (21, 11), (29, 5)]:
        plus, minus = x_hat.copy(), x_hat.copy()
        plus[node, dim] += eps
        minus[node, dim] -= eps
        fd = (
            float(evaluator(adj, Tensor(plus)).item())
            - float(evaluator(adj, Tensor(minus)).item())
        ) / (2 * eps)
        assert fd == pytest.approx(grads.grad_features[node, dim], abs=1e-4)
