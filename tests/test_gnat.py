"""The GNAT defender: augmented graph construction and training variants."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import GNAT, ego_graph, feature_graph, topology_graph
from repro.errors import ConfigError
from repro.nn import TrainConfig


FAST = TrainConfig(epochs=40, patience=40)


class TestTopologyGraph:
    def test_one_hop_is_identity_transform(self, tiny_graph):
        out = topology_graph(tiny_graph.adjacency, k_hops=1)
        assert (out != tiny_graph.adjacency).nnz == 0

    def test_two_hop_reachability(self, tiny_graph):
        out = topology_graph(tiny_graph.adjacency, k_hops=2).toarray()
        # 0 reaches 3 via 2; 0 does not reach 4 or 5 within 2 hops.
        assert out[0, 3] == 1.0
        assert out[0, 4] == 0.0 and out[0, 5] == 0.0
        # Original edges are retained.
        assert out[0, 1] == 1.0

    def test_no_self_loops_and_binary(self, tiny_graph):
        out = topology_graph(tiny_graph.adjacency, k_hops=3)
        assert out.diagonal().sum() == 0.0
        assert set(np.unique(out.data)) <= {1.0}

    def test_monotone_in_hops(self, small_cora):
        two = topology_graph(small_cora.adjacency, 2)
        three = topology_graph(small_cora.adjacency, 3)
        assert three.nnz >= two.nnz


class TestFeatureGraph:
    def test_connects_similar_nodes(self, tiny_graph):
        out = feature_graph(tiny_graph.features, k_similar=2).toarray()
        # Nodes 0-2 share identical features, as do 3-5; no cross edges.
        assert out[0, 1] == 1.0 and out[0, 2] == 1.0
        assert out[:3, 3:].sum() == 0.0

    def test_symmetric_no_loops(self, small_cora):
        out = feature_graph(small_cora.features, k_similar=5)
        assert ((out - out.T) != 0).nnz == 0
        assert out.diagonal().sum() == 0.0

    def test_k_validation(self, tiny_graph):
        with pytest.raises(ConfigError):
            feature_graph(tiny_graph.features, k_similar=0)


class TestEgoGraph:
    def test_adds_weighted_self_loops(self, tiny_graph):
        out = ego_graph(tiny_graph.adjacency, k_ego=7.0)
        np.testing.assert_allclose(out.diagonal(), np.full(6, 7.0))
        assert (sp.triu(out, k=1) != sp.triu(tiny_graph.adjacency, k=1)).nnz == 0

    def test_zero_weight_is_noop(self, tiny_graph):
        out = ego_graph(tiny_graph.adjacency, k_ego=0.0)
        assert (out != tiny_graph.adjacency).nnz == 0

    def test_negative_weight_rejected(self, tiny_graph):
        with pytest.raises(ConfigError):
            ego_graph(tiny_graph.adjacency, k_ego=-1.0)


class TestGNATDefender:
    def test_views_validation(self):
        with pytest.raises(ConfigError):
            GNAT(views="xyz")
        with pytest.raises(ConfigError):
            GNAT(views="")
        with pytest.raises(ConfigError):
            GNAT(views="tt")

    def test_variant_names(self):
        assert GNAT(views="tfe").variant_name == "GNAT-t+f+e"
        assert GNAT(views="te", merge_views=True).variant_name == "GNAT-te"
        assert GNAT(views="f").variant_name == "GNAT-f"

    def test_build_views_counts(self, small_cora):
        assert len(GNAT(views="tfe").build_views(small_cora)) == 3
        assert len(GNAT(views="e").build_views(small_cora)) == 1

    def test_feature_view_rejected_on_identity_features(self, small_polblogs):
        with pytest.raises(ConfigError, match="identity"):
            GNAT(views="tfe").build_views(small_polblogs)

    def test_te_views_work_on_identity_features(self, small_polblogs):
        result = GNAT(views="te", train_config=FAST, seed=0).fit(small_polblogs)
        assert result.test_accuracy > 0.5

    def test_multiview_fit(self, small_cora):
        result = GNAT(train_config=FAST, seed=0).fit(small_cora)
        assert 0.3 <= result.test_accuracy <= 1.0
        assert result.details["views"] == "tfe"
        assert result.details["merged"] is False

    def test_merged_fit(self, small_cora):
        result = GNAT(merge_views=True, train_config=FAST, seed=0).fit(small_cora)
        assert 0.3 <= result.test_accuracy <= 1.0
        assert result.details["merged"] is True

    def test_kf_capped_to_graph_size(self, tiny_graph):
        # k_f larger than n-1 must not crash.
        result = GNAT(views="f", k_f=50, train_config=FAST, seed=0).fit(tiny_graph)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_deterministic_given_seed(self, small_cora):
        a = GNAT(train_config=FAST, seed=5).fit(small_cora).test_accuracy
        b = GNAT(train_config=FAST, seed=5).fit(small_cora).test_accuracy
        assert a == b
