"""Equivalence suite: incremental sparse PEEGA engine vs the dense oracle.

The incremental engine (``use_cache=True``) must pick the *same flip
sequence* and reach the *same final objective* (within 1e-8) as the dense
reference path — across layers, norm orders, flips-per-step, budgets,
attack types, and accessibility constraints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import AttackBudget
from repro.attacks.constraints import AttackerNodes
from repro.core.difference import DifferenceObjective
from repro.core.peega import PEEGA
from repro.surrogate import PropagationCache
from repro.surrogate.propagation import gcn_normalize, gcn_normalize_dense


def _flip_sequence(result):
    """Perturbations in selection order, as comparable tuples."""
    edges = [("edge", f.u, f.v) for f in result.edge_flips]
    feats = [("feature", f.node, f.dim) for f in result.feature_flips]
    return edges + feats


def _final_objective(graph, result, layers, p):
    """Re-score the poisoned graph with a fresh (uncached) objective."""
    objective = DifferenceObjective(graph, layers=layers, p=p)
    return float(
        objective(result.poisoned.adjacency, result.poisoned.features).item()
    )


def _run_pair(graph, budget, **attacker_kwargs):
    dense = PEEGA(use_cache=False, seed=0, **attacker_kwargs).attack(graph, budget)
    cached = PEEGA(use_cache=True, seed=0, **attacker_kwargs).attack(graph, budget)
    return dense, cached


@pytest.mark.parametrize("layers", [1, 2, 3])
@pytest.mark.parametrize("p", [1, 2])
@pytest.mark.parametrize("flips_per_step", [1, 4])
def test_equivalence_grid_cora(small_cora, layers, p, flips_per_step):
    budget = AttackBudget(total=20)
    dense, cached = _run_pair(
        small_cora, budget, layers=layers, p=p, flips_per_step=flips_per_step
    )
    assert _flip_sequence(dense) == _flip_sequence(cached)
    obj_dense = _final_objective(small_cora, dense, layers, p)
    obj_cached = _final_objective(small_cora, cached, layers, p)
    assert obj_dense == pytest.approx(obj_cached, abs=1e-8)


@pytest.mark.parametrize("layers", [1, 2, 3])
@pytest.mark.parametrize("p", [1, 2])
@pytest.mark.parametrize("flips_per_step", [1, 4])
def test_equivalence_grid_polblogs(small_polblogs, layers, p, flips_per_step):
    budget = AttackBudget(total=20)
    dense, cached = _run_pair(
        small_polblogs, budget, layers=layers, p=p, flips_per_step=flips_per_step
    )
    assert _flip_sequence(dense) == _flip_sequence(cached)
    obj_dense = _final_objective(small_polblogs, dense, layers, p)
    obj_cached = _final_objective(small_polblogs, cached, layers, p)
    assert obj_dense == pytest.approx(obj_cached, abs=1e-8)


@pytest.mark.parametrize("budget_total", [1, 5, 13, 20])
def test_equivalence_across_budgets(small_cora, budget_total):
    budget = AttackBudget(total=budget_total)
    dense, cached = _run_pair(small_cora, budget)
    assert _flip_sequence(dense) == _flip_sequence(cached)
    assert dense.spent == cached.spent <= budget_total
    # The per-step objective traces must agree too, not just the endpoint.
    np.testing.assert_allclose(
        dense.objective_trace, cached.objective_trace, atol=1e-8
    )


@pytest.mark.parametrize(
    "attack_topology,attack_features",
    [(True, False), (False, True)],
    ids=["topology-only", "features-only"],
)
def test_equivalence_single_attack_type(small_cora, attack_topology, attack_features):
    budget = AttackBudget(total=12)
    dense, cached = _run_pair(
        small_cora,
        budget,
        attack_topology=attack_topology,
        attack_features=attack_features,
    )
    assert _flip_sequence(dense) == _flip_sequence(cached)
    np.testing.assert_allclose(
        dense.objective_trace, cached.objective_trace, atol=1e-8
    )


@pytest.mark.parametrize("mode", ["any", "both"])
def test_equivalence_with_attacker_nodes(small_cora, mode):
    """The frontier-sliced score path must agree with the dense oracle."""
    accessible = np.arange(0, small_cora.num_nodes, 3)  # every third node
    constraint = AttackerNodes(nodes=accessible, mode=mode)
    budget = AttackBudget(total=10)
    dense, cached = _run_pair(small_cora, budget, attacker_nodes=constraint)
    assert _flip_sequence(dense) == _flip_sequence(cached)
    np.testing.assert_allclose(
        dense.objective_trace, cached.objective_trace, atol=1e-8
    )
    # Every flip respects the constraint.
    mask = constraint.node_mask(small_cora.num_nodes)
    for flip in cached.edge_flips:
        touched = int(mask[flip.u]) + int(mask[flip.v])
        assert touched == 2 if mode == "both" else touched >= 1


def test_feature_cost_equivalence(small_cora):
    """Cost-aware ranking (S_f / beta) matches across engines."""
    budget = AttackBudget(total=10, feature_cost=2.5)
    dense, cached = _run_pair(small_cora, budget)
    assert _flip_sequence(dense) == _flip_sequence(cached)
    assert dense.spent == cached.spent <= budget.total + 1e-9


def test_cached_attack_normalizes_exactly_once(small_cora, monkeypatch):
    """Regression: one normalization per attack run.

    The pre-cache code rebuilt ``D^{-1/2}(A+I)D^{-1/2}`` on every call of
    ``propagation_matrix``/``linear_propagation``.  A cached attack must
    build ``A_n`` exactly once (at cache bind time) and never fall back to
    the from-scratch normalizers.
    """
    calls = {"cache": 0, "sparse": 0, "dense": 0}

    original_normalize = PropagationCache._normalize

    def counting_normalize(self):
        calls["cache"] += 1
        original_normalize(self)

    def counting_sparse(*args, **kwargs):
        calls["sparse"] += 1
        return gcn_normalize(*args, **kwargs)

    def counting_dense(*args, **kwargs):
        calls["dense"] += 1
        return gcn_normalize_dense(*args, **kwargs)

    monkeypatch.setattr(PropagationCache, "_normalize", counting_normalize)
    monkeypatch.setattr(
        "repro.surrogate.propagation.gcn_normalize", counting_sparse
    )
    monkeypatch.setattr(
        "repro.surrogate.propagation.gcn_normalize_dense", counting_dense
    )

    attacker = PEEGA(use_cache=True, seed=0)
    result = attacker.attack(small_cora, AttackBudget(total=15))
    assert result.num_perturbations > 0
    assert calls["cache"] == 1
    assert calls["sparse"] == 0
    assert calls["dense"] == 0


def test_propagation_matrix_reuses_cached_powers(small_cora):
    """``propagation_matrix(cache=...)`` serves memoized powers."""
    from repro.surrogate import propagation_matrix

    cache = PropagationCache(small_cora)
    assert cache.normalization_count == 1
    p2_first = propagation_matrix(small_cora.adjacency, layers=2, cache=cache)
    p2_again = propagation_matrix(small_cora.adjacency, layers=2, cache=cache)
    assert p2_first is p2_again  # same object: memoized, not recomputed
    p3 = propagation_matrix(small_cora.adjacency, layers=3, cache=cache)
    assert p3.shape == p2_first.shape
    assert cache.normalization_count == 1  # still the single bind-time build
    # Matches the uncached computation.
    reference = propagation_matrix(small_cora.adjacency, layers=2)
    np.testing.assert_allclose(p2_first.toarray(), reference.toarray(), atol=1e-12)
