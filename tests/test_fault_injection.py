"""Chaos suite: trial supervision, fault injection, checkpoint/resume.

Exercises the fault-tolerant execution layer end to end with the
deterministic :mod:`repro.utils.faults` injector: transient faults are
retried, hangs are deadlined, permanent failures are quarantined into
``n/a`` cells, and an interrupted sweep resumed from its journal
reproduces the uninterrupted table bit for bit.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, DeadlineError, TrialError
from repro.experiments import (
    AccuracyTable,
    CellResult,
    ExperimentRunner,
    ExperimentScale,
    SweepCheckpoint,
    TrialFailure,
    TrialKey,
    TrialPolicy,
    TrialSupervisor,
    evaluate_shape_claims,
    format_accuracy_table,
    render_comparison,
    render_failure_appendix,
)
from repro.utils import faults
from repro.utils.faults import FaultInjector, FaultSpec, InjectedFault, InjectedKill


TINY = ExperimentScale(scale=0.04, seeds=2, rate=0.1)
ATTACKERS = ["PEEGA"]
DEFENDERS = ["GCN", "GCN-SVD"]


def tables_identical(a: AccuracyTable, b: AccuracyTable) -> bool:
    """Bit-exact cell equality (not approx): resume must be lossless."""
    if set(a.rows) != set(b.rows):
        return False
    for attacker in a.rows:
        if set(a.rows[attacker]) != set(b.rows[attacker]):
            return False
        for defender, cell in a.rows[attacker].items():
            other = b.rows[attacker][defender]
            if (cell is None) != (other is None):
                return False
            if cell is not None and cell.values != other.values:
                return False
    return True


# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_parse_grammar(self):
        specs = FaultInjector.parse(
            "attacker:throw:times=2;defender:hang:seconds=0.5:defender=GNAT;trainer:nan:at=3"
        )
        assert [s.site for s in specs] == ["attacker", "defender", "trainer"]
        assert specs[0].times == 2
        assert specs[1].seconds == 0.5
        assert specs[1].match == {"defender": "GNAT"}
        assert specs[2].at == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            FaultInjector.parse("defender")
        with pytest.raises(ConfigError):
            FaultInjector.parse("defender:explode")
        with pytest.raises(ConfigError):
            FaultInjector.parse("defender:throw:times")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(faults.ENV_VAR, "0")
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(faults.ENV_VAR, "1")
        injector = FaultInjector.from_env()
        assert injector is not None and injector.specs == []
        monkeypatch.setenv(faults.ENV_VAR, "defender:throw:times=1")
        injector = FaultInjector.from_env()
        assert injector.specs[0].action == "throw"

    def test_times_disarms(self):
        injector = FaultInjector([FaultSpec(site="x", action="throw", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.perturb("x")
        injector.perturb("x")  # third call passes
        assert len(injector.events) == 2

    def test_at_matches_invocation_index(self):
        injector = FaultInjector([FaultSpec(site="x", action="throw", at=1)])
        injector.perturb("x")
        with pytest.raises(InjectedFault):
            injector.perturb("x")
        injector.perturb("x")

    def test_context_match_stringifies(self):
        injector = FaultInjector(
            [FaultSpec(site="x", action="throw", match={"seed": "1"})]
        )
        injector.perturb("x", seed=0)
        with pytest.raises(InjectedFault):
            injector.perturb("x", seed=1)

    def test_corrupt_returns_nan(self):
        injector = FaultInjector([FaultSpec(site="trainer", action="nan", at=1)])
        assert injector.corrupt("trainer", 0.5) == 0.5
        assert np.isnan(injector.corrupt("trainer", 0.5))

    def test_module_hooks_noop_when_uninstalled(self):
        assert faults.current() is None
        faults.perturb("anywhere")
        assert faults.corrupt("anywhere", 1.25) == 1.25

    def test_active_restores_previous(self):
        outer, inner = FaultInjector(), FaultInjector()
        with faults.active(outer):
            with faults.active(inner):
                assert faults.current() is inner
            assert faults.current() is outer
        assert faults.current() is None


# ---------------------------------------------------------------------------
class TestTrialSupervisor:
    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            TrialPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            TrialPolicy(deadline_seconds=0)
        with pytest.raises(ConfigError):
            TrialPolicy(backoff_seconds=-1)

    def test_retry_then_succeed_with_backoff_and_reseed(self):
        sleeps = []
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=3, backoff_seconds=0.1, backoff_factor=2.0),
            sleep=sleeps.append,
        )
        attempts_seen = []

        def flaky(attempt):
            attempts_seen.append(attempt)
            if attempt < 2:
                raise RuntimeError("transient")
            return "ok"

        outcome = supervisor.run(TrialKey("cora", "PEEGA", 0.1, "GCN", 0), flaky)
        assert outcome.ok and outcome.value == "ok"
        assert outcome.attempts == 3
        assert attempts_seen == [0, 1, 2]  # per-attempt reseeding hook
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]
        assert supervisor.failures == []

    def test_exhausted_retries_become_structured_failure(self):
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=2, backoff_seconds=0), sleep=lambda _: None
        )
        key = TrialKey("cora", "PEEGA", 0.1, "GCN", 1)

        def broken(attempt):
            raise ValueError("permanently broken")

        outcome = supervisor.run(key, broken)
        assert not outcome.ok
        failure = outcome.failure
        assert failure.key == key
        assert failure.attempts == 2
        assert failure.error_type == "ValueError"
        assert "permanently broken" in failure.message
        assert "ValueError" in failure.traceback
        assert failure.elapsed_seconds >= 0
        assert supervisor.failures == [failure]

    def test_quarantine_skips_without_new_failure(self):
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=1), sleep=lambda _: None
        )
        first = TrialKey("cora", "Clean", 0.1, "GCN-SVD", 0)
        later = TrialKey("cora", "PEEGA", 0.1, "GCN-SVD", 1)
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise RuntimeError("boom")

        assert not supervisor.run(first, broken).ok
        outcome = supervisor.run(later, broken)  # same defender → quarantined
        assert not outcome.ok
        assert outcome.failure is supervisor.failures[0]
        assert len(supervisor.failures) == 1
        assert calls == [0]  # the quarantined trial never ran

    def test_deadline_kills_hang(self):
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=1, deadline_seconds=0.05), sleep=lambda _: None
        )
        injector = FaultInjector([FaultSpec(site="slow", action="hang", seconds=5.0)])

        def hangs(attempt):
            injector.perturb("slow")
            return "never"

        outcome = supervisor.run(TrialKey("cora", "PEEGA", 0.1, "GCN", 0), hangs)
        assert not outcome.ok
        assert outcome.failure.error_type == "DeadlineError"

    def test_deadline_passes_fast_trials_and_propagates_errors(self):
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=1, deadline_seconds=5.0), sleep=lambda _: None
        )
        ok = supervisor.run(TrialKey("cora", "PEEGA", 0.1, "GCN", 0), lambda a: 42)
        assert ok.ok and ok.value == 42
        bad = supervisor.run(
            TrialKey("cora", "PEEGA", 0.1, "GAT", 0),
            lambda a: (_ for _ in ()).throw(ValueError("inside thread")),
        )
        assert not bad.ok and bad.failure.error_type == "ValueError"

    def test_run_or_raise(self):
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=1), sleep=lambda _: None
        )
        key = TrialKey("cora", "PEEGA", 0.1)
        with pytest.raises(TrialError) as excinfo:
            supervisor.run_or_raise(key, lambda a: 1 / 0)
        assert excinfo.value.key == key
        assert excinfo.value.attempts == 1

    def test_abandoned_thread_cannot_poison_grad_mode(self):
        # A deadlined worker is abandoned mid-trial; if it later enters
        # no_grad(), that must not disable tracing for the main thread
        # (grad mode is thread-local — regression for a global-flag race).
        import threading

        from repro.tensor import Tensor, is_grad_enabled, no_grad

        entered = threading.Event()
        release = threading.Event()

        def worker():
            with no_grad():
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        assert entered.wait(5.0)
        try:
            assert is_grad_enabled()
            assert Tensor([1.0], requires_grad=True).requires_grad
        finally:
            release.set()
            thread.join(5.0)

    def test_kill_propagates_uncaught(self):
        supervisor = TrialSupervisor(TrialPolicy(max_attempts=3), sleep=lambda _: None)

        def killed(attempt):
            raise InjectedKill("operator interrupt")

        with pytest.raises(InjectedKill):
            supervisor.run(TrialKey("cora", "PEEGA", 0.1), killed)
        assert supervisor.failures == []  # an abort is not a failure record


# ---------------------------------------------------------------------------
class TestTrainerDivergence:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_nonfinite_loss_raises(self, small_cora, bad):
        from repro.errors import DivergenceError
        from repro.nn import GCN, TrainConfig, train_node_classifier
        from repro.tensor import Tensor

        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        with pytest.raises(DivergenceError) as excinfo:
            train_node_classifier(
                model,
                small_cora,
                TrainConfig(epochs=5),
                loss_fn=lambda logits: Tensor(bad),
            )
        error = excinfo.value
        assert error.epoch == 0
        assert not np.isfinite(error.loss)
        assert not error.recovered  # diverged before any checkpoint existed

    def test_injected_nan_after_checkpoint_recovers_best_weights(self, small_cora):
        from repro.errors import DivergenceError
        from repro.nn import GCN, TrainConfig, train_node_classifier

        injector = FaultInjector(
            [FaultSpec(site="trainer", action="nan", match={"epoch": "3"})]
        )
        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        with faults.active(injector), pytest.raises(DivergenceError) as excinfo:
            train_node_classifier(model, small_cora, TrainConfig(epochs=10))
        error = excinfo.value
        assert error.epoch == 3
        assert error.recovered
        assert error.best_val_accuracy >= 0.0
        # The restored weights really are the best-validation checkpoint.
        from repro.graph import gcn_normalize
        from repro.nn import evaluate

        val_acc = evaluate(
            model,
            gcn_normalize(small_cora.adjacency),
            small_cora.features,
            small_cora.labels,
            small_cora.val_mask,
        )
        assert val_acc == pytest.approx(error.best_val_accuracy)


# ---------------------------------------------------------------------------
class TestChaosSweep:
    def test_transient_fault_is_retried_to_success(self):
        injector = FaultInjector(
            [FaultSpec(site="defender", action="throw", times=1, match={"defender": "GCN"})]
        )
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=2, backoff_seconds=0), sleep=lambda _: None
        )
        with faults.active(injector):
            runner = ExperimentRunner(TINY, supervisor=supervisor)
            table = runner.accuracy_table("cora", attackers=[], defenders=["GCN"])
        assert injector.events and injector.events[0].action == "throw"
        assert table.failures == []
        assert table.rows["Clean"]["GCN"] is not None

    def test_hang_is_deadlined_and_recorded(self):
        injector = FaultInjector(
            [
                FaultSpec(
                    site="defender", action="hang", seconds=30.0,
                    match={"defender": "GCN-SVD", "seed": "0"},
                )
            ]
        )
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=1, deadline_seconds=0.5), sleep=lambda _: None
        )
        with faults.active(injector):
            runner = ExperimentRunner(TINY, supervisor=supervisor)
            table = runner.accuracy_table("cora", attackers=[], defenders=DEFENDERS)
        assert table.rows["Clean"]["GCN"] is not None  # untouched cell completed
        assert table.rows["Clean"]["GCN-SVD"] is None
        assert len(table.failures) == 1
        assert table.failures[0].error_type == "DeadlineError"

    def test_permanently_failing_defender_quarantined_once(self):
        injector = FaultInjector(
            [FaultSpec(site="defender", action="throw", match={"defender": "GCN-SVD"})]
        )
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=2, backoff_seconds=0), sleep=lambda _: None
        )
        with faults.active(injector):
            runner = ExperimentRunner(TINY, supervisor=supervisor)
            table = runner.accuracy_table("cora", attackers=ATTACKERS, defenders=DEFENDERS)
        # Every non-quarantined cell completed; exactly one structured failure.
        assert len(table.failures) == 1
        assert table.failures[0].key.defender == "GCN-SVD"
        assert table.failures[0].attempts == 2
        for attacker in ("Clean", "PEEGA"):
            assert table.rows[attacker]["GCN"] is not None
            assert table.rows[attacker]["GCN-SVD"] is None
        assert table.num_failed_cells == 2

    def test_failing_attacker_yields_na_row(self):
        injector = FaultInjector(
            [FaultSpec(site="attacker", action="throw", match={"attacker": "PEEGA"})]
        )
        supervisor = TrialSupervisor(
            TrialPolicy(max_attempts=2, backoff_seconds=0), sleep=lambda _: None
        )
        with faults.active(injector):
            runner = ExperimentRunner(TINY, supervisor=supervisor)
            table = runner.accuracy_table("cora", attackers=ATTACKERS, defenders=["GCN"])
        assert table.rows["Clean"]["GCN"] is not None
        assert table.rows["PEEGA"]["GCN"] is None
        assert len(table.failures) == 1
        assert table.failures[0].key.defender is None

    def test_resume_equivalence_after_mid_grid_kill(self, tmp_path):
        reference = ExperimentRunner(TINY).accuracy_table(
            "cora", attackers=ATTACKERS, defenders=DEFENDERS
        )
        # Kill at the 6th defender trial: after the attack ran, so the resumed
        # sweep must reuse the persisted poison graph, not regenerate it.
        injector = FaultInjector([FaultSpec(site="defender", action="kill", at=5)])
        with faults.active(injector), pytest.raises(InjectedKill):
            ExperimentRunner(TINY, checkpoint=SweepCheckpoint(tmp_path)).accuracy_table(
                "cora", attackers=ATTACKERS, defenders=DEFENDERS
            )
        poisons = list(tmp_path.glob("poison_*.npz"))
        assert len(poisons) == 1
        poison_mtime = poisons[0].stat().st_mtime_ns

        checkpoint = SweepCheckpoint(tmp_path, resume=True)
        runner = ExperimentRunner(TINY, checkpoint=checkpoint)
        resumed = runner.accuracy_table("cora", attackers=ATTACKERS, defenders=DEFENDERS)
        assert poisons[0].stat().st_mtime_ns == poison_mtime  # loaded, not rewritten
        assert tables_identical(reference, resumed)
        assert resumed.failures == []

    def test_resumed_sweep_skips_completed_attack(self, tmp_path, monkeypatch):
        checkpoint = SweepCheckpoint(tmp_path)
        ExperimentRunner(TINY, checkpoint=checkpoint).accuracy_table(
            "cora", attackers=ATTACKERS, defenders=["GCN"]
        )
        # A resumed runner must not invoke any attacker at all.
        from repro.experiments import runner as runner_module

        def exploding_attacker(*args, **kwargs):
            raise AssertionError("attack re-ran on resume")

        monkeypatch.setattr(runner_module, "make_attacker", exploding_attacker)
        resumed = ExperimentRunner(
            TINY, checkpoint=SweepCheckpoint(tmp_path, resume=True)
        ).accuracy_table("cora", attackers=ATTACKERS, defenders=["GCN"])
        assert resumed.rows["PEEGA"]["GCN"] is not None


# ---------------------------------------------------------------------------
class TestSweepCheckpoint:
    def test_cell_round_trip_is_exact(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        values = [0.1 + 0.2, 1 / 3, 0.8227848101265823]
        checkpoint.record_cell("cora", "PEEGA", 0.1, "GCN", values)
        reloaded = SweepCheckpoint(tmp_path, resume=True)
        assert reloaded.cell_values("cora", "PEEGA", 0.1, "GCN") == values

    def test_fresh_start_truncates_journal(self, tmp_path):
        SweepCheckpoint(tmp_path).record_cell("cora", "PEEGA", 0.1, "GCN", [0.5])
        fresh = SweepCheckpoint(tmp_path, resume=False)
        assert fresh.cell_values("cora", "PEEGA", 0.1, "GCN") is None

    def test_torn_trailing_line_ignored(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        checkpoint.record_cell("cora", "PEEGA", 0.1, "GCN", [0.5, 0.6])
        with open(checkpoint.journal_path, "a") as handle:
            handle.write('{"kind": "cell", "dataset": "co')  # hard kill mid-write
        reloaded = SweepCheckpoint(tmp_path, resume=True)
        assert reloaded.cell_values("cora", "PEEGA", 0.1, "GCN") == [0.5, 0.6]

    def test_failures_journalled_and_reloaded(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        failure = TrialFailure(
            key=TrialKey("cora", "PEEGA", 0.1, "GNAT", 2),
            attempts=3,
            elapsed_seconds=1.5,
            error_type="DivergenceError",
            message="non-finite loss",
            traceback="Traceback ...",
        )
        checkpoint.record_failure(failure)
        reloaded = SweepCheckpoint(tmp_path, resume=True)
        assert reloaded.failures == [failure]
        record = json.loads(checkpoint.journal_path.read_text().splitlines()[0])
        assert record["kind"] == "failure" and record["defender"] == "GNAT"


# ---------------------------------------------------------------------------
class TestPartialGrids:
    def make_partial_table(self):
        table = AccuracyTable(dataset="cora", rate=0.1)
        table.rows["Clean"] = {
            "GCN": CellResult.from_values([0.8, 0.82]),
            "GNAT": CellResult.from_values([0.81, 0.83]),
        }
        table.rows["PEEGA"] = {
            "GCN": CellResult.from_values([0.7, 0.72]),
            "GNAT": None,
        }
        table.failures = [
            TrialFailure(
                key=TrialKey("cora", "PEEGA", 0.1, "GNAT", 0),
                attempts=2,
                elapsed_seconds=0.4,
                error_type="DivergenceError",
                message="non-finite loss nan at epoch 7",
            )
        ]
        return table

    def test_cellresult_grid_with_na_cells(self):
        table = self.make_partial_table()
        assert table.num_failed_cells == 1
        assert table.best_defender("Clean") == "GNAT"
        assert table.best_defender("PEEGA") == "GCN"  # n/a cell skipped
        assert table.strongest_attacker("GCN") == "PEEGA"
        assert table.strongest_attacker("GNAT") is None  # only n/a attacked cells

    def test_all_na_row(self):
        table = self.make_partial_table()
        table.rows["PEEGA"] = {"GCN": None, "GNAT": None}
        assert table.best_defender("PEEGA") is None
        text = format_accuracy_table(table)
        assert text.count("n/a") >= 2

    def test_format_renders_na_and_failure_note(self):
        text = format_accuracy_table(self.make_partial_table(), title="partial")
        assert "n/a" in text
        assert "1 cell n/a" in text
        assert "failure appendix" in text

    def test_render_comparison_handles_na(self):
        text = render_comparison(self.make_partial_table())
        assert "n/a" in text
        assert "Failure appendix" in text
        assert "DivergenceError" in text

    def test_shape_claims_survive_na_cells(self):
        claims = dict(evaluate_shape_claims(self.make_partial_table()))
        assert claims["GNAT is the best defender under PEEGA"] is False

    def test_failure_appendix_empty_for_clean_sweep(self):
        assert render_failure_appendix([]) == ""


# ---------------------------------------------------------------------------
class TestCliResume:
    ARGS = [
        "table", "cora", "--scale", "0.04", "--seeds", "1",
        "--attackers", "PEEGA", "--defenders", "GCN",
    ]

    def test_resume_requires_checkpoint_dir(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table", "cora", "--resume"])

    def test_failed_sweep_exits_nonzero_with_appendix(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(faults.ENV_VAR, "defender:throw:defender=GCN")
        code = main(self.ARGS + ["--checkpoint-dir", str(tmp_path), "--max-attempts", "1"])
        captured = capsys.readouterr()
        assert code == 3
        assert "Failure appendix" in captured.err
        assert "InjectedFault" in captured.err
        assert "n/a" in captured.out

    def test_interrupted_then_resumed_sweep_succeeds(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(faults.ENV_VAR, "defender:kill:at=1")
        with pytest.raises(InjectedKill):
            main(self.ARGS + ["--checkpoint-dir", str(tmp_path)])
        monkeypatch.delenv(faults.ENV_VAR)
        code = main(self.ARGS + ["--checkpoint-dir", str(tmp_path), "--resume"])
        captured = capsys.readouterr()
        assert code == 0
        assert "PEEGA" in captured.out
        assert captured.err == ""
