"""Nettack (targeted attacker) and SGC (linear victim model)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.attacks import AttackBudget, Nettack
from repro.errors import ConfigError
from repro.graph import gcn_normalize
from repro.nn import SGC, TrainConfig, train_node_classifier
from repro.surrogate import linear_propagation
from repro.tensor import Tensor


class TestSGC:
    @pytest.fixture(autouse=True)
    def _cold_propagation_store(self):
        # propagation_count assertions require a cold shared memo: a warm
        # store from another test (same graph content) would legitimately
        # serve A_n^K X without the instance ever propagating.
        from repro.nn import clear_propagation_cache

        clear_propagation_cache()
        yield
        clear_propagation_cache()

    def test_output_shape(self, small_cora):
        model = SGC(small_cora.num_features, small_cora.num_classes, seed=0)
        logits = model.forward(
            gcn_normalize(small_cora.adjacency), Tensor(small_cora.features)
        )
        assert logits.shape == (small_cora.num_nodes, small_cora.num_classes)

    def test_matches_surrogate_propagation(self, small_cora):
        # SGC's propagation IS the paper's surrogate: A_n^K X then linear.
        model = SGC(small_cora.num_features, small_cora.num_classes, k_hops=2, seed=0)
        normalized = gcn_normalize(small_cora.adjacency)
        logits = model.forward(normalized, Tensor(small_cora.features)).data
        propagated = linear_propagation(small_cora.adjacency, small_cora.features, 2)
        expected = propagated @ model.weight.data + model.bias.data
        np.testing.assert_allclose(logits, expected, atol=1e-9)

    def test_trains(self, small_cora):
        model = SGC(small_cora.num_features, small_cora.num_classes, seed=0)
        result = train_node_classifier(model, small_cora, TrainConfig(epochs=60))
        assert result.test_accuracy > 1.5 / small_cora.num_classes

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SGC(4, 2, k_hops=0)

    def test_propagation_memoized_across_forwards(self, small_cora):
        # A_n^K X has no parameters: repeated forwards on the same
        # (adjacency, features) pair must propagate once, and the memo must
        # not change the logits.
        model = SGC(small_cora.num_features, small_cora.num_classes, k_hops=2, seed=0)
        normalized = gcn_normalize(small_cora.adjacency)
        features = Tensor(small_cora.features)
        first = model.forward(normalized, features).data.copy()
        second = model.forward(normalized, features).data
        assert model.propagation_count == 1
        np.testing.assert_array_equal(first, second)

    def test_memo_invalidated_by_content_change(self, small_cora):
        model = SGC(small_cora.num_features, small_cora.num_classes, k_hops=2, seed=0)
        normalized = gcn_normalize(small_cora.adjacency)
        features = Tensor(small_cora.features)
        stale = model.forward(normalized, features).data.copy()
        # Same object identity, different content: the fingerprint catches it.
        normalized.data *= 0.5
        fresh = model.forward(normalized, features).data
        assert model.propagation_count == 2
        assert not np.allclose(stale, fresh)

    def test_memo_reused_during_training(self, small_cora):
        # train_node_classifier reuses one adjacency and one features tensor,
        # so a whole run costs a single propagation pass.
        model = SGC(small_cora.num_features, small_cora.num_classes, seed=0)
        result = train_node_classifier(model, small_cora, TrainConfig(epochs=20))
        assert result.epochs_run >= 2
        assert model.propagation_count == 1


class TestNettack:
    def test_requires_target(self, small_cora):
        with pytest.raises(ConfigError, match="target"):
            Nettack(seed=0).attack(small_cora, budget=AttackBudget(total=2))

    def test_target_range_validated(self, small_cora):
        attacker = Nettack(target=10_000, seed=0)
        with pytest.raises(ConfigError, match="out of range"):
            attacker.attack(small_cora, budget=AttackBudget(total=2))

    def test_requires_labels(self, small_cora):
        attacker = Nettack(target=0, seed=0)
        with pytest.raises(ConfigError):
            attacker.attack(replace(small_cora, labels=None), budget=AttackBudget(total=2))

    def test_perturbations_touch_attacker_nodes_only(self, small_cora):
        victim = int(np.flatnonzero(small_cora.degrees() >= 2)[0])
        result = Nettack(target=victim, influencers=0, seed=0).attack(
            small_cora, budget=AttackBudget(total=4)
        )
        for flip in result.edge_flips:
            assert victim in (flip.u, flip.v)
        for flip in result.feature_flips:
            assert flip.node == victim

    def test_margin_decreases(self, small_cora):
        victim = int(np.flatnonzero(small_cora.degrees() >= 2)[0])
        result = Nettack(target=victim, seed=0).attack(
            small_cora, budget=AttackBudget(total=4)
        )
        # objective_trace stores −margin, so it must be non-decreasing.
        trace = result.objective_trace
        assert len(trace) >= 2
        assert trace[-1] >= trace[0] - 1e-9

    def test_budget_respected(self, small_cora):
        victim = int(np.flatnonzero(small_cora.degrees() >= 2)[0])
        result = Nettack(target=victim, seed=0).attack(
            small_cora, budget=AttackBudget(total=3)
        )
        result.verify_budget()
        assert result.num_perturbations <= 3

    def test_never_disconnects_nodes(self, small_cora):
        victim = int(np.argmin(small_cora.degrees()))
        result = Nettack(target=victim, attack_features=False, seed=0).attack(
            small_cora, budget=AttackBudget(total=6)
        )
        assert result.poisoned.degrees().min() >= 1

    def test_influencer_mode(self, small_cora):
        victim = int(np.flatnonzero(small_cora.degrees() >= 3)[0])
        result = Nettack(target=victim, influencers=2, seed=0).attack(
            small_cora, budget=AttackBudget(total=4)
        )
        assert result.num_perturbations > 0

    def test_influencers_validation(self):
        with pytest.raises(ConfigError):
            Nettack(target=0, influencers=-1)
