"""End-to-end `repro table --compare`: runner → report → CLI."""

import pytest

from repro.cli import main


class TestCompareFlag:
    def test_compare_renders_markdown(self, capsys):
        code = main(
            [
                "table", "cora", "--scale", "0.04", "--seeds", "1",
                "--attackers", "PEEGA", "GF-Attack", "Metattack",
                "--defenders", "GCN", "GNAT",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("### cora @ rate 0.1")
        assert "| attacker |" in out
        assert "Shape claims" in out
        # Paper references must be present for known cells.
        assert "(83.4)" in out  # clean GCN paper value
        # Every claim line carries a verdict icon.
        claim_lines = [l for l in out.splitlines() if l.startswith("- ")]
        assert len(claim_lines) == 5
        assert all(("✅" in l) or ("❌" in l) for l in claim_lines)

    def test_plain_table_unaffected(self, capsys):
        code = main(
            [
                "table", "cora", "--scale", "0.04", "--seeds", "1",
                "--attackers", "PEEGA", "--defenders", "GCN",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Attacker" in out
        assert "Shape claims" not in out
