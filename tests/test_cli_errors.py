"""CLI error handling: library errors surface as exit code 2, not tracebacks."""

import numpy as np
import pytest

from repro.cli import main


class TestErrorPaths:
    def test_corrupt_archive_returns_error_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        np.savez(bad, junk=np.zeros(2))
        code = main(["info", "--graph", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_jaccard_on_polblogs_returns_error_code(self, tmp_path, capsys):
        graph_file = tmp_path / "pb.npz"
        assert main([
            "dataset", "polblogs", "--scale", "0.07", "--out", str(graph_file)
        ]) == 0
        capsys.readouterr()
        code = main(["defend", "GCN-Jaccard", "--graph", str(graph_file), "--seeds", "1"])
        assert code == 2
        assert "not applicable" in capsys.readouterr().err

    def test_missing_file_is_oserror_not_swallowed(self, tmp_path):
        # Genuine environment errors are not masked as exit-code-2 library
        # errors — they propagate for the shell/user to see.
        with pytest.raises(FileNotFoundError):
            main(["info", "--graph", str(tmp_path / "nope.npz")])
