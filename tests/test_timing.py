"""Timing harness (Tables VII/VIII machinery)."""

from repro.experiments import (
    CellResult,
    ExperimentScale,
    attacker_timings,
    defender_timings,
    format_timing_table,
)

TINY = ExperimentScale(scale=0.04, seeds=1, rate=0.05)


class TestAttackerTimings:
    def test_structure_and_positivity(self):
        timings = attacker_timings(
            ["cora"], attackers=["PEEGA"], config=TINY, repeats=1
        )
        assert set(timings) == {"PEEGA"}
        cell = timings["PEEGA"]["cora"]
        assert isinstance(cell, CellResult)
        assert cell.mean > 0
        assert len(cell.values) == 1


class TestDefenderTimings:
    def test_structure_and_positivity(self):
        timings = defender_timings(
            ["cora"], defenders=["GCN", "GNAT"], config=TINY, repeats=1
        )
        assert set(timings) == {"GCN", "GNAT"}
        assert timings["GNAT"]["cora"].mean > 0

    def test_polblogs_defaults_skip_jaccard(self):
        timings = defender_timings(
            ["polblogs"], defenders=None, config=TINY, repeats=1
        )
        assert "GCN-Jaccard" not in timings

    def test_render(self):
        timings = defender_timings(["cora"], defenders=["GCN"], config=TINY, repeats=1)
        text = format_timing_table(timings, title="t")
        assert "GCN" in text and "cora" in text
