"""Tests for the NN-level functional ops: losses, dropout, sparse matmul,
masked fill, concatenation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.tensor import Tensor, check_gradients
from repro.tensor import functional as F


class TestCrossEntropy:
    def test_nll_matches_manual(self):
        logp = np.log(np.array([[0.7, 0.3], [0.2, 0.8]]))
        targets = np.array([0, 1])
        loss = F.nll_loss(Tensor(logp), targets)
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss.item() == pytest.approx(expected)

    def test_mask_selects_rows(self):
        logp = np.log(np.array([[0.7, 0.3], [0.2, 0.8], [0.5, 0.5]]))
        targets = np.array([0, 1, 0])
        mask = np.array([True, False, False])
        loss = F.nll_loss(Tensor(logp), targets, mask)
        assert loss.item() == pytest.approx(-np.log(0.7))

    def test_empty_mask_rejected(self):
        with pytest.raises(ShapeError):
            F.nll_loss(Tensor(np.zeros((2, 2))), np.array([0, 1]), np.zeros(2, bool))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            F.nll_loss(Tensor(np.zeros((2, 2))), np.array([0, 1, 0]))

    def test_cross_entropy_gradcheck(self):
        logits = np.random.default_rng(0).normal(size=(4, 3))
        targets = np.array([0, 2, 1, 1])
        mask = np.array([True, True, False, True])
        check_gradients(lambda a: F.cross_entropy(a, targets, mask), [logits])

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.eye(3) * 50.0
        loss = F.cross_entropy(Tensor(logits), np.arange(3))
        assert loss.item() < 1e-6


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_rate_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        assert F.dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((300, 300)))
        out = F.dropout(x, 0.4, rng).data
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_zeroes_fraction(self):
        rng = np.random.default_rng(0)
        out = F.dropout(Tensor(np.ones((200, 200))), 0.3, rng).data
        assert (out == 0).mean() == pytest.approx(0.3, abs=0.02)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))


class TestSparseMatmul:
    def test_matches_dense(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((5, 5)) > 0.6).astype(float)
        x = rng.normal(size=(5, 3))
        out = F.sparse_matmul(sp.csr_matrix(dense), Tensor(x))
        np.testing.assert_allclose(out.data, dense @ x)

    def test_gradient_is_transpose_product(self):
        rng = np.random.default_rng(1)
        dense = (rng.random((4, 4)) > 0.5).astype(float)
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        out = F.sparse_matmul(sp.csr_matrix(dense), x)
        upstream = rng.normal(size=(4, 2))
        out.backward(upstream)
        np.testing.assert_allclose(x.grad, dense.T @ upstream)

    def test_constant_input_builds_no_graph(self):
        out = F.sparse_matmul(sp.eye(3, format="csr"), Tensor(np.ones((3, 2))))
        assert not out.requires_grad


class TestMaskedFill:
    def test_forward(self):
        x = Tensor(np.arange(4.0).reshape(2, 2))
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -99.0)
        np.testing.assert_allclose(out.data, [[-99.0, 1.0], [2.0, -99.0]])

    def test_no_gradient_through_masked_entries(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        F.masked_fill(x, mask, 0.0).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 1.0]])


class TestConcatRows:
    def test_forward_and_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        out = F.concat_rows(a, b)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ShapeError):
            F.concat_rows(Tensor(np.ones((2, 2))), Tensor(np.ones((3, 2))))
