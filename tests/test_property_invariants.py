"""Cross-module invariants driven by hypothesis.

These tie several subsystems together: whatever random graph the generator
produces and whatever budget an attacker is given, the structural contracts
of the paper's formalization must hold.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import edge_difference
from repro.core import PEEGA, ego_graph, feature_graph, topology_graph
from repro.datasets import stratified_split
from repro.datasets.synthetic import SyntheticSpec, generate_graph
from repro.graph import structural_distance


def tiny_random_graph(seed: int):
    spec = SyntheticSpec(
        num_nodes=40, num_edges=80, num_classes=3, feature_dim=30, homophily=0.75
    )
    return stratified_split(generate_graph(spec, seed=seed), seed=seed)


class TestAttackInvariants:
    @given(st.integers(0, 1000), st.integers(1, 10))
    @settings(max_examples=8, deadline=None)
    def test_peega_budget_exact_for_any_graph_and_budget(self, seed, budget):
        graph = tiny_random_graph(seed)
        from repro.attacks import AttackBudget

        result = PEEGA(seed=seed).attack(graph, budget=AttackBudget(total=float(budget)))
        result.verify_budget()
        assert result.num_perturbations <= budget
        # The poisoned adjacency stays symmetric, binary, loop-free
        # (Graph.__post_init__ would raise otherwise, but check explicitly).
        adj = result.poisoned.adjacency
        assert (adj != adj.T).nnz == 0
        assert adj.diagonal().sum() == 0.0
        assert set(np.unique(adj.data)) <= {1.0}

    @given(st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_edge_difference_matches_structural_distance(self, seed):
        graph = tiny_random_graph(seed)
        result = PEEGA(attack_features=False, seed=seed).attack(
            graph, perturbation_rate=0.1
        )
        diff = edge_difference(graph, result.poisoned)
        assert diff.total == structural_distance(
            graph.adjacency, result.poisoned.adjacency
        )
        assert diff.total == len(result.edge_flips)


class TestAugmentationInvariants:
    @given(st.integers(0, 1000), st.integers(2, 4))
    @settings(max_examples=8, deadline=None)
    def test_topology_graph_contains_original_edges(self, seed, hops):
        graph = tiny_random_graph(seed)
        augmented = topology_graph(graph.adjacency, hops)
        missing = graph.adjacency - graph.adjacency.multiply(augmented)
        assert missing.nnz == 0

    @given(st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_feature_graph_degree_bounds(self, seed, k):
        graph = tiny_random_graph(seed)
        knn = feature_graph(graph.features, k)
        degrees = np.asarray(knn.sum(axis=1)).ravel()
        # Symmetrization can only add edges on top of the k proposals.
        assert degrees.min() >= k
        assert knn.diagonal().sum() == 0.0

    @given(st.integers(0, 1000), st.floats(0.0, 20.0))
    @settings(max_examples=8, deadline=None)
    def test_ego_graph_diagonal(self, seed, k_ego):
        graph = tiny_random_graph(seed)
        ego = ego_graph(graph.adjacency, k_ego)
        np.testing.assert_allclose(
            ego.diagonal(), np.full(graph.num_nodes, k_ego), atol=1e-12
        )
        off = ego - sp.diags(ego.diagonal())
        assert (off != graph.adjacency).nnz == 0
