"""Baseline defenders: Jaccard, SVD, RGCN, Pro-GNN, SimPGCN, raw GNNs."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.defenses import (
    GCNJaccard,
    GCNSVD,
    ProGNN,
    RawGAT,
    RawGCN,
    RGCN,
    SimPGCN,
    drop_dissimilar_edges,
    jaccard_similarity,
    knn_graph,
    low_rank_adjacency,
)
from repro.errors import ConfigError
from repro.nn import TrainConfig


FAST = TrainConfig(epochs=40, patience=40)


class TestDefenderInterface:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RawGCN(train_config=FAST, seed=0),
            lambda: RawGAT(train_config=FAST, seed=0),
            lambda: GCNJaccard(train_config=FAST, seed=0),
            lambda: GCNSVD(rank=8, train_config=FAST, seed=0),
            lambda: RGCN(train_config=FAST, seed=0),
            lambda: SimPGCN(knn_k=8, train_config=FAST, seed=0),
            lambda: ProGNN(outer_epochs=8, seed=0),
        ],
    )
    def test_fit_returns_sane_result(self, small_cora, factory):
        result = factory().fit(small_cora)
        assert 0.0 <= result.test_accuracy <= 1.0
        assert 0.0 <= result.val_accuracy <= 1.0
        assert result.runtime_seconds > 0

    def test_fit_requires_labels_and_masks(self, small_cora):
        from dataclasses import replace

        with pytest.raises(ConfigError):
            RawGCN(seed=0).fit(replace(small_cora, labels=None))
        with pytest.raises(ConfigError):
            RawGCN(seed=0).fit(replace(small_cora, val_mask=None))

    def test_raw_gcn_beats_chance(self, small_cora):
        result = RawGCN(seed=0).fit(small_cora)
        assert result.test_accuracy > 1.5 / small_cora.num_classes


class TestJaccard:
    def test_similarity_values(self):
        a = np.array([1.0, 1.0, 0.0])
        b = np.array([1.0, 0.0, 1.0])
        assert jaccard_similarity(a, b) == pytest.approx(1 / 3)
        assert jaccard_similarity(a, a) == 1.0
        assert jaccard_similarity(a, np.zeros(3)) == 0.0

    def test_drop_dissimilar_edges(self, tiny_graph):
        # The bridge (2, 3) connects nodes with disjoint features.
        cleaned, removed = drop_dissimilar_edges(tiny_graph, threshold=0.05)
        assert removed == 1
        assert not cleaned.has_edge(2, 3)
        assert cleaned.has_edge(0, 1)

    def test_zero_threshold_removes_nothing(self, tiny_graph):
        cleaned, removed = drop_dissimilar_edges(tiny_graph, threshold=0.0)
        assert removed == 0
        assert cleaned.num_edges == tiny_graph.num_edges

    def test_rejects_identity_features(self, small_polblogs):
        with pytest.raises(ConfigError, match="identity"):
            GCNJaccard(seed=0).fit(small_polblogs)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            GCNJaccard(threshold=-1.0)


class TestSVD:
    def test_low_rank_reconstruction_properties(self, small_cora):
        recon = low_rank_adjacency(small_cora.adjacency, rank=5)
        assert recon.shape == (small_cora.num_nodes, small_cora.num_nodes)
        assert (recon >= 0).all()
        np.testing.assert_allclose(recon, recon.T, atol=1e-9)
        # A higher rank approximates the adjacency strictly better.
        dense = small_cora.adjacency.toarray()
        err5 = np.linalg.norm(dense - recon)
        err40 = np.linalg.norm(dense - low_rank_adjacency(small_cora.adjacency, rank=40))
        assert err40 < err5 < np.linalg.norm(dense)

    def test_full_rank_request_returns_clipped_dense(self, tiny_graph):
        recon = low_rank_adjacency(tiny_graph.adjacency, rank=6)
        np.testing.assert_allclose(recon, tiny_graph.dense_adjacency())

    def test_rank_validation(self, tiny_graph):
        with pytest.raises(ConfigError):
            low_rank_adjacency(tiny_graph.adjacency, rank=0)

    def test_low_rank_denoises_random_edges(self, small_polblogs):
        # A rank-2 approximation of a 2-community graph keeps block structure.
        recon = low_rank_adjacency(small_polblogs.adjacency, rank=2)
        labels = small_polblogs.labels
        same = recon[np.ix_(labels == 0, labels == 0)].mean()
        cross = recon[np.ix_(labels == 0, labels == 1)].mean()
        assert same > cross


class TestRGCN:
    def test_kl_cache_populated(self, small_cora):
        defender = RGCN(train_config=TrainConfig(epochs=5, patience=5), seed=0)
        defender.fit(small_cora)  # must not raise; KL term used every epoch

    def test_works_on_identity_features(self, small_polblogs):
        result = RGCN(train_config=FAST, seed=0).fit(small_polblogs)
        assert result.test_accuracy > 0.5


class TestProGNN:
    def test_proximal_operator_properties(self):
        rng = np.random.default_rng(0)
        s = rng.normal(size=(8, 8))
        out = ProGNN._proximal(s, beta_nuclear=0.1, gamma_l1=0.05)
        np.testing.assert_allclose(out, out.T, atol=1e-12)
        assert (out >= 0).all() and (out <= 1).all()
        assert np.diag(out).sum() == 0.0

    def test_nuclear_shrinkage_reduces_rank(self):
        rng = np.random.default_rng(1)
        s = rng.normal(size=(10, 10))
        s = np.abs(0.5 * (s + s.T))
        heavy = ProGNN._proximal(s, beta_nuclear=2.0, gamma_l1=0.0)
        light = ProGNN._proximal(s, beta_nuclear=0.0, gamma_l1=0.0)
        assert np.linalg.matrix_rank(heavy, tol=1e-8) <= np.linalg.matrix_rank(
            light, tol=1e-8
        )

    def test_learned_structure_reported(self, small_cora):
        result = ProGNN(outer_epochs=5, seed=0).fit(small_cora)
        assert "learned_edges" in result.details


class TestSimPGCN:
    def test_knn_graph_properties(self, small_cora):
        graph = knn_graph(small_cora.features, k=4)
        assert graph.diagonal().sum() == 0
        assert ((graph - graph.T) != 0).nnz == 0
        degrees = np.asarray(graph.sum(axis=1)).ravel()
        assert degrees.min() >= 4  # each node proposed k neighbors

    def test_knn_k_validation(self, small_cora):
        with pytest.raises(ValueError):
            knn_graph(small_cora.features, k=0)
        with pytest.raises(ValueError):
            knn_graph(small_cora.features, k=small_cora.num_nodes)

    def test_knn_graph_prefers_same_class(self, small_cora):
        graph = knn_graph(small_cora.features, k=5)
        coo = sp.triu(graph, k=1).tocoo()
        labels = small_cora.labels
        same = (labels[coo.row] == labels[coo.col]).mean()
        assert same > 1.0 / small_cora.num_classes
