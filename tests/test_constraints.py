"""Attacker-node constraints (Fig 7a machinery)."""

import numpy as np
import pytest

from repro.attacks import AttackerNodes, sample_attacker_nodes
from repro.errors import ConfigError


class TestAttackerNodes:
    def test_node_mask(self):
        nodes = AttackerNodes(nodes=np.array([1, 3]))
        mask = nodes.node_mask(5)
        np.testing.assert_array_equal(mask, [False, True, False, True, False])

    def test_duplicates_removed(self):
        nodes = AttackerNodes(nodes=np.array([2, 2, 1]))
        np.testing.assert_array_equal(nodes.nodes, [1, 2])

    def test_edge_mask_any_mode(self):
        nodes = AttackerNodes(nodes=np.array([0]), mode="any")
        mask = nodes.edge_mask(3)
        assert mask[0, 1] and mask[2, 0]
        assert not mask[1, 2]
        assert not mask.diagonal().any()

    def test_edge_mask_both_mode(self):
        nodes = AttackerNodes(nodes=np.array([0, 1]), mode="both")
        mask = nodes.edge_mask(3)
        assert mask[0, 1]
        assert not mask[0, 2]

    def test_feature_mask(self):
        nodes = AttackerNodes(nodes=np.array([1]))
        mask = nodes.feature_mask(3, 4)
        assert mask.shape == (3, 4)
        assert mask[1].all() and not mask[0].any()

    def test_validation(self):
        with pytest.raises(ConfigError):
            AttackerNodes(nodes=np.array([]), mode="any")
        with pytest.raises(ConfigError):
            AttackerNodes(nodes=np.array([1]), mode="some")


class TestSampling:
    def test_sample_size(self, small_cora):
        nodes = sample_attacker_nodes(small_cora, 0.3, seed=0)
        assert len(nodes.nodes) == round(0.3 * small_cora.num_nodes)

    def test_full_rate_covers_all(self, small_cora):
        nodes = sample_attacker_nodes(small_cora, 1.0, seed=0)
        assert len(nodes.nodes) == small_cora.num_nodes

    def test_deterministic(self, small_cora):
        a = sample_attacker_nodes(small_cora, 0.5, seed=1)
        b = sample_attacker_nodes(small_cora, 0.5, seed=1)
        np.testing.assert_array_equal(a.nodes, b.nodes)

    def test_invalid_rate(self, small_cora):
        with pytest.raises(ConfigError):
            sample_attacker_nodes(small_cora, 0.0)
        with pytest.raises(ConfigError):
            sample_attacker_nodes(small_cora, 1.2)
