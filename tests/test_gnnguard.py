"""GNNGuard similarity-pruning defense."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.defenses import GNNGuard, similarity_weights
from repro.nn import TrainConfig

FAST = TrainConfig(epochs=40, patience=40)


class TestSimilarityWeights:
    def test_prunes_dissimilar_edges(self, tiny_graph):
        # Bridge (2, 3) connects orthogonal-feature nodes → cos = 0 < 0.1.
        weights = similarity_weights(tiny_graph.adjacency, tiny_graph.features, 0.1)
        assert weights[2, 3] == 0.0
        assert weights[0, 1] > 0.0

    def test_rows_bounded(self, small_cora):
        weights = similarity_weights(small_cora.adjacency, small_cora.features, 0.1)
        sums = np.asarray(weights.sum(axis=1)).ravel()
        assert (sums <= 1.0 + 1e-9).all()
        assert (sums > 0.0).all()  # self weight keeps every row alive

    def test_low_threshold_keeps_positive_cosine_edges(self, small_cora):
        weights = similarity_weights(small_cora.adjacency, small_cora.features, -1.0)
        features = small_cora.features
        norms = np.linalg.norm(features, axis=1)
        coo = sp.triu(small_cora.adjacency, k=1).tocoo()
        for u, v in zip(coo.row, coo.col):
            cosine = features[u] @ features[v] / (norms[u] * norms[v])
            if cosine > 1e-9:
                assert weights[u, v] > 0.0, (u, v)

    def test_fully_pruned_node_falls_back_to_self(self, tiny_graph):
        # With an impossible threshold everything is pruned; the operator
        # degenerates to (scaled) self-loops.
        weights = similarity_weights(tiny_graph.adjacency, tiny_graph.features, 2.0)
        off_diagonal = weights - sp.diags(weights.diagonal())
        assert off_diagonal.nnz == 0
        assert (weights.diagonal() > 0).all()


class TestGNNGuardDefender:
    def test_fit_sane(self, small_cora):
        result = GNNGuard(train_config=FAST, seed=0).fit(small_cora)
        assert 0.3 <= result.test_accuracy <= 1.0

    def test_memory_validation(self):
        with pytest.raises(ValueError):
            GNNGuard(memory=1.5)

    def test_works_on_identity_features(self, small_polblogs):
        # Identity features make all neighbor cosines 0 → everything pruned
        # at layer 1; the self-weight fallback must keep training feasible.
        result = GNNGuard(train_config=FAST, seed=0).fit(small_polblogs)
        assert 0.0 <= result.test_accuracy <= 1.0
