"""Full-scale (scale=1.0) dataset generation — Table III statistics.

Generation only (no training): verifies the paper-facing statistics are hit
exactly at the scale users would run real experiments at.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graph.properties import edge_homophily


@pytest.mark.parametrize(
    "name,nodes,classes,features,homophily",
    [
        ("cora", 2485, 7, 1433, 0.81),
        ("polblogs", 1222, 2, 1222, 0.91),
    ],
)
def test_full_scale_statistics(name, nodes, classes, features, homophily):
    graph = load_dataset(name, scale=1.0, seed=0)
    assert graph.num_nodes == nodes
    assert graph.num_classes == classes
    assert graph.num_features == features
    assert abs(edge_homophily(graph) - homophily) < 0.05
    # Splits follow the paper's 10/10/80 protocol.
    assert abs(graph.train_mask.sum() - round(0.1 * nodes)) <= 2
    assert abs(graph.val_mask.sum() - round(0.1 * nodes)) <= 2
    # Structural invariants at full size.
    assert graph.adjacency.diagonal().sum() == 0.0
    assert (graph.adjacency != graph.adjacency.T).nnz == 0


def test_full_scale_cora_edge_count():
    graph = load_dataset("cora", scale=1.0, seed=0)
    assert abs(graph.num_edges - 5069) < 5069 * 0.05
