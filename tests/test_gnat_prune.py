"""GNAT's edge-pruning extension (the paper's Sec. VI future work)."""

import numpy as np
import pytest

from repro.core import GNAT, PEEGA
from repro.errors import ConfigError
from repro.graph import EdgeFlip, apply_perturbations
from repro.nn import TrainConfig


FAST = TrainConfig(epochs=40, patience=40)


class TestPruneGraph:
    def test_none_threshold_is_identity(self, small_cora):
        defender = GNAT(prune_threshold=None)
        assert defender.prune_graph(small_cora) is small_cora

    def test_removes_dissimilar_edges(self, tiny_graph):
        # Bridge (2, 3) connects nodes with orthogonal features.
        poisoned = apply_perturbations(tiny_graph, [EdgeFlip(0, 4)])
        defender = GNAT(prune_threshold=0.1)
        pruned = defender.prune_graph(poisoned)
        assert not pruned.has_edge(2, 3)
        assert not pruned.has_edge(0, 4)
        assert pruned.has_edge(0, 1)  # identical features survive

    def test_zero_threshold_keeps_everything(self, small_cora):
        defender = GNAT(prune_threshold=0.0)
        pruned = defender.prune_graph(small_cora)
        assert pruned.num_edges == small_cora.num_edges

    def test_identity_features_rejected(self, small_polblogs):
        with pytest.raises(ConfigError, match="identity"):
            GNAT(views="te", prune_threshold=0.1).prune_graph(small_polblogs)

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            GNAT(prune_threshold=1.5)
        with pytest.raises(ConfigError):
            GNAT(prune_threshold=-0.1)


class TestPrunedDefense:
    def test_fit_reports_pruned_edges(self, small_cora):
        poisoned = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.1).poisoned
        result = GNAT(prune_threshold=0.02, train_config=FAST, seed=0).fit(poisoned)
        assert result.details["pruned_edges"] > 0
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_published_config_reports_zero_pruned(self, small_cora):
        result = GNAT(train_config=FAST, seed=0).fit(small_cora)
        assert result.details["pruned_edges"] == 0

    def test_pruning_targets_adversarial_additions(self, small_cora):
        # PEEGA adds dissimilar-pair edges; count how many of the pruned
        # edges are attack edges vs original edges.
        attack = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.15)
        poisoned = attack.poisoned
        defender = GNAT(prune_threshold=0.02)
        pruned = defender.prune_graph(poisoned)
        added = {
            (min(f.u, f.v), max(f.u, f.v))
            for f in attack.edge_flips
            if not small_cora.has_edge(f.u, f.v)
        }
        removed = set(map(tuple, poisoned.edge_list())) - set(
            map(tuple, pruned.edge_list())
        )
        if removed:
            hit_rate = len(removed & added) / len(removed)
            base_rate = len(added) / poisoned.num_edges
            assert hit_rate >= base_rate  # pruning is enriched in attack edges
