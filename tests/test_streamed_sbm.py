"""Tests for the streamed degree-corrected SBM generator.

The generator must build a valid CSR graph directly — no dense n×n
intermediate — with degree and block structure near the spec's targets, be
bit-deterministic per seed, and stay within a streaming memory envelope at
the 100k tier.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.datasets import (
    SCALE_TIERS,
    StreamedSBMSpec,
    generate_streamed_sbm,
    load_dataset,
)
from repro.errors import DatasetError
from repro.graph import check_graph, validate_graph


def _homophily(graph):
    adj = graph.adjacency.tocoo()
    mask = adj.row < adj.col
    labels = np.asarray(graph.labels)
    return float(np.mean(labels[adj.row[mask]] == labels[adj.col[mask]]))


def _mean_degree(graph):
    return graph.adjacency.nnz / graph.num_nodes


class TestStreamedSBM:
    def test_structure_matches_spec(self):
        spec = StreamedSBMSpec(
            num_nodes=4000, avg_degree=10.0, num_classes=6, feature_dim=24,
            homophily=0.75,
        )
        graph = generate_streamed_sbm(spec, seed=0)
        assert graph.num_nodes == 4000
        assert graph.features.shape == (4000, 24)
        # Degree within 15% of target; homophily within 0.05.
        assert _mean_degree(graph) == pytest.approx(10.0, rel=0.15)
        assert _homophily(graph) == pytest.approx(0.75, abs=0.05)
        # Every class is populated and every node has at least one feature bit.
        assert len(np.unique(np.asarray(graph.labels))) == 6
        assert np.all(np.asarray(graph.features.sum(axis=1)).ravel() > 0)

    def test_passes_strict_graph_contract(self):
        spec = StreamedSBMSpec(num_nodes=3000, avg_degree=8.0, num_classes=5,
                               feature_dim=16)
        graph = generate_streamed_sbm(spec, seed=1)
        assert check_graph(graph) == []
        validate_graph(graph, policy="strict", context="streamed-sbm-test")
        # CSR sanity: sorted canonical indices, no explicit zeros.
        adj = graph.adjacency
        assert adj.has_canonical_format or adj.has_sorted_indices
        assert np.all(adj.data == 1.0)

    def test_bit_deterministic_per_seed(self):
        spec = StreamedSBMSpec(num_nodes=2500, avg_degree=9.0, num_classes=4,
                               feature_dim=20)
        a = generate_streamed_sbm(spec, seed=7)
        b = generate_streamed_sbm(spec, seed=7)
        c = generate_streamed_sbm(spec, seed=8)
        assert (a.adjacency != b.adjacency).nnz == 0
        np.testing.assert_array_equal(
            np.asarray(a.features), np.asarray(b.features)
        )
        np.testing.assert_array_equal(
            np.asarray(a.labels), np.asarray(b.labels)
        )
        assert (a.adjacency != c.adjacency).nnz != 0

    def test_spec_validation(self):
        with pytest.raises(DatasetError):
            StreamedSBMSpec(num_nodes=1, avg_degree=8.0)
        with pytest.raises(DatasetError):
            StreamedSBMSpec(num_nodes=1000, avg_degree=0.0)
        with pytest.raises(DatasetError):
            StreamedSBMSpec(num_nodes=1000, avg_degree=8.0, homophily=1.5)
        with pytest.raises(DatasetError):
            StreamedSBMSpec(num_nodes=1000, avg_degree=8.0, feature_dim=0)

    def test_scaled_spec_floors_and_bounds(self):
        spec = StreamedSBMSpec(num_nodes=100_000, num_classes=10)
        small = spec.scaled(0.001)
        assert small.num_nodes >= 2 * small.num_classes
        with pytest.raises(DatasetError):
            spec.scaled(0.0)
        with pytest.raises(DatasetError):
            spec.scaled(1.5)

    def test_registry_scale_tiers_load(self):
        assert set(SCALE_TIERS) == {"sbm-10k", "sbm-100k", "sbm-1m"}
        graph = load_dataset("sbm-10k", scale=0.02, seed=0)
        # 0.02 × 10k = 200 nodes, already split and strict-validated.
        assert graph.num_nodes == 200
        assert graph.train_mask is not None
        assert check_graph(graph) == []

    def test_100k_peak_memory_stays_streaming(self):
        """A dense n×n at 100k nodes would be 80 GB; the streamed build must
        stay within a few hundred MB."""
        spec = SCALE_TIERS["sbm-100k"]
        tracemalloc.start()
        graph = generate_streamed_sbm(spec, seed=0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert graph.num_nodes == 100_000
        assert peak < 400 * 1024 * 1024
        assert _mean_degree(graph) == pytest.approx(8.0, rel=0.15)
