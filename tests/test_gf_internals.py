"""GF-Attack internals: spectral loss, perturbation-theory scoring."""

import numpy as np

from repro.attacks import GFAttack
from repro.graph import gcn_normalize


class TestFilterLoss:
    def test_loss_positive_and_finite(self, small_cora):
        attacker = GFAttack(seed=0)
        x_bar = small_cora.features.sum(axis=1)
        loss = attacker._filter_loss(small_cora.adjacency, x_bar)
        assert np.isfinite(loss)
        assert loss > 0.0

    def test_loss_from_spectrum_matches_direct(self, small_cora):
        attacker = GFAttack(seed=0)
        x_bar = small_cora.features.sum(axis=1)
        normalized = gcn_normalize(small_cora.adjacency).toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(normalized)
        via_spectrum = attacker._loss_from_spectrum(eigenvalues, eigenvectors, x_bar)
        direct = attacker._filter_loss(small_cora.adjacency, x_bar)
        assert via_spectrum == direct

    def test_top_t_fraction_controls_terms(self, small_cora):
        x_bar = small_cora.features.sum(axis=1)
        small_t = GFAttack(top_t_fraction=0.1, seed=0)._filter_loss(
            small_cora.adjacency, x_bar
        )
        large_t = GFAttack(top_t_fraction=1.0, seed=0)._filter_loss(
            small_cora.adjacency, x_bar
        )
        # More spectrum terms ⇒ strictly more non-negative mass.
        assert large_t >= small_t


class TestPerturbationScores:
    def test_first_order_estimate_correlates_with_exact(self, small_cora):
        """Eigenvalue perturbation theory gives a weakly-informative
        pre-filter (the loss is dominated by eigen*vector* projections the
        first-order eigenvalue shift cannot see); it must at least not
        anti-correlate with the exact recomputation — final selection is
        done by exact re-evaluation of the top pool."""
        attacker = GFAttack(seed=0)
        x_bar = small_cora.features.sum(axis=1)
        dense = small_cora.dense_adjacency()
        normalized = gcn_normalize(small_cora.adjacency).toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(normalized)

        rng = np.random.default_rng(0)
        candidates = []
        while len(candidates) < 60:
            u, v = rng.integers(0, small_cora.num_nodes, 2)
            if u < v:
                candidates.append((int(u), int(v)))
        candidates = np.array(candidates)

        estimated = attacker._perturbation_scores(
            eigenvalues, eigenvectors, x_bar, candidates, dense
        )
        base = attacker._filter_loss(small_cora.adjacency, x_bar)
        exact = []
        from repro.graph import EdgeFlip, apply_perturbations

        for u, v in candidates:
            trial = apply_perturbations(small_cora, [EdgeFlip(u, v)])
            exact.append(attacker._filter_loss(trial.adjacency, x_bar) - base)
        exact = np.array(exact)

        # Spearman-ish check: non-negative rank correlation.
        est_rank = np.argsort(np.argsort(estimated))
        exact_rank = np.argsort(np.argsort(exact))
        correlation = np.corrcoef(est_rank, exact_rank)[0, 1]
        assert correlation > -0.05, correlation

    def test_identity_feature_fallback_uses_degrees(self, small_polblogs):
        attacker = GFAttack(candidate_pool=50, exact_candidates=1, seed=0)
        result = attacker.attack(small_polblogs, perturbation_rate=0.02)
        assert result.num_perturbations > 0
