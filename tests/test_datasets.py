"""Dataset substrate: generators, registry, splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DATASETS,
    dataset_names,
    load_dataset,
    split_counts,
    stratified_split,
)
from repro.datasets.synthetic import SyntheticSpec, generate_graph
from repro.errors import DatasetError
from repro.graph.properties import edge_homophily, isolated_nodes


class TestSyntheticGenerator:
    def test_deterministic_given_seed(self):
        spec = SyntheticSpec(num_nodes=100, num_edges=220, num_classes=3, feature_dim=50)
        g1 = generate_graph(spec, seed=5)
        g2 = generate_graph(spec, seed=5)
        assert (g1.adjacency != g2.adjacency).nnz == 0
        np.testing.assert_array_equal(g1.features, g2.features)
        np.testing.assert_array_equal(g1.labels, g2.labels)

    def test_different_seeds_differ(self):
        spec = SyntheticSpec(num_nodes=100, num_edges=220, num_classes=3, feature_dim=50)
        g1 = generate_graph(spec, seed=1)
        g2 = generate_graph(spec, seed=2)
        assert (g1.adjacency != g2.adjacency).nnz > 0

    def test_edge_count_near_target(self):
        spec = SyntheticSpec(num_nodes=150, num_edges=400, num_classes=4, feature_dim=60)
        g = generate_graph(spec, seed=0)
        assert abs(g.num_edges - 400) < 40

    def test_homophily_near_target(self):
        spec = SyntheticSpec(
            num_nodes=200, num_edges=500, num_classes=4, feature_dim=60, homophily=0.8
        )
        g = generate_graph(spec, seed=0)
        assert abs(edge_homophily(g) - 0.8) < 0.08

    def test_no_isolated_nodes(self):
        spec = SyntheticSpec(num_nodes=120, num_edges=160, num_classes=3, feature_dim=40)
        g = generate_graph(spec, seed=0)
        assert len(isolated_nodes(g)) == 0

    def test_binary_features_no_empty_rows(self):
        spec = SyntheticSpec(num_nodes=80, num_edges=160, num_classes=3, feature_dim=40)
        g = generate_graph(spec, seed=0)
        assert set(np.unique(g.features)) <= {0.0, 1.0}
        assert (g.features.sum(axis=1) > 0).all()

    def test_identity_features_when_dim_zero(self):
        spec = SyntheticSpec(num_nodes=60, num_edges=150, num_classes=2, feature_dim=0)
        g = generate_graph(spec, seed=0)
        np.testing.assert_array_equal(g.features, np.eye(60))

    def test_every_class_populated(self):
        spec = SyntheticSpec(num_nodes=90, num_edges=180, num_classes=6, feature_dim=30)
        g = generate_graph(spec, seed=0)
        assert len(np.unique(g.labels)) == 6

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_invariants_hold_for_any_seed(self, seed):
        spec = SyntheticSpec(num_nodes=60, num_edges=130, num_classes=3, feature_dim=25)
        g = generate_graph(spec, seed=seed)  # Graph.__post_init__ validates
        assert g.num_nodes == 60
        assert 0 < edge_homophily(g) < 1

    def test_invalid_specs_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticSpec(num_nodes=5, num_edges=10, num_classes=6, feature_dim=5)
        with pytest.raises(DatasetError):
            SyntheticSpec(num_nodes=100, num_edges=10, num_classes=3, feature_dim=5)
        with pytest.raises(DatasetError):
            SyntheticSpec(
                num_nodes=100, num_edges=200, num_classes=3, feature_dim=5, homophily=1.5
            )


class TestRegistry:
    def test_names(self):
        assert dataset_names() == [
            "citeseer", "cora", "polblogs", "sbm-100k", "sbm-10k", "sbm-1m",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("pubmed")

    def test_case_insensitive(self):
        g = load_dataset("CoRa", scale=0.05, seed=0)
        assert g.name == "cora"

    @pytest.mark.parametrize("name", ["cora", "citeseer", "polblogs"])
    def test_scaled_statistics(self, name):
        spec = DATASETS[name]
        g = load_dataset(name, scale=0.08, seed=0)
        assert abs(g.num_nodes - max(80, round(spec.num_nodes * 0.08))) <= 1
        assert g.num_classes == spec.num_classes
        if spec.feature_dim:
            assert g.num_features == spec.feature_dim  # dims are never scaled
        else:
            assert g.num_features == g.num_nodes  # identity features

    def test_full_scale_spec_matches_table3(self):
        spec = DATASETS["cora"].scaled(1.0)
        assert spec.num_nodes == 2485
        assert abs(spec.num_edges - 5069) <= 5
        assert spec.feature_dim == 1433

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("cora", scale=0.0)
        with pytest.raises(DatasetError):
            load_dataset("cora", scale=1.5)

    def test_masks_attached_and_disjoint(self):
        g = load_dataset("cora", scale=0.08, seed=0)
        assert g.train_mask is not None and g.val_mask is not None
        overlap = g.train_mask & g.val_mask | g.train_mask & g.test_mask
        assert not overlap.any()
        assert (g.train_mask | g.val_mask | g.test_mask).all()


class TestSplits:
    def test_split_counts(self):
        train, val, test = split_counts(100, 0.1, 0.1)
        assert (train, val, test) == (10, 10, 80)

    def test_split_counts_validation(self):
        with pytest.raises(DatasetError):
            split_counts(100, 0.6, 0.5)
        with pytest.raises(DatasetError):
            split_counts(100, 0.0, 0.1)

    def test_stratified_every_class_in_train(self, small_cora):
        labels = small_cora.labels
        for cls in np.unique(labels):
            assert (labels[small_cora.train_mask] == cls).any(), cls

    def test_fraction_sizes(self, small_cora):
        n = small_cora.num_nodes
        assert abs(int(small_cora.train_mask.sum()) - round(0.1 * n)) <= 2
        assert abs(int(small_cora.val_mask.sum()) - round(0.1 * n)) <= 2

    def test_requires_labels(self, small_cora):
        from dataclasses import replace

        unlabeled = replace(small_cora, labels=None, train_mask=None, val_mask=None, test_mask=None)
        with pytest.raises(DatasetError):
            stratified_split(unlabeled)

    def test_deterministic(self, small_cora):
        a = stratified_split(small_cora, seed=11)
        b = stratified_split(small_cora, seed=11)
        np.testing.assert_array_equal(a.train_mask, b.train_mask)
