"""Sanity of the machine-readable paper transcription."""

import pytest

from repro.datasets import DATASETS
from repro.experiments.paper import (
    TABLE3_DATASETS,
    TABLE7_ATTACK_SECONDS,
    TABLE8_DEFENSE_SECONDS,
    TABLE9_GNAT_ABLATION_CORA,
    paper_accuracy_table,
    shape_claims,
)


class TestTable3Consistency:
    @pytest.mark.parametrize("name", ["cora", "citeseer", "polblogs"])
    def test_registry_matches_paper_statistics(self, name):
        paper = TABLE3_DATASETS[name]
        spec = DATASETS[name]
        assert spec.num_nodes == paper["nodes"]
        assert spec.num_edges == paper["edges"]
        assert spec.num_classes == paper["classes"]
        expected_features = paper["features"] if name != "polblogs" else 0
        assert spec.feature_dim == expected_features


class TestAccuracyTables:
    @pytest.mark.parametrize("dataset", ["cora", "citeseer", "polblogs"])
    def test_rows_and_ranges(self, dataset):
        table = paper_accuracy_table(dataset)
        assert set(table) == {
            "Clean", "PGD", "MinMax", "Metattack", "GF-Attack", "PEEGA"
        }
        for row in table.values():
            for value in row.values():
                assert 50.0 < value < 100.0

    def test_polblogs_has_no_jaccard(self):
        assert "GCN-Jaccard" not in paper_accuracy_table("polblogs")["Clean"]

    @pytest.mark.parametrize("dataset", ["cora", "citeseer", "polblogs"])
    def test_all_shape_claims_hold_on_paper_numbers(self, dataset):
        for claim, holds in shape_claims(dataset):
            assert holds, f"{dataset}: paper numbers violate claim {claim!r}?"


class TestTimingTables:
    def test_peega_fastest_on_citation_graphs(self):
        for dataset in ("cora", "citeseer"):
            peega = TABLE7_ATTACK_SECONDS["PEEGA"][dataset]
            assert all(
                peega <= times[dataset]
                for name, times in TABLE7_ATTACK_SECONDS.items()
                if name != "PEEGA"
            )

    def test_prognn_slowest_defender_everywhere(self):
        for dataset in ("cora", "citeseer", "polblogs"):
            prognn = TABLE8_DEFENSE_SECONDS["Pro-GNN"][dataset]
            assert all(
                prognn >= times[dataset]
                for name, times in TABLE8_DEFENSE_SECONDS.items()
            )

    def test_gnat_close_to_gcn(self):
        for dataset in ("cora", "citeseer", "polblogs"):
            ratio = (
                TABLE8_DEFENSE_SECONDS["GNAT"][dataset]
                / TABLE8_DEFENSE_SECONDS["GCN"][dataset]
            )
            assert ratio < 2.0


class TestAblationTable:
    def test_multiview_beats_merged(self):
        table = TABLE9_GNAT_ABLATION_CORA
        assert table["GNAT-t+f"] > table["GNAT-tf"]
        assert table["GNAT-t+e"] > table["GNAT-te"]
        assert table["GNAT-f+e"] > table["GNAT-fe"]
        assert table["GNAT-t+f+e"] > table["GNAT-tfe"]

    def test_full_combination_is_best(self):
        table = TABLE9_GNAT_ABLATION_CORA
        assert max(table, key=table.get) == "GNAT-t+f+e"
