"""Property tests for the propagation cache's delta updates.

Invariants locked down here:

* a flip followed by its inverse restores every cached array **bit-exactly**;
* incremental state always equals a from-scratch rebuild of the perturbed
  topology;
* attacks never overspend the budget, under either scoring engine and any
  feature-cost weighting;
* a graph mutated behind the cache's back raises :class:`CacheError`
  instead of serving stale propagation state.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.attacks.base import AttackBudget
from repro.core.difference import DifferenceObjective
from repro.core.peega import PEEGA
from repro.errors import CacheError
from repro.graph import EdgeFlip, FeatureFlip, Graph, PerturbationLog, apply_perturbations
from repro.surrogate import PropagationCache


def _random_graph(seed: int, n: int = 40, density: float = 0.12, d: int = 8) -> Graph:
    rng = np.random.default_rng(seed)
    upper = np.triu((rng.random((n, n)) < density).astype(np.float64), 1)
    adjacency = upper + upper.T
    features = (rng.random((n, d)) < 0.4).astype(np.float64)
    return Graph(
        adjacency=sp.csr_matrix(adjacency), features=features, name=f"rand-{seed}"
    )


def _snapshot(cache: PropagationCache) -> tuple:
    """Bit-exact image of every cached array."""
    an = cache.normalized
    return (
        an.data.tobytes(),
        an.indices.tobytes(),
        an.indptr.tobytes(),
        cache.scaling.tobytes(),
        cache.loop_degrees.tobytes(),
    )


def _some_edge(graph: Graph) -> tuple[int, int]:
    coo = graph.adjacency.tocoo()
    for u, v in zip(coo.row, coo.col):
        if u < v:
            return int(u), int(v)
    raise AssertionError("graph has no edges")


def _some_non_edge(graph: Graph) -> tuple[int, int]:
    dense = graph.dense_adjacency()
    n = graph.num_nodes
    for u in range(n):
        for v in range(u + 1, n):
            if dense[u, v] == 0.0:
                return u, v
    raise AssertionError("graph is complete")


# ---------------------------------------------------------------------------
# Bit-exact restore
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_flip_and_inverse_restore_bit_exact(seed):
    graph = _random_graph(seed)
    cache = PropagationCache(graph)
    clean = _snapshot(cache)

    for u, v in (_some_edge(graph), _some_non_edge(graph)):
        flip = EdgeFlip(u, v)
        cache.apply(flip)
        assert _snapshot(cache) != clean  # the flip visibly changed state
        cache.apply(flip)  # toggling again is the inverse
        assert _snapshot(cache) == clean


def test_flip_sequence_unwinds_bit_exact():
    graph = _random_graph(7)
    cache = PropagationCache(graph)
    clean = _snapshot(cache)
    e1 = EdgeFlip(*_some_edge(graph))
    e2 = EdgeFlip(*_some_non_edge(graph))
    e3 = EdgeFlip(0, graph.num_nodes - 1)
    for flip in (e1, e2, e3):
        cache.apply(flip)
    assert cache.version == 3
    for flip in (e3, e2, e1):  # unwind in reverse order
        cache.apply(flip)
    assert _snapshot(cache) == clean
    assert cache.version == 6  # the log keeps full history


def test_incremental_state_matches_rebuild():
    """After arbitrary flips the cached A_n equals a from-scratch cache of
    the equivalently-perturbed graph — bit for bit."""
    graph = _random_graph(11)
    flips = [
        EdgeFlip(*_some_edge(graph)),
        EdgeFlip(*_some_non_edge(graph)),
        EdgeFlip(2, 31),
        EdgeFlip(5, 17),
    ]
    cache = PropagationCache(graph)
    for flip in flips:
        cache.apply(flip)

    perturbed = apply_perturbations(graph, flips)
    rebuilt = PropagationCache(perturbed)
    assert _snapshot(cache) == _snapshot(rebuilt)
    # Derived powers agree as well (these go through separate sparse GEMMs,
    # so allow roundoff).
    np.testing.assert_allclose(
        cache.power(2).toarray(), rebuilt.power(2).toarray(), atol=1e-14
    )


def test_feature_flips_touch_log_but_not_topology():
    graph = _random_graph(3)
    cache = PropagationCache(graph)
    clean = _snapshot(cache)
    cache.apply(FeatureFlip(4, 2))
    assert cache.version == 1
    assert cache.key == (("feature", 4, 2),)
    assert _snapshot(cache) == clean


def test_powers_memoized_until_invalidated():
    graph = _random_graph(5)
    cache = PropagationCache(graph)
    first = cache.power(2)
    assert cache.power(2) is first  # memoized
    cache.apply(EdgeFlip(*_some_non_edge(graph)))
    assert cache.power(2) is not first  # flip invalidated derived powers
    assert cache.normalization_count == 1  # ...without renormalizing


# ---------------------------------------------------------------------------
# Budget accounting
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("use_cache", [False, True])
@pytest.mark.parametrize("total,feature_cost", [(1, 1.0), (7, 1.0), (5, 2.5), (20, 0.5)])
def test_budget_never_exceeded(small_cora, use_cache, total, feature_cost):
    budget = AttackBudget(total=total, feature_cost=feature_cost)
    attacker = PEEGA(use_cache=use_cache, seed=0)
    result = attacker.attack(small_cora, budget)
    result.verify_budget()  # raises BudgetError on overspend
    assert result.spent <= budget.total + 1e-9
    assert result.num_perturbations > 0


def test_log_total_cost_weighting():
    log = PerturbationLog()
    log.record(EdgeFlip(0, 1))
    log.record(FeatureFlip(2, 3))
    log.record(FeatureFlip(2, 4))
    assert log.total_cost() == pytest.approx(3.0)
    assert log.total_cost(feature_cost=2.5) == pytest.approx(6.0)
    assert log.key == (("edge", 0, 1), ("feature", 2, 3), ("feature", 2, 4))


# ---------------------------------------------------------------------------
# Staleness detection
# ---------------------------------------------------------------------------
def test_out_of_band_mutation_raises():
    graph = _random_graph(9)
    cache = PropagationCache(graph)
    graph.adjacency.data[0] += 1.0  # mutate behind the cache's back
    with pytest.raises(CacheError):
        cache.normalized
    with pytest.raises(CacheError):
        cache.apply(EdgeFlip(0, 1))
    with pytest.raises(CacheError):
        cache.power(2)
    with pytest.raises(CacheError):
        cache.propagate(graph.features, 2)


@pytest.mark.filterwarnings("ignore::scipy.sparse.SparseEfficiencyWarning")
def test_out_of_band_structure_change_raises():
    graph = _random_graph(9)
    cache = PropagationCache(graph)
    u, v = _some_non_edge(graph)
    graph.adjacency[u, v] = 1.0  # structural change, not just a value edit
    with pytest.raises(CacheError):
        cache.normalized


def test_objective_rejects_foreign_or_dirty_cache():
    graph_a = _random_graph(1)
    graph_b = _random_graph(2)
    cache_b = PropagationCache(graph_b)
    with pytest.raises(CacheError):
        DifferenceObjective(graph_a, cache=cache_b)

    dirty = PropagationCache(graph_a)
    dirty.apply(EdgeFlip(*_some_non_edge(graph_a)))
    with pytest.raises(CacheError):
        DifferenceObjective(graph_a, cache=dirty)


def test_has_edge_tracks_flips():
    graph = _random_graph(4)
    cache = PropagationCache(graph)
    u, v = _some_non_edge(graph)
    assert not cache.has_edge(u, v)
    cache.apply(EdgeFlip(u, v))
    assert cache.has_edge(u, v) and cache.has_edge(v, u)
    cache.apply(EdgeFlip(u, v))
    assert not cache.has_edge(u, v)
