"""Meta-gradient correctness: the unrolled inner-training chain must produce
the true derivative of the post-training attack loss w.r.t. the adjacency.

This is the subtlest machinery in the repository (docs/internals.md): each
inner update is expressed as closed-form tensor ops so one first-order
backward yields exact meta-gradients.  Verified here against central finite
differences of the *entire* meta-objective (retrain-then-evaluate)."""

import numpy as np
import pytest

from repro.attacks.metattack import Metattack
from repro.graph import gcn_normalize_dense
from repro.tensor import Tensor
from repro.tensor import functional as F


def meta_objective(adj_dense, features, labels, mask, attack_mask, w_init,
                   inner_steps=5, inner_lr=0.1, momentum=0.9):
    """Scalar attack loss after `inner_steps` of inner GD — pure function."""
    adj_t = Tensor(adj_dense, requires_grad=True)
    normalized = gcn_normalize_dense(adj_t)
    propagated = normalized.matmul(normalized.matmul(Tensor(features)))
    n_classes = int(labels.max()) + 1
    onehot = np.eye(n_classes)[labels]
    rows = np.flatnonzero(mask)
    y_train = Tensor(onehot[rows])
    scale = 1.0 / float(len(rows))
    weights = Tensor(w_init)
    velocity = None
    m_train = propagated[rows]
    for _ in range(inner_steps):
        probs = F.softmax(m_train.matmul(weights), axis=1)
        grad_w = m_train.T.matmul(probs - y_train) * scale
        velocity = grad_w if velocity is None else velocity * momentum + grad_w
        weights = weights - inner_lr * velocity
    loss = F.cross_entropy(propagated.matmul(weights), labels, attack_mask)
    return adj_t, loss


class TestMetaGradient:
    def test_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        n, d, c = 8, 5, 2
        dense = (rng.random((n, n)) > 0.6).astype(float)
        dense = np.triu(dense, 1)
        dense = dense + dense.T
        features = (rng.random((n, d)) > 0.5).astype(float)
        labels = rng.integers(0, c, n)
        mask = np.zeros(n, bool)
        mask[:3] = True
        attack_mask = ~mask
        w_init = rng.normal(0, 0.1, (d, c))

        adj_t, loss = meta_objective(dense, features, labels, mask, attack_mask, w_init)
        loss.backward()
        analytic = adj_t.grad

        eps = 1e-5
        # Spot-check a handful of entries (full FD over n² is slow).
        for (i, j) in [(0, 1), (2, 5), (3, 4), (6, 7), (1, 6)]:
            plus = dense.copy()
            plus[i, j] += eps
            minus = dense.copy()
            minus[i, j] -= eps
            _, lp = meta_objective(plus, features, labels, mask, attack_mask, w_init)
            _, lm = meta_objective(minus, features, labels, mask, attack_mask, w_init)
            numeric = (lp.item() - lm.item()) / (2 * eps)
            assert analytic[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-6), (i, j)

    def test_metattack_uses_equivalent_chain(self, small_cora):
        # The attacker's internal meta-gradient must be finite and non-trivial.
        attacker = Metattack(inner_steps=3, seed=0)
        labels = attacker._pseudo_labels(small_cora)
        n_classes = int(labels.max()) + 1
        d = small_cora.num_features
        limit = np.sqrt(6.0 / (d + n_classes))
        w_init = np.random.default_rng(0).uniform(-limit, limit, (d, n_classes))
        grad, __, loss = attacker._meta_gradient(
            small_cora.dense_adjacency(),
            small_cora.features,
            labels,
            small_cora.train_mask,
            ~small_cora.train_mask,
            w_init,
        )
        assert np.isfinite(grad).all()
        assert np.abs(grad).max() > 0
        assert np.isfinite(loss)
