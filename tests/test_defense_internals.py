"""White-box tests of defender internals: RGCN operators, Pro-GNN loss
pieces, Metattack's self-training, SimPGCN's SSL head."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.attacks.metattack import Metattack, _train_linear_classifier
from repro.defenses.rgcn import GaussianGCNModel, _power_normalize
from repro.defenses.simpgcn import SimPGCNModel, cosine_similarity_matrix
from repro.graph import gcn_normalize
from repro.surrogate import linear_propagation
from repro.tensor import Tensor
from repro.utils.rng import ensure_rng


class TestPowerNormalize:
    def test_half_power_matches_gcn_normalize(self, tiny_graph):
        ours = _power_normalize(tiny_graph.adjacency, 0.5).toarray()
        reference = gcn_normalize(tiny_graph.adjacency).toarray()
        np.testing.assert_allclose(ours, reference, atol=1e-12)

    def test_full_power_rows_sum_appropriately(self, tiny_graph):
        operator = _power_normalize(tiny_graph.adjacency, 1.0)
        # D^-1 (A+I) D^-1 row sums are <= 1 (equality only for isolated
        # self-loop rows).
        sums = np.asarray(operator.sum(axis=1)).ravel()
        assert (sums <= 1.0 + 1e-9).all()


class TestGaussianModel:
    def test_sampling_only_in_training_mode(self, tiny_graph):
        rng = ensure_rng(0)
        model = GaussianGCNModel(4, 2, hidden_dim=8, gamma=1.0, rng=rng)
        operators = (
            _power_normalize(tiny_graph.adjacency, 0.5),
            _power_normalize(tiny_graph.adjacency, 1.0),
        )
        features = Tensor(tiny_graph.features)
        model.eval()
        a = model.forward(operators, features).data
        b = model.forward(operators, features).data
        np.testing.assert_allclose(a, b)  # eval is deterministic
        model.train()
        c = model.forward(operators, features).data
        d = model.forward(operators, features).data
        assert not np.allclose(c, d)  # training samples noise

    def test_kl_cache_positive(self, tiny_graph):
        rng = ensure_rng(0)
        model = GaussianGCNModel(4, 2, hidden_dim=8, gamma=1.0, rng=rng)
        operators = (
            _power_normalize(tiny_graph.adjacency, 0.5),
            _power_normalize(tiny_graph.adjacency, 1.0),
        )
        model.forward(operators, Tensor(tiny_graph.features))
        assert model._kl_cache is not None
        assert model._kl_cache.item() >= 0.0  # KL divergence is non-negative


class TestMetattackInternals:
    def test_linear_classifier_fits_separable_data(self):
        rng = np.random.default_rng(0)
        features = np.vstack([rng.normal(0, 0.2, (20, 4)) + [2, 0, 0, 0],
                              rng.normal(0, 0.2, (20, 4)) + [0, 2, 0, 0]])
        labels = np.repeat([0, 1], 20)
        mask = np.ones(40, dtype=bool)
        weights = _train_linear_classifier(features, labels, mask, 200, 0.5, rng)
        predictions = (features @ weights).argmax(axis=1)
        assert (predictions == labels).mean() >= 0.95

    def test_pseudo_labels_keep_train_labels(self, small_cora):
        attacker = Metattack(seed=0)
        pseudo = attacker._pseudo_labels(small_cora)
        train = small_cora.train_mask
        np.testing.assert_array_equal(pseudo[train], small_cora.labels[train])
        # Pseudo labels on unlabeled nodes are valid class ids.
        assert pseudo.min() >= 0 and pseudo.max() < small_cora.num_classes

    def test_pseudo_labels_better_than_chance(self, small_cora):
        attacker = Metattack(seed=0)
        pseudo = attacker._pseudo_labels(small_cora)
        test = small_cora.test_mask
        accuracy = (pseudo[test] == small_cora.labels[test]).mean()
        assert accuracy > 1.5 / small_cora.num_classes


class TestSimPGCNInternals:
    def test_cosine_matrix_diagonal_ones(self, small_cora):
        matrix = cosine_similarity_matrix(small_cora.features)
        np.testing.assert_allclose(np.diag(matrix), np.ones(small_cora.num_nodes))
        assert (matrix <= 1.0 + 1e-9).all()

    def test_ssl_loss_requires_forward(self, small_cora):
        rng = ensure_rng(0)
        model = SimPGCNModel(small_cora.num_features, 8, small_cora.num_classes, rng)
        pairs = np.array([[0, 1]])
        with pytest.raises(AssertionError, match="forward"):
            model.ssl_loss(pairs, np.array([0.5]))

    def test_ssl_loss_zero_for_perfect_prediction(self, small_cora):
        rng = ensure_rng(0)
        model = SimPGCNModel(small_cora.num_features, 8, small_cora.num_classes, rng)
        adj = gcn_normalize(small_cora.adjacency)
        model.forward((adj, adj), Tensor(small_cora.features))
        pairs = np.array([[0, 0]])  # identical nodes → difference head gives 0
        loss = model.ssl_loss(pairs, np.array([0.0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)


class TestSurrogateFidelity:
    def test_metattack_surrogate_matches_propagation(self, small_cora):
        # The meta-gradient surrogate and repro.surrogate must agree.
        normalized = gcn_normalize(small_cora.adjacency)
        manual = normalized @ (normalized @ small_cora.features)
        library = linear_propagation(small_cora.adjacency, small_cora.features, 2)
        np.testing.assert_allclose(manual, library, atol=1e-10)
