"""End-to-end integration: the full attack → defense pipeline on small graphs.

These tests assert the paper's *qualitative* claims at miniature scale:
attacks hurt, PEEGA beats random, GNAT recovers, and the whole pipeline
stays within budget and determinism guarantees.
"""

import numpy as np
import pytest

from repro.attacks import RandomAttack
from repro.core import GNAT, PEEGA
from repro.defenses import RawGCN
from repro.graph import structural_distance
from repro.nn import TrainConfig


FAST = TrainConfig(epochs=60, patience=60)


def gcn_accuracy(graph, seeds=3):
    return float(
        np.mean(
            [RawGCN(train_config=FAST, seed=s).fit(graph).test_accuracy for s in range(seeds)]
        )
    )


@pytest.fixture(scope="module")
def peega_poisoned(request):
    small_cora = request.getfixturevalue("small_cora")
    return PEEGA(seed=0).attack(small_cora, perturbation_rate=0.15)


class TestAttackPipeline:
    def test_attack_reduces_gcn_accuracy(self, small_cora, peega_poisoned):
        clean = gcn_accuracy(small_cora)
        poisoned = gcn_accuracy(peega_poisoned.poisoned)
        assert poisoned < clean + 0.01, (clean, poisoned)

    def test_peega_beats_random(self, small_cora, peega_poisoned):
        random_poison = RandomAttack(seed=0).attack(
            small_cora, perturbation_rate=0.15
        ).poisoned
        assert gcn_accuracy(peega_poisoned.poisoned) <= gcn_accuracy(random_poison) + 0.02

    def test_budget_verified_end_to_end(self, small_cora, peega_poisoned):
        delta = round(0.15 * small_cora.num_edges)
        spent = structural_distance(
            small_cora.adjacency, peega_poisoned.poisoned.adjacency
        ) + len(peega_poisoned.feature_flips)
        assert spent == delta

    def test_black_box_contract(self):
        # PEEGA's access flags document the paper's Table I row.
        attacker = PEEGA()
        assert not attacker.requires_labels
        assert not attacker.requires_model
        assert not attacker.requires_predictions


class TestDefensePipeline:
    def test_gnat_recovers_over_gcn(self, peega_poisoned):
        poisoned = peega_poisoned.poisoned
        gcn = gcn_accuracy(poisoned)
        gnat = float(
            np.mean(
                [
                    GNAT(train_config=FAST, seed=s).fit(poisoned).test_accuracy
                    for s in range(3)
                ]
            )
        )
        assert gnat >= gcn - 0.03, (gcn, gnat)

    def test_gnat_trains_on_clean_graph_too(self, small_cora):
        result = GNAT(train_config=FAST, seed=0).fit(small_cora)
        assert result.test_accuracy > 1.5 / small_cora.num_classes

    def test_full_pipeline_deterministic(self, small_cora):
        def run():
            poisoned = PEEGA(seed=1).attack(small_cora, perturbation_rate=0.1).poisoned
            return GNAT(train_config=FAST, seed=1).fit(poisoned).test_accuracy

        assert run() == run()
