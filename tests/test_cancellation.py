"""Unit tests for the cooperative-cancellation and snapshot primitives.

Covers :mod:`repro.utils.cancellation` (tokens, deadlines, shutdown flag,
beacons, scopes, poll sites) and :mod:`repro.utils.snapshots` (unit
ordinals, resume handoff, throttling, corruption handling) in isolation —
the integration with attackers/trainers lives in ``test_preemption.py``.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.errors import IntegrityWarning
from repro.utils import cancellation, snapshots
from repro.utils.cancellation import (
    CAUSE_DEADLINE,
    CAUSE_KILL,
    CAUSE_SHUTDOWN,
    Beacon,
    CancelledError,
    CancelToken,
    checkpoint,
    read_beacon,
    request_shutdown,
    reset_shutdown,
    shutdown_requested,
    trial_scope,
)
from repro.utils.snapshots import TrialSnapshotter


def counting_clock(step=1.0, start=0.0):
    state = {"t": start}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


@pytest.fixture(autouse=True)
def clean_shutdown_flag():
    reset_shutdown()
    yield
    reset_shutdown()


class TestCancelToken:
    def test_fresh_token_not_cancelled(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.cause is None
        token.raise_if_cancelled("site")  # no-op

    def test_first_cause_wins(self):
        token = CancelToken()
        assert token.cancel(CAUSE_SHUTDOWN, "first")
        assert not token.cancel(CAUSE_KILL, "second")
        assert token.cause == CAUSE_SHUTDOWN
        with pytest.raises(CancelledError) as info:
            token.raise_if_cancelled("loop")
        assert info.value.cause == CAUSE_SHUTDOWN
        assert info.value.site == "loop"

    def test_deadline_expires_on_injected_clock(self):
        token = CancelToken(deadline_seconds=3, clock=counting_clock())
        token.raise_if_cancelled("a")  # t=2 on check (t=1 at construction)
        with pytest.raises(CancelledError) as info:
            while True:
                token.raise_if_cancelled("b")
        assert info.value.cause == CAUSE_DEADLINE
        assert token.cancelled

    def test_remaining_counts_down(self):
        token = CancelToken(deadline_seconds=10, clock=counting_clock())
        first = token.remaining()
        second = token.remaining()
        assert first is not None and second is not None
        assert second < first

    def test_parent_cancellation_reaches_child(self):
        parent = CancelToken()
        child = CancelToken(parent=parent)
        assert not child.cancelled
        parent.cancel(CAUSE_KILL, "supervisor kill")
        assert child.cancelled
        assert child.cause == CAUSE_KILL
        with pytest.raises(CancelledError) as info:
            child.raise_if_cancelled("x")
        assert info.value.cause == CAUSE_KILL

    def test_cancelled_error_is_not_an_exception(self):
        # ``except Exception`` boundaries (the trial supervisor, defensive
        # library code) must never absorb a cancellation.
        assert not issubclass(CancelledError, Exception)
        assert issubclass(CancelledError, BaseException)


class TestShutdownFlag:
    def test_request_is_idempotent_and_observable(self):
        assert not shutdown_requested()
        assert request_shutdown("operator")
        assert not request_shutdown("again")  # second request reports False
        assert shutdown_requested()
        reset_shutdown()
        assert not shutdown_requested()

    def test_checkpoint_raises_on_global_shutdown(self):
        request_shutdown("test")
        with pytest.raises(CancelledError) as info:
            checkpoint("anywhere")
        assert info.value.cause == CAUSE_SHUTDOWN

    def test_checkpoint_without_scope_is_cheap_noop(self):
        checkpoint("free-running")  # no scope, no shutdown: returns


class TestScopes:
    def test_checkpoint_polls_scope_token(self):
        token = CancelToken()
        token.cancel(CAUSE_KILL, "kill it")
        with trial_scope(token=token):
            with pytest.raises(CancelledError) as info:
                checkpoint("loop")
        assert info.value.cause == CAUSE_KILL

    def test_scope_restored_after_exit(self):
        token = CancelToken()
        with trial_scope(token=token):
            assert cancellation.current_token() is token
        assert cancellation.current_token() is None

    def test_inner_scope_inherits_unspecified_fields(self, tmp_path):
        sink = TrialSnapshotter(tmp_path / "snap.npz")
        outer = CancelToken(name="outer")
        inner = CancelToken(name="inner")
        with trial_scope(token=outer, sink=sink):
            with trial_scope(token=inner):
                assert cancellation.current_token() is inner
                assert cancellation.current_sink() is sink

    def test_scope_is_thread_local(self):
        token = CancelToken()
        seen = {}

        def other_thread():
            seen["token"] = cancellation.current_token()

        with trial_scope(token=token):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["token"] is None

    def test_explicit_inherit_carries_scope_across_threads(self, tmp_path):
        # The supervisor hands its captured scope to the trial thread.
        sink = TrialSnapshotter(tmp_path / "snap.npz")
        token = CancelToken()
        seen = {}
        with trial_scope(token=token, sink=sink):
            captured = cancellation.current_scope()

        def worker_body():
            with trial_scope(inherit=captured):
                seen["token"] = cancellation.current_token()
                seen["sink"] = cancellation.current_sink()

        worker = threading.Thread(target=worker_body)
        worker.start()
        worker.join()
        assert seen["token"] is token
        assert seen["sink"] is sink


class TestBeacon:
    def test_beat_writes_readable_record(self, tmp_path):
        path = tmp_path / "beacon.json"
        beacon = Beacon(path, task_index=7, incarnation=2, interval=1.0,
                        clock=counting_clock())
        beacon.beat("site-a")
        record = read_beacon(path)
        assert record is not None
        assert record["task"] == 7
        assert record["incarnation"] == 2
        assert record["count"] == 1
        assert record["site"] == "site-a"
        assert record["pid"] > 0

    def test_beats_throttled_below_quarter_interval(self, tmp_path):
        path = tmp_path / "beacon.json"
        # Clock advances 0.1 per call; interval 1.0 → flush every >= 0.25.
        beacon = Beacon(path, task_index=0, interval=1.0,
                        clock=counting_clock(step=0.1))
        for _ in range(20):
            beacon.beat("s")
        record = read_beacon(path)
        # 20 beats over 2.0 clock-seconds flush at most every interval/4
        # (0.25s) — far fewer writes than beats, but strictly monotone.
        assert 1 <= record["count"] < 20

    def test_read_beacon_missing_or_corrupt_returns_none(self, tmp_path):
        assert read_beacon(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_beacon(bad) is None

    def test_checkpoint_beats_the_scope_beacon(self, tmp_path):
        path = tmp_path / "beacon.json"
        beacon = Beacon(path, task_index=3, interval=0.0, clock=counting_clock())
        with trial_scope(beacon=beacon):
            checkpoint("epoch-loop")
        record = read_beacon(path)
        assert record is not None and record["site"] == "epoch-loop"


class TestTrialSnapshotter:
    def _builder(self, step):
        return lambda: (
            {"state": np.arange(step, dtype=np.int64)},
            {"step": step, "extra": float(step) / 3.0},
        )

    def test_round_trip_restores_arrays_and_meta(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        unit = sink.begin_unit("fit")
        unit.offer(self._builder(5), final=True)

        resumed = TrialSnapshotter(path, interval=0)
        assert resumed.start_attempt(3) == 0  # recorded attempt wins
        assert resumed.resuming()
        again = resumed.begin_unit("fit")
        arrays, meta = again.resume_state()
        np.testing.assert_array_equal(arrays["state"], np.arange(5))
        assert meta["step"] == 5
        assert meta["extra"] == 5.0 / 3.0  # JSON float repr round-trips

    def test_unit_ordinals_mute_and_match(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        sink.begin_unit("attack")  # ordinal 0, completes
        second = sink.begin_unit("fit")  # ordinal 1, interrupted here
        second.offer(self._builder(2), final=True)

        resumed = TrialSnapshotter(path, interval=0)
        resumed.start_attempt(0)
        first = resumed.begin_unit("attack")
        assert first.resume_state() is None
        # A muted (already-completed) unit must not clobber the snapshot.
        first.offer(self._builder(99), final=True)
        target = resumed.begin_unit("fit")
        arrays, meta = target.resume_state()
        assert meta["step"] == 2

    def test_kind_mismatch_restarts_fresh(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        sink.begin_unit("attack:GRBCD").offer(self._builder(4), final=True)

        resumed = TrialSnapshotter(path, interval=0)
        resumed.start_attempt(0)
        # Degraded retry changed the trial structure: same ordinal,
        # different kind → fresh start, not mismatched state.
        unit = resumed.begin_unit("attack:PRBCD")
        assert unit.resume_state() is None

    def test_throttling_skips_interior_offers(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=10.0, clock=counting_clock())
        sink.start_attempt(0)
        unit = sink.begin_unit("fit")
        unit.offer(self._builder(1))
        unit.offer(self._builder(2))  # throttled: within 10 clock-seconds
        resumed = TrialSnapshotter(path, interval=0)
        resumed.start_attempt(0)
        _, meta = resumed.begin_unit("fit").resume_state()
        assert meta["step"] == 1

    def test_final_offer_ignores_throttle(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=10.0, clock=counting_clock())
        sink.start_attempt(0)
        unit = sink.begin_unit("fit")
        unit.offer(self._builder(1))
        unit.offer(self._builder(2), final=True)
        resumed = TrialSnapshotter(path, interval=0)
        resumed.start_attempt(0)
        _, meta = resumed.begin_unit("fit").resume_state()
        assert meta["step"] == 2

    def test_discard_removes_archive(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        sink.begin_unit("fit").offer(self._builder(1), final=True)
        assert path.exists()
        sink.discard()
        assert not path.exists()
        sink.discard()  # idempotent

    def test_corrupt_snapshot_discarded_with_warning(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        sink.begin_unit("fit").offer(self._builder(1), final=True)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

        resumed = TrialSnapshotter(path, interval=0)
        with pytest.warns(IntegrityWarning):
            assert resumed.start_attempt(4) == 4  # falls back to default
        assert not resumed.resuming()
        assert not path.exists()

    def test_snapshot_progress(self, tmp_path):
        path = tmp_path / "snap.npz"
        assert snapshots.snapshot_progress(path) is None
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        sink.begin_unit("attack")
        sink.begin_unit("fit").offer(self._builder(6), final=True)
        assert snapshots.snapshot_progress(path) == (1, 6)

    def test_checkpoint_offers_to_scope_unit(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=0)
        sink.start_attempt(0)
        with trial_scope(sink=sink):
            unit = snapshots.begin_unit("fit")
            checkpoint("trainer", unit=unit, state=self._builder(3))
        assert snapshots.snapshot_progress(path) == (0, 3)

    def test_checkpoint_final_snapshot_on_cancellation(self, tmp_path):
        path = tmp_path / "snap.npz"
        sink = TrialSnapshotter(path, interval=1e9, clock=counting_clock())
        sink.start_attempt(0)
        token = CancelToken()
        token.cancel(CAUSE_SHUTDOWN, "stop")
        with trial_scope(token=token, sink=sink):
            unit = snapshots.begin_unit("fit")
            with pytest.raises(CancelledError):
                checkpoint("trainer", unit=unit, state=self._builder(8))
        # Despite the huge throttle interval, the cancellation forced a
        # final write before raising.
        assert snapshots.snapshot_progress(path) == (0, 8)


class TestPackHelpers:
    def test_pack_unpack_round_trip_in_order(self):
        arrays = {}
        items = [np.arange(3), np.eye(2), np.asarray([7.5])]
        snapshots.pack_list(arrays, "w_", items)
        out = snapshots.unpack_list(arrays, "w_")
        assert len(out) == 3
        for original, restored in zip(items, out):
            np.testing.assert_array_equal(np.asarray(original), restored)

    def test_generator_state_round_trip_is_json_safe(self):
        rng = np.random.default_rng(123)
        rng.random(17)
        state = snapshots.generator_state(rng)
        json.loads(json.dumps(state))  # JSON-serializable end to end
        clone = np.random.default_rng(0)
        snapshots.restore_generator(clone, json.loads(json.dumps(state)))
        np.testing.assert_array_equal(rng.random(5), clone.random(5))
