"""Perturbation application and L0 distance accounting."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    EdgeFlip,
    FeatureFlip,
    apply_perturbations,
    feature_distance,
    flip_edges,
    flip_features,
    structural_distance,
)


class TestEdgeFlip:
    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            EdgeFlip(2, 2)

    def test_add_then_remove_roundtrip(self, tiny_graph):
        once = apply_perturbations(tiny_graph, [EdgeFlip(0, 5)])
        assert once.has_edge(0, 5)
        twice = apply_perturbations(once, [EdgeFlip(0, 5)])
        assert not twice.has_edge(0, 5)
        assert structural_distance(tiny_graph.adjacency, twice.adjacency) == 0

    def test_deletion(self, tiny_graph):
        out = apply_perturbations(tiny_graph, [EdgeFlip(2, 3)])
        assert not out.has_edge(2, 3)
        assert out.num_edges == tiny_graph.num_edges - 1

    def test_symmetry_preserved(self, tiny_graph):
        out = apply_perturbations(tiny_graph, [EdgeFlip(1, 4)])
        diff = out.adjacency - out.adjacency.T
        assert diff.nnz == 0

    def test_original_untouched(self, tiny_graph):
        before = tiny_graph.adjacency.copy()
        apply_perturbations(tiny_graph, [EdgeFlip(0, 5)])
        assert (tiny_graph.adjacency != before).nnz == 0


class TestFeatureFlip:
    def test_toggles_bit(self, tiny_graph):
        out = apply_perturbations(tiny_graph, [FeatureFlip(0, 0)])
        assert out.features[0, 0] == 0.0
        out2 = apply_perturbations(out, [FeatureFlip(0, 0)])
        assert out2.features[0, 0] == 1.0

    def test_cost_is_one(self):
        assert FeatureFlip(0, 0).cost == 1.0
        assert EdgeFlip(0, 1).cost == 1.0


class TestDistances:
    def test_structural_counts_undirected(self, tiny_graph):
        poisoned = apply_perturbations(
            tiny_graph, [EdgeFlip(0, 5), EdgeFlip(2, 3), EdgeFlip(1, 4)]
        )
        assert structural_distance(tiny_graph.adjacency, poisoned.adjacency) == 3

    def test_feature_distance(self, tiny_graph):
        poisoned = apply_perturbations(
            tiny_graph, [FeatureFlip(0, 0), FeatureFlip(3, 1)]
        )
        assert feature_distance(tiny_graph.features, poisoned.features) == 2

    def test_identity_distances_zero(self, tiny_graph):
        assert structural_distance(tiny_graph.adjacency, tiny_graph.adjacency) == 0
        assert feature_distance(tiny_graph.features, tiny_graph.features) == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=0,
            max_size=10,
            unique_by=lambda p: (min(p), max(p)),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_distance_equals_flip_count(self, pairs):
        n = 6
        base = sp.csr_matrix((n, n))
        flips = [EdgeFlip(min(u, v), max(u, v)) for u, v in pairs]
        flipped = flip_edges(base, flips)
        assert structural_distance(base, flipped) == len(flips)

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 3)),
            min_size=0,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_feature_distance_equals_flip_count(self, locations):
        base = np.zeros((5, 4))
        flips = [FeatureFlip(node, dim) for node, dim in locations]
        flipped = flip_features(base, flips)
        assert feature_distance(base, flipped) == len(flips)
