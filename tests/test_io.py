"""Serialization round-trips for graphs and attack results."""

import numpy as np
import pytest

from repro.core import PEEGA
from repro.io import (
    SerializationError,
    load_attack_result,
    load_graph,
    save_attack_result,
    save_graph,
)


class TestGraphRoundtrip:
    def test_full_roundtrip(self, small_cora, tmp_path):
        path = tmp_path / "graph.npz"
        save_graph(small_cora, path)
        loaded = load_graph(path)
        assert (loaded.adjacency != small_cora.adjacency).nnz == 0
        np.testing.assert_array_equal(loaded.features, small_cora.features)
        np.testing.assert_array_equal(loaded.labels, small_cora.labels)
        np.testing.assert_array_equal(loaded.train_mask, small_cora.train_mask)
        assert loaded.name == small_cora.name

    def test_unlabeled_graph_roundtrip(self, small_cora, tmp_path):
        from dataclasses import replace

        bare = replace(
            small_cora, labels=None, train_mask=None, val_mask=None, test_mask=None
        )
        path = tmp_path / "bare.npz"
        save_graph(bare, path)
        loaded = load_graph(path)
        assert loaded.labels is None
        assert loaded.train_mask is None

    def test_wrong_kind_rejected(self, small_cora, tmp_path):
        path = tmp_path / "attack.npz"
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.02)
        save_attack_result(result, path)
        with pytest.raises(SerializationError, match="expected 'graph'"):
            load_graph(path)

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(SerializationError, match="no meta"):
            load_graph(path)


class TestAttackResultRoundtrip:
    def test_full_roundtrip(self, small_cora, tmp_path):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.05)
        path = tmp_path / "attack.npz"
        save_attack_result(result, path)
        loaded = load_attack_result(path)
        assert loaded.edge_flips == result.edge_flips
        assert loaded.feature_flips == result.feature_flips
        assert loaded.budget.total == result.budget.total
        assert (loaded.poisoned.adjacency != result.poisoned.adjacency).nnz == 0
        np.testing.assert_allclose(loaded.objective_trace, result.objective_trace)
        loaded.verify_budget()  # invariants survive the roundtrip

    def test_empty_attack_roundtrip(self, small_cora, tmp_path):
        result = PEEGA(seed=0).attack(small_cora, perturbation_rate=0.0)
        path = tmp_path / "noop.npz"
        save_attack_result(result, path)
        loaded = load_attack_result(path)
        assert loaded.edge_flips == []
        assert loaded.feature_flips == []
