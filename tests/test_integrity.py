"""Artifact integrity: digest verification, quarantine-and-regenerate
recovery, journal corruption tolerance, and graph contract validation.

The acceptance contract (docs/data_integrity.md): corrupting any byte of a
cached poison archive or an interior journal record, then resuming — at
``--jobs 1`` or ``--jobs 2`` — yields a final table bit-identical to an
uncorrupted serial run, with the damaged archive quarantined as
``*.corrupt`` instead of crashing the sweep.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import (
    BudgetWarning,
    ContractWarning,
    GraphContractError,
    IntegrityWarning,
)
from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    SweepCheckpoint,
    TrialPolicy,
    TrialSupervisor,
    make_executor,
)
from repro.graph import Graph, check_graph, repair_graph, validate_graph
from repro.io import (
    CorruptArtifactError,
    SerializationError,
    array_digest,
    journal_record_digest,
    load_attack_result,
    load_graph,
    save_attack_result,
    save_graph,
)
from repro.utils import faults
from repro.utils.faults import FaultInjector

CONFIG = ExperimentScale(scale=0.04, seeds=2, rate=0.1)
ATTACKERS = ["PEEGA"]
DEFENDERS = ["GCN"]


# ---------------------------------------------------------------------------
# Digest primitives


class TestDigests:
    def test_array_digest_sensitive_to_value_shape_dtype(self):
        a = np.arange(6, dtype=np.float64)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a.reshape(2, 3))
        assert array_digest(a) != array_digest(a.astype(np.float32))
        b = a.copy()
        b[3] += 1e-12
        assert array_digest(a) != array_digest(b)

    def test_journal_record_digest_ignores_key_order_and_self(self):
        record = {"kind": "cell", "dataset": "cora", "values": [0.5, 0.6]}
        digest = journal_record_digest(record)
        reordered = {"values": [0.5, 0.6], "dataset": "cora", "kind": "cell"}
        assert journal_record_digest(reordered) == digest
        stamped = dict(record, sha256=digest)
        assert journal_record_digest(stamped) == digest
        assert journal_record_digest({**record, "values": [0.5]}) != digest


# ---------------------------------------------------------------------------
# Archive corruption fuzzing


def _flip_byte(path, offset):
    raw = bytearray(path.read_bytes())
    raw[offset] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestArchiveFuzz:
    def test_graph_round_trip_verifies(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(tiny_graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(
            loaded.adjacency.toarray(), tiny_graph.adjacency.toarray()
        )
        np.testing.assert_array_equal(loaded.features, tiny_graph.features)

    def test_bit_flip_never_yields_wrong_graph(self, tiny_graph, tmp_path):
        """Fuzz single-byte flips across the whole file.

        Some zip bytes are redundant metadata (local-header dates, etc.) —
        a flip there is harmless and the archive still verifies.  The
        contract is *no silent wrong graph*: every flip either raises
        :class:`CorruptArtifactError` or loads bytes identical to what was
        saved.  Flips inside array data must always raise.
        """
        path = tmp_path / "g.npz"
        save_graph(tiny_graph, path)
        pristine = path.read_bytes()
        reference = load_graph(path)
        detected = 0
        for offset in range(0, len(pristine), 37):
            _flip_byte(path, offset)
            try:
                loaded = load_graph(path)
            except (CorruptArtifactError, SerializationError):
                detected += 1
            else:
                np.testing.assert_array_equal(
                    loaded.adjacency.toarray(), reference.adjacency.toarray()
                )
                np.testing.assert_array_equal(loaded.features, reference.features)
            finally:
                path.write_bytes(pristine)
        assert detected > 0, "no sampled flip hit a verified region"

    def test_truncation_raises_corrupt(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(tiny_graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptArtifactError):
            load_graph(path)

    def test_deleted_array_raises_corrupt(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(tiny_graph, path)
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        del data["features"]
        np.savez(path, **data)
        with pytest.raises(CorruptArtifactError, match="missing from archive"):
            load_graph(path)

    def test_deleted_meta_raises_serialization_error(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(tiny_graph, path)
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        del data["meta"]
        np.savez(path, **data)
        with pytest.raises(SerializationError, match="no meta"):
            load_graph(path)

    def test_tampered_array_fails_digest(self, tiny_graph, tmp_path):
        # Valid zip, valid arrays, wrong bytes: only the digest catches it.
        path = tmp_path / "g.npz"
        save_graph(tiny_graph, path)
        with np.load(path) as archive:
            data = {key: archive[key] for key in archive.files}
        data["features"] = data["features"].copy()
        data["features"][0, 0] += 1.0
        np.savez(path, **data)
        with pytest.raises(CorruptArtifactError, match="SHA-256"):
            load_graph(path)

    def test_attack_archive_bit_flip_raises_corrupt(self, tiny_graph, tmp_path):
        from repro.attacks import RandomAttack

        import struct
        import zipfile

        result = RandomAttack(seed=0).attack(tiny_graph, perturbation_rate=0.2)
        path = tmp_path / "atk.npz"
        save_attack_result(result, path)
        assert load_attack_result(path).num_perturbations == result.num_perturbations
        # Flip a byte in the middle of a digest-protected array member.  A
        # raw file-midpoint flip can land in zip bookkeeping or the
        # (unprotected) runtime metadata and slip through — the archive
        # embeds wall-clock runtime, so the midpoint offset even varies
        # run to run.
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo("pois_features.npy")
        with open(path, "rb") as fh:
            fh.seek(info.header_offset + 26)
            name_len, extra_len = struct.unpack("<HH", fh.read(4))
        data_start = info.header_offset + 30 + name_len + extra_len
        _flip_byte(path, data_start + info.file_size // 2)
        with pytest.raises(CorruptArtifactError):
            load_attack_result(path)

    def test_legacy_v1_archive_loads_with_warning(self, tiny_graph, tmp_path):
        from repro.io import _graph_payload

        path = tmp_path / "v1.npz"
        payload = _graph_payload(tiny_graph)
        payload["meta"] = np.array(json.dumps({"kind": "graph", "name": "tiny", "version": 1}))
        np.savez(path, **payload)
        with pytest.warns(IntegrityWarning, match="unverified legacy archive"):
            loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.features, tiny_graph.features)

    def test_future_version_rejected(self, tiny_graph, tmp_path):
        from repro.io import _graph_payload

        path = tmp_path / "v99.npz"
        payload = _graph_payload(tiny_graph)
        payload["meta"] = np.array(json.dumps({"kind": "graph", "version": 99}))
        np.savez(path, **payload)
        with pytest.raises(SerializationError, match="newer than supported"):
            load_graph(path)


# ---------------------------------------------------------------------------
# Graph contract validation


def _graph(adjacency, **kwargs):
    n = adjacency.shape[0]
    defaults = dict(features=np.eye(n), name="contract", validate=False)
    defaults.update(kwargs)
    return Graph(adjacency=sp.csr_matrix(adjacency), **defaults)


class TestContractValidation:
    def test_clean_graph_has_no_violations(self, tiny_graph):
        assert check_graph(tiny_graph) == []
        assert validate_graph(tiny_graph, policy="strict") is tiny_graph

    def test_self_loop_detected_and_repaired(self):
        adj = np.array([[1.0, 1.0], [1.0, 0.0]])
        graph = _graph(adj)
        checks = {v.check for v in check_graph(graph)}
        assert "self_loops" in checks
        with pytest.raises(GraphContractError, match="self_loops"):
            validate_graph(graph, policy="strict")
        with pytest.warns(ContractWarning, match="self_loops"):
            fixed = validate_graph(graph, policy="repair")
        assert fixed.adjacency.diagonal().sum() == 0

    def test_asymmetry_detected_and_repaired(self):
        adj = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        graph = _graph(adj)
        assert any(v.check == "symmetry" for v in check_graph(graph))
        with pytest.warns(ContractWarning, match="symmetry"):
            fixed = validate_graph(graph, policy="repair")
        out = fixed.adjacency.toarray()
        np.testing.assert_array_equal(out, out.T)
        assert out[1, 0] == 1.0

    def test_nonbinary_weights_detected_and_repaired(self):
        adj = np.array([[0.0, 0.4], [0.4, 0.0]])
        graph = _graph(adj)
        assert any(v.check == "binary_weights" for v in check_graph(graph))
        with pytest.warns(ContractWarning, match="binary_weights"):
            fixed = validate_graph(graph, policy="repair")
        assert set(np.unique(fixed.adjacency.toarray())) <= {0.0, 1.0}

    def test_nonfinite_features_detected_and_zeroed(self):
        adj = np.array([[0.0, 1.0], [1.0, 0.0]])
        features = np.array([[1.0, np.nan], [0.0, 1.0]])
        graph = _graph(adj, features=features)
        assert any(v.check == "finite_features" for v in check_graph(graph))
        with pytest.warns(ContractWarning, match="finite_features"):
            fixed = validate_graph(graph, policy="repair")
        np.testing.assert_array_equal(fixed.features[0], [0.0, 0.0])
        np.testing.assert_array_equal(fixed.features[1], [0.0, 1.0])

    def test_mask_overlap_detected_and_disjointed(self):
        adj = np.array([[0.0, 1.0], [1.0, 0.0]])
        train = np.array([True, False])
        val = np.array([True, True])  # overlaps train at node 0
        graph = _graph(adj, labels=np.array([0, 1]), train_mask=train, val_mask=val)
        assert any(v.check == "mask_overlap" for v in check_graph(graph))
        with pytest.warns(ContractWarning, match="mask_overlap"):
            fixed = validate_graph(graph, policy="repair")
        assert not (fixed.train_mask & fixed.val_mask).any()
        np.testing.assert_array_equal(fixed.train_mask, train)  # earlier mask wins

    def test_bad_label_shape_is_unrepairable(self):
        adj = np.array([[0.0, 1.0], [1.0, 0.0]])
        graph = _graph(adj, labels=np.array([0, 1, 2]))
        with pytest.raises(GraphContractError, match="label_range"):
            validate_graph(graph, policy="repair")

    def test_malformed_csr_is_unrepairable(self):
        adjacency = sp.csr_matrix((2, 2))
        adjacency.indices = np.array([5], dtype=adjacency.indices.dtype)
        adjacency.data = np.array([1.0])
        adjacency.indptr = np.array([0, 1, 1], dtype=adjacency.indptr.dtype)
        graph = _graph(adjacency)
        violations = check_graph(graph)
        assert any(v.check == "csr_form" and not v.repairable for v in violations)
        with pytest.raises(GraphContractError, match="csr_form"):
            validate_graph(graph, policy="repair")

    def test_off_trusts_anything(self):
        adj = np.array([[1.0, 0.4], [0.0, 0.0]])
        graph = _graph(adj)
        assert validate_graph(graph, policy="off") is graph

    def test_unknown_policy_rejected(self, tiny_graph):
        with pytest.raises(GraphContractError, match="unknown validation policy"):
            validate_graph(tiny_graph, policy="lenient")

    def test_repair_graph_reports_what_it_fixed(self):
        adj = np.array([[1.0, 0.4], [0.4, 0.0]])
        graph = _graph(adj)
        fixed, repaired = repair_graph(graph)
        assert {v.check for v in repaired} == {"self_loops", "binary_weights"}
        assert check_graph(fixed) == []

    def test_isolated_nodes_are_not_violations(self):
        adj = np.zeros((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0  # node 2 isolated
        assert check_graph(_graph(adj)) == []


# ---------------------------------------------------------------------------
# Budget clamping


class TestBudgetClamp:
    def test_infeasible_budget_clamped_with_warning(self, tiny_graph):
        from repro.attacks import RandomAttack
        from repro.attacks.base import AttackBudget, feasible_budget_ceiling

        ceiling = feasible_budget_ceiling(tiny_graph)
        with pytest.warns(BudgetWarning, match="feasible flip ceiling"):
            result = RandomAttack(seed=0).attack(
                tiny_graph, budget=AttackBudget(total=ceiling * 10)
            )
        assert result.budget.total == ceiling
        result.verify_budget()

    def test_feasible_budget_untouched(self, tiny_graph):
        from repro.attacks import RandomAttack
        from repro.attacks.base import AttackBudget

        result = RandomAttack(seed=0).attack(tiny_graph, budget=AttackBudget(total=2))
        assert result.budget.total == 2

    def test_targeted_attacker_infeasible_budget_clamps_not_raises(self, tiny_graph):
        # Regression: targeted attackers (Nettack) go through the same
        # clamp path as global ones — an over-ceiling budget must warn and
        # clamp, never raise.
        from repro.attacks import Nettack
        from repro.attacks.base import AttackBudget, feasible_budget_ceiling

        ceiling = feasible_budget_ceiling(tiny_graph)
        with pytest.warns(BudgetWarning, match="feasible flip ceiling"):
            result = Nettack(target=0, seed=0).attack(
                tiny_graph, budget=AttackBudget(total=ceiling * 4)
            )
        assert result.budget.total == ceiling
        result.verify_budget()


# ---------------------------------------------------------------------------
# Quarantine-and-regenerate + corrupt-journal recovery (the tentpole contract)


def run_sweep(directory, jobs=1, resume=False):
    checkpoint = SweepCheckpoint(directory, resume=resume)
    runner = ExperimentRunner(
        CONFIG,
        supervisor=TrialSupervisor(TrialPolicy(max_attempts=2)),
        checkpoint=checkpoint,
        executor=make_executor(jobs),
    )
    table = runner.accuracy_table("cora", attackers=ATTACKERS, defenders=DEFENDERS)
    return table, checkpoint


def cells_of(table):
    return {
        (row, name): (cell.values if cell is not None else None)
        for row, columns in table.rows.items()
        for name, cell in columns.items()
    }


def _tamper_cell_record(journal_path, attacker):
    """Corrupt the journal record of ``attacker``'s cell: still valid JSON,
    wrong values — only the digest can catch it."""
    lines = journal_path.read_text().splitlines()
    for i, line in enumerate(lines):
        record = json.loads(line)
        if record.get("kind") == "cell" and record.get("attacker") == attacker:
            record["values"][0] += 0.25  # silent data corruption
            lines[i] = json.dumps(record)  # keeps the stale sha256
            break
    else:
        raise AssertionError(f"no cell record for {attacker}")
    journal_path.write_text("\n".join(lines) + "\n")


def _poison_archives(directory):
    return sorted(directory.glob("poison_*.npz"))


@pytest.fixture(scope="module")
def reference_sweep(tmp_path_factory):
    directory = tmp_path_factory.mktemp("reference")
    table, _ = run_sweep(directory)
    assert not table.failures
    assert _poison_archives(directory), "sweep must persist a poison archive"
    return directory, cells_of(table)


class TestQuarantineAndRegenerate:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_corrupt_poison_archive_is_quarantined_and_regenerated(
        self, reference_sweep, tmp_path, jobs
    ):
        reference_dir, reference_cells = reference_sweep
        workdir = tmp_path / f"jobs{jobs}"
        shutil.copytree(reference_dir, workdir)
        poison = _poison_archives(workdir)[0]
        _flip_byte(poison, poison.stat().st_size // 2)
        # The poisoned row's cell must re-run for the archive to be read at
        # all — corrupt its journal record too (the acceptance scenario:
        # interior record + archive both damaged).
        _tamper_cell_record(workdir / "journal.jsonl", ATTACKERS[0])

        with pytest.warns(IntegrityWarning):
            table, checkpoint = run_sweep(workdir, jobs=jobs, resume=True)

        assert cells_of(table) == reference_cells
        assert not table.failures
        assert checkpoint.corrupt_records, "tampered record must be reported"
        quarantined = list(workdir.glob("*.corrupt"))
        assert quarantined, "corrupt archive must be renamed *.corrupt"
        assert not poison.exists() or poison in _poison_archives(workdir)
        # The regenerated archive must verify cleanly.
        regenerated = _poison_archives(workdir)
        assert regenerated
        load_attack_result(regenerated[0])

    def test_corrupt_interior_journal_record_reruns_cell(
        self, reference_sweep, tmp_path
    ):
        reference_dir, reference_cells = reference_sweep
        workdir = tmp_path / "journal-only"
        shutil.copytree(reference_dir, workdir)
        # The Clean cell completes before the attacked cell, so its record is
        # interior; the poison archive stays valid.
        _tamper_cell_record(workdir / "journal.jsonl", "Clean")

        with pytest.warns(IntegrityWarning, match="digest mismatch"):
            table, checkpoint = run_sweep(workdir, resume=True)

        assert cells_of(table) == reference_cells
        assert checkpoint.corrupt_records
        assert not list(workdir.glob("*.corrupt"))  # archive untouched

    def test_torn_trailing_line_is_silently_ignored(self, reference_sweep, tmp_path):
        reference_dir, reference_cells = reference_sweep
        workdir = tmp_path / "torn"
        shutil.copytree(reference_dir, workdir)
        journal = workdir / "journal.jsonl"
        raw = journal.read_bytes().rstrip(b"\n")
        journal.write_bytes(raw[: len(raw) - len(raw.splitlines()[-1]) // 2])

        table, checkpoint = run_sweep(workdir, resume=True)
        assert cells_of(table) == reference_cells
        assert checkpoint.corrupt_records == []  # a torn tail is normal

    def test_legacy_journal_records_accepted(self, reference_sweep, tmp_path):
        reference_dir, reference_cells = reference_sweep
        workdir = tmp_path / "legacy"
        shutil.copytree(reference_dir, workdir)
        journal = workdir / "journal.jsonl"
        lines = []
        for line in journal.read_text().splitlines():
            record = json.loads(line)
            record.pop("sha256", None)
            lines.append(json.dumps(record))
        journal.write_text("\n".join(lines) + "\n")

        with pytest.warns(IntegrityWarning, match="legacy journal records"):
            table, _ = run_sweep(workdir, resume=True)
        assert cells_of(table) == reference_cells


class TestFaultInjectedBitflips:
    def test_poison_archive_bitflip_then_resume(self, reference_sweep, tmp_path):
        """bitflip at the poison_archive site corrupts the written archive;
        the next resume quarantines and regenerates it."""
        reference_dir, reference_cells = reference_sweep
        workdir = tmp_path / "injected"
        injector = FaultInjector(FaultInjector.parse("poison_archive:bitflip:times=1"))
        with faults.active(injector):
            table, _ = run_sweep(workdir)
        assert cells_of(table) == reference_cells  # in-memory result unharmed
        assert any(e.site == "poison_archive" for e in injector.events)
        poison = _poison_archives(workdir)[0]
        with pytest.raises(CorruptArtifactError):
            load_attack_result(poison)

        _tamper_cell_record(workdir / "journal.jsonl", ATTACKERS[0])
        with pytest.warns(IntegrityWarning):
            table2, checkpoint = run_sweep(workdir, resume=True)
        assert cells_of(table2) == reference_cells
        assert list(workdir.glob("*.corrupt"))
        assert checkpoint.quarantines

    def test_journal_bitflip_then_resume(self, reference_sweep, tmp_path):
        reference_dir, reference_cells = reference_sweep
        workdir = tmp_path / "journal-injected"
        injector = FaultInjector(FaultInjector.parse("journal:bitflip:times=1"))
        with faults.active(injector):
            table, _ = run_sweep(workdir)
        assert cells_of(table) == reference_cells
        assert any(e.site == "journal" for e in injector.events)

        table2, checkpoint = run_sweep(workdir, resume=True)
        assert cells_of(table2) == reference_cells
