"""Attack framework plumbing: budgets, results, verification."""

import numpy as np
import pytest

from repro.attacks import AttackBudget, RandomAttack, resolve_budget
from repro.attacks.base import AttackResult
from repro.errors import BudgetError
from repro.graph import EdgeFlip, FeatureFlip, apply_perturbations


class TestAttackBudget:
    def test_cost_of(self):
        budget = AttackBudget(total=10, feature_cost=0.5)
        assert budget.cost_of(EdgeFlip(0, 1)) == 1.0
        assert budget.cost_of(FeatureFlip(0, 0)) == 0.5

    def test_validation(self):
        with pytest.raises(BudgetError):
            AttackBudget(total=-1)
        with pytest.raises(BudgetError):
            AttackBudget(total=5, feature_cost=0.0)


class TestResolveBudget:
    def test_from_rate(self, tiny_graph):
        budget = resolve_budget(tiny_graph, perturbation_rate=0.5)
        assert budget.total == round(0.5 * tiny_graph.num_edges)

    def test_explicit_passthrough(self, tiny_graph):
        explicit = AttackBudget(total=3)
        assert resolve_budget(tiny_graph, budget=explicit) is explicit

    def test_error_paths(self, tiny_graph):
        with pytest.raises(BudgetError):
            resolve_budget(tiny_graph)
        with pytest.raises(BudgetError):
            resolve_budget(tiny_graph, perturbation_rate=-0.1)
        with pytest.raises(BudgetError):
            resolve_budget(
                tiny_graph, budget=AttackBudget(total=1), perturbation_rate=0.1
            )


class TestAttackResult:
    def test_spent_accounting(self, tiny_graph):
        result = AttackResult(
            original=tiny_graph,
            poisoned=tiny_graph,
            budget=AttackBudget(total=10, feature_cost=0.5),
            edge_flips=[EdgeFlip(0, 5)],
            feature_flips=[FeatureFlip(0, 0), FeatureFlip(1, 1)],
        )
        assert result.spent == 1.0 + 2 * 0.5
        assert result.num_perturbations == 3

    def test_verify_budget_catches_violation(self, tiny_graph):
        overspent = apply_perturbations(
            tiny_graph, [EdgeFlip(0, 4), EdgeFlip(0, 5), EdgeFlip(1, 5)]
        )
        result = AttackResult(
            original=tiny_graph, poisoned=overspent, budget=AttackBudget(total=1)
        )
        with pytest.raises(BudgetError, match="exceeded"):
            result.verify_budget()

    def test_verify_budget_counts_feature_cost(self, tiny_graph):
        poisoned = apply_perturbations(tiny_graph, [FeatureFlip(0, 0)])
        result = AttackResult(
            original=tiny_graph,
            poisoned=poisoned,
            budget=AttackBudget(total=1.0, feature_cost=2.0),
        )
        with pytest.raises(BudgetError):
            result.verify_budget()

    def test_runtime_populated_by_attack(self, tiny_graph):
        result = RandomAttack(seed=0).attack(tiny_graph, perturbation_rate=0.3)
        assert result.runtime_seconds >= 0.0

    def test_graph_metadata(self, tiny_graph):
        renamed = tiny_graph.with_name("other")
        assert renamed.name == "other"
        assert renamed.num_edges == tiny_graph.num_edges
