"""Empirical verification of the paper's Theorem 1 (Sec. IV-B).

Setting (verbatim from the theorem): a poison graph where every training
node is connected to exactly ``d`` nodes of *every* class (including a
self-loop), and each node's feature vector is its one-hot label.  Claim:
adding ``α > 0`` extra edges from a training node to same-label nodes
strictly decreases the GNN training loss.

The proof lives in the authors' online report; here the inequality is
checked computationally over many random configurations with a linear GCN
(logits = A_n X W, W = I — the aggregation-dominant regime the theorem
reasons about), which is exactly the mechanism GNAT's augmentations rely
on: same-label edges sharpen a node's label evidence.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import gcn_normalize


def theorem_graph(num_classes: int, nodes_per_class: int, d: int, rng):
    """Adjacency where node 0 (class 0) has d neighbors in every class."""
    n = num_classes * nodes_per_class
    labels = np.repeat(np.arange(num_classes), nodes_per_class)
    adjacency = sp.lil_matrix((n, n))
    target = 0  # the training node under study
    for cls in range(num_classes):
        members = np.flatnonzero(labels == cls)
        members = members[members != target]
        chosen = rng.choice(members, size=min(d, len(members)), replace=False)
        for v in chosen:
            adjacency[target, v] = 1.0
            adjacency[v, target] = 1.0
    return adjacency.tocsr(), labels, target


def training_loss(adjacency, labels, node) -> float:
    """Cross-entropy of ``node`` under logits = A_n X with X = one-hot(Y)."""
    features = np.eye(labels.max() + 1)[labels]
    logits = gcn_normalize(adjacency) @ features
    row = logits[node]
    row = row - row.max()
    log_probs = row - np.log(np.exp(row).sum())
    return float(-log_probs[labels[node]])


class TestTheorem1:
    @given(
        st.integers(2, 5),    # number of classes
        st.integers(2, 4),    # d neighbors per class
        st.integers(1, 3),    # α extra same-label edges
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_label_augmentation_decreases_loss(
        self, num_classes, d, alpha, seed
    ):
        rng = np.random.default_rng(seed)
        nodes_per_class = d + alpha + 2
        adjacency, labels, target = theorem_graph(num_classes, nodes_per_class, d, rng)
        before = training_loss(adjacency, labels, target)

        # Add α fresh same-label edges to the target node.
        members = np.flatnonzero(labels == labels[target])
        fresh = [
            v for v in members if v != target and adjacency[target, v] == 0.0
        ]
        augmented = adjacency.tolil(copy=True)
        for v in fresh[:alpha]:
            augmented[target, v] = 1.0
            augmented[v, target] = 1.0
        after = training_loss(augmented.tocsr(), labels, target)

        assert after < before, (num_classes, d, alpha, before, after)

    @given(st.integers(2, 5), st.integers(2, 4), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_different_label_augmentation_increases_loss(
        self, num_classes, d, seed
    ):
        # The contrapositive mechanism (what attackers exploit, Fig 2):
        # adding a different-label edge increases the node's loss.
        rng = np.random.default_rng(seed)
        adjacency, labels, target = theorem_graph(num_classes, d + 3, d, rng)
        before = training_loss(adjacency, labels, target)

        other = np.flatnonzero(labels != labels[target])
        fresh = [v for v in other if adjacency[target, v] == 0.0]
        augmented = adjacency.tolil(copy=True)
        augmented[target, fresh[0]] = 1.0
        augmented[fresh[0], target] = 1.0
        after = training_loss(augmented.tocsr(), labels, target)

        assert after > before, (num_classes, d, before, after)
