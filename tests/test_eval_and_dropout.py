"""The evaluate() helper and train/eval-mode behavioural differences."""

import numpy as np

from repro.graph import gcn_normalize
from repro.nn import GCN, evaluate
from repro.tensor import Tensor


class TestEvaluateHelper:
    def test_restores_training_mode(self, small_cora):
        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0).train()
        evaluate(
            model,
            gcn_normalize(small_cora.adjacency),
            small_cora.features,
            small_cora.labels,
            small_cora.val_mask,
        )
        assert model.training

    def test_custom_forward_used(self, small_cora):
        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        calls = []

        def forward(adjacency, features):
            calls.append(1)
            return model.forward(adjacency, features)

        accuracy = evaluate(
            model,
            gcn_normalize(small_cora.adjacency),
            small_cora.features,
            small_cora.labels,
            small_cora.test_mask,
            forward=forward,
        )
        assert calls == [1]
        assert 0.0 <= accuracy <= 1.0


class TestDropoutModes:
    def test_training_forward_is_stochastic(self, small_cora):
        model = GCN(small_cora.num_features, small_cora.num_classes, dropout=0.5, seed=0)
        model.train()
        adjacency = gcn_normalize(small_cora.adjacency)
        x = Tensor(small_cora.features)
        a = model.forward(adjacency, x).data
        b = model.forward(adjacency, x).data
        assert not np.allclose(a, b)

    def test_eval_forward_is_deterministic(self, small_cora):
        model = GCN(small_cora.num_features, small_cora.num_classes, dropout=0.5, seed=0)
        model.eval()
        adjacency = gcn_normalize(small_cora.adjacency)
        x = Tensor(small_cora.features)
        a = model.forward(adjacency, x).data
        b = model.forward(adjacency, x).data
        np.testing.assert_allclose(a, b)

    def test_eval_forward_builds_no_graph_under_no_grad(self, small_cora):
        from repro.tensor import no_grad

        model = GCN(small_cora.num_features, small_cora.num_classes, seed=0)
        model.eval()
        with no_grad():
            logits = model.forward(
                gcn_normalize(small_cora.adjacency), Tensor(small_cora.features)
            )
        assert logits._backward is None
        assert not logits.requires_grad
