"""GCN / GAT models and the module system."""

import numpy as np
import pytest

from repro.graph import gcn_normalize
from repro.nn import GAT, GCN, Module, TrainConfig, train_node_classifier
from repro.tensor import Tensor, glorot_uniform


class TestModuleSystem:
    def test_parameter_discovery_nested_and_lists(self):
        rng = np.random.default_rng(0)

        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = glorot_uniform(2, 2, rng)

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.stack = [Inner(), Inner()]
                self.w = glorot_uniform(3, 3, rng)
                self.constant = Tensor(np.zeros(2))  # not trainable

        model = Outer()
        assert len(model.parameters()) == 4
        assert len(list(model.modules())) == 4  # outer + 3 inners

    def test_train_eval_propagates(self):
        model = GCN(4, 2, seed=0)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model = GCN(4, 3, seed=0)
        state = model.state_dict()
        for p in model.parameters():
            p.data += 1.0
        model.load_state_dict(state)
        for p, saved in zip(model.parameters(), state):
            np.testing.assert_array_equal(p.data, saved)

    def test_load_state_dict_validates(self):
        model = GCN(4, 3, seed=0)
        with pytest.raises(ValueError):
            model.load_state_dict([np.zeros(2)])

    def test_zero_grad(self):
        model = GCN(4, 3, seed=0)
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestGCN:
    def test_output_shape(self, tiny_graph):
        model = GCN(tiny_graph.num_features, 2, hidden_dim=8, seed=0)
        logits = model.forward(gcn_normalize(tiny_graph.adjacency), Tensor(tiny_graph.features))
        assert logits.shape == (6, 2)

    def test_layer_count(self):
        assert len(GCN(4, 2, num_layers=1, seed=0).layers) == 1
        assert len(GCN(4, 2, num_layers=4, seed=0).layers) == 4
        with pytest.raises(ValueError):
            GCN(4, 2, num_layers=0)

    def test_dense_and_sparse_paths_agree(self, tiny_graph):
        model = GCN(tiny_graph.num_features, 2, dropout=0.0, seed=0)
        model.eval()
        sparse_adj = gcn_normalize(tiny_graph.adjacency)
        dense_adj = Tensor(sparse_adj.toarray())
        x = Tensor(tiny_graph.features)
        np.testing.assert_allclose(
            model.forward(sparse_adj, x).data,
            model.forward(dense_adj, x).data,
            atol=1e-10,
        )

    def test_overfits_tiny_graph(self, tiny_graph):
        model = GCN(tiny_graph.num_features, 2, dropout=0.0, seed=0)
        result = train_node_classifier(
            model, tiny_graph, TrainConfig(epochs=300, patience=300)
        )
        predictions = model.predict(gcn_normalize(tiny_graph.adjacency), Tensor(tiny_graph.features))
        # The bridge node (2) is genuinely ambiguous; everyone else must fit.
        assert (predictions == tiny_graph.labels).mean() >= 5 / 6
        assert result.test_accuracy >= 0.5

    def test_predict_returns_int_labels(self, tiny_graph):
        model = GCN(tiny_graph.num_features, 2, seed=0)
        preds = model.predict(gcn_normalize(tiny_graph.adjacency), Tensor(tiny_graph.features))
        assert preds.shape == (6,)
        assert preds.dtype.kind == "i"

    def test_predict_restores_training_mode(self, tiny_graph):
        model = GCN(tiny_graph.num_features, 2, seed=0).train()
        model.predict(gcn_normalize(tiny_graph.adjacency), Tensor(tiny_graph.features))
        assert model.training

    def test_deterministic_init(self):
        a = GCN(4, 2, seed=42)
        b = GCN(4, 2, seed=42)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestGAT:
    def test_output_shape(self, tiny_graph):
        model = GAT(tiny_graph.num_features, 2, hidden_dim=4, num_heads=2, seed=0)
        logits = model.forward(tiny_graph.adjacency, Tensor(tiny_graph.features))
        assert logits.shape == (6, 2)

    def test_attention_respects_support(self, tiny_graph):
        # Isolated node pairs must not attend to each other: attention over
        # the support mask means changing a non-neighbor's features leaves a
        # node's logits unchanged (2-hop via shared neighbors aside).
        model = GAT(tiny_graph.num_features, 2, hidden_dim=4, num_heads=1, dropout=0.0, seed=0)
        model.eval()
        x = tiny_graph.features.copy()
        base = model.forward(tiny_graph.adjacency, Tensor(x)).data
        x2 = x.copy()
        x2[5] += 10.0  # node 5 is not within 2 hops of node 0
        out = model.forward(tiny_graph.adjacency, Tensor(x2)).data
        np.testing.assert_allclose(base[0], out[0], atol=1e-9)
        assert not np.allclose(base[5], out[5])

    def test_trains_on_tiny_graph(self, tiny_graph):
        model = GAT(tiny_graph.num_features, 2, hidden_dim=4, num_heads=2, dropout=0.0, seed=0)
        result = train_node_classifier(model, tiny_graph, TrainConfig(epochs=60))
        assert result.test_accuracy >= 0.5

    def test_head_count(self):
        model = GAT(4, 2, num_heads=3, seed=0)
        assert len(model.heads) == 3
