"""PEEGA's representation-difference objective (Eqs. 5, 6, 8)."""

import numpy as np
import pytest

from repro.core import DifferenceObjective, global_view_difference, self_view_difference
from repro.errors import ConfigError
from repro.surrogate import linear_propagation
from repro.tensor import Tensor


class TestSelfView:
    def test_zero_for_identical_representations(self, tiny_graph):
        m = linear_propagation(tiny_graph.adjacency, tiny_graph.features, 2)
        assert self_view_difference(Tensor(m), m, p=2).item() == pytest.approx(0.0, abs=1e-6)

    def test_hand_computed_value(self):
        m_hat = Tensor(np.array([[3.0, 4.0], [0.0, 0.0]]))
        m_orig = np.zeros((2, 2))
        assert self_view_difference(m_hat, m_orig, p=2).item() == pytest.approx(5.0, rel=1e-4)
        assert self_view_difference(m_hat, m_orig, p=1).item() == pytest.approx(7.0, rel=1e-4)


class TestGlobalView:
    def test_hand_computed_value(self):
        m_hat = Tensor(np.array([[1.0, 0.0], [0.0, 0.0]]))
        m_orig = np.array([[0.0, 0.0], [0.0, 1.0]])
        edges = np.array([[0], [1]])  # v=0 has neighbor u=1
        # ||m_hat[0] - m_orig[1]||_2 = ||(1, -1)|| = sqrt(2)
        value = global_view_difference(m_hat, m_orig, edges, p=2).item()
        assert value == pytest.approx(np.sqrt(2.0), rel=1e-4)

    def test_bad_edge_index_shape(self):
        with pytest.raises(ConfigError):
            global_view_difference(
                Tensor(np.zeros((2, 2))), np.zeros((2, 2)), np.zeros((3, 1), dtype=int)
            )


class TestObjective:
    def test_unperturbed_graph_gives_lambda_only_baseline(self, tiny_graph):
        objective = DifferenceObjective(tiny_graph, lam=0.0)
        value = objective(tiny_graph.dense_adjacency(), tiny_graph.features)
        assert value.item() == pytest.approx(0.0, abs=1e-6)

    def test_lambda_adds_global_term(self, tiny_graph):
        base = DifferenceObjective(tiny_graph, lam=0.0)
        withl = DifferenceObjective(tiny_graph, lam=1.0)
        adj = tiny_graph.dense_adjacency()
        adj_mod = adj.copy()
        adj_mod[0, 5] = adj_mod[5, 0] = 1.0
        assert withl(adj_mod, tiny_graph.features).item() > base(
            adj_mod, tiny_graph.features
        ).item()

    def test_perturbation_increases_objective(self, tiny_graph):
        objective = DifferenceObjective(tiny_graph)
        adj_mod = tiny_graph.dense_adjacency()
        adj_mod[0, 5] = adj_mod[5, 0] = 1.0
        clean = objective(tiny_graph.dense_adjacency(), tiny_graph.features).item()
        perturbed = objective(adj_mod, tiny_graph.features).item()
        assert perturbed > clean

    def test_gradients_available(self, tiny_graph):
        objective = DifferenceObjective(tiny_graph)
        adj = Tensor(tiny_graph.dense_adjacency(), requires_grad=True)
        feats = Tensor(tiny_graph.features, requires_grad=True)
        objective(adj, feats).backward()
        assert adj.grad is not None and feats.grad is not None
        assert np.isfinite(adj.grad).all() and np.isfinite(feats.grad).all()

    def test_node_mask_restricts_rows(self, tiny_graph):
        mask = np.zeros(6, dtype=bool)
        mask[0] = True
        objective = DifferenceObjective(tiny_graph, lam=0.0, node_mask=mask)
        # Perturb only node 5's neighborhood: node 0 (2 hops away via 2-3)
        # changes little, so the masked objective stays near zero while the
        # unmasked one grows.
        adj_mod = tiny_graph.dense_adjacency()
        adj_mod[4, 5] = adj_mod[5, 4] = 0.0
        masked = objective(adj_mod, tiny_graph.features).item()
        unmasked = DifferenceObjective(tiny_graph, lam=0.0)(
            adj_mod, tiny_graph.features
        ).item()
        assert masked < unmasked

    def test_node_mask_validation(self, tiny_graph):
        with pytest.raises(ConfigError):
            DifferenceObjective(tiny_graph, node_mask=np.zeros(3, dtype=bool))
        with pytest.raises(ConfigError):
            DifferenceObjective(tiny_graph, node_mask=np.zeros(6, dtype=bool))

    def test_negative_lambda_rejected(self, tiny_graph):
        with pytest.raises(ConfigError):
            DifferenceObjective(tiny_graph, lam=-0.1)

    def test_original_representations_exposed(self, tiny_graph):
        objective = DifferenceObjective(tiny_graph, layers=2)
        expected = linear_propagation(tiny_graph.adjacency, tiny_graph.features, 2)
        np.testing.assert_allclose(objective.original_representations, expected)
