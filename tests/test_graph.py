"""Graph container invariants and accessors."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import Graph


def make_adjacency(edges, n):
    m = sp.lil_matrix((n, n))
    for u, v in edges:
        m[u, v] = 1.0
        m[v, u] = 1.0
    return m.tocsr()


class TestInvariants:
    def test_rejects_self_loops(self):
        adj = sp.eye(3, format="csr")
        with pytest.raises(GraphError, match="zero diagonal"):
            Graph(adjacency=adj, features=np.ones((3, 2)))

    def test_rejects_asymmetric(self):
        adj = sp.lil_matrix((3, 3))
        adj[0, 1] = 1.0
        with pytest.raises(GraphError, match="symmetric"):
            Graph(adjacency=adj.tocsr(), features=np.ones((3, 2)))

    def test_rejects_non_binary(self):
        adj = sp.lil_matrix((2, 2))
        adj[0, 1] = 0.5
        adj[1, 0] = 0.5
        with pytest.raises(GraphError, match="binary"):
            Graph(adjacency=adj.tocsr(), features=np.ones((2, 2)))

    def test_rejects_feature_row_mismatch(self):
        adj = make_adjacency([(0, 1)], 3)
        with pytest.raises(GraphError):
            Graph(adjacency=adj, features=np.ones((2, 2)))

    def test_rejects_bad_label_shape(self):
        adj = make_adjacency([(0, 1)], 2)
        with pytest.raises(GraphError):
            Graph(adjacency=adj, features=np.ones((2, 2)), labels=np.array([0]))

    def test_rejects_bad_mask_shape(self):
        adj = make_adjacency([(0, 1)], 2)
        with pytest.raises(GraphError):
            Graph(adjacency=adj, features=np.ones((2, 2)), train_mask=np.ones(3, bool))

    def test_dense_input_accepted(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        g = Graph(adjacency=dense, features=np.ones((2, 1)))
        assert g.num_edges == 1


class TestAccessors:
    def test_counts(self, tiny_graph):
        assert tiny_graph.num_nodes == 6
        assert tiny_graph.num_edges == 7
        assert tiny_graph.num_features == 4
        assert tiny_graph.num_classes == 2

    def test_degrees(self, tiny_graph):
        np.testing.assert_allclose(tiny_graph.degrees(), [2, 2, 3, 3, 2, 2])

    def test_neighbors(self, tiny_graph):
        assert set(tiny_graph.neighbors(2)) == {0, 1, 3}

    def test_edge_list_canonical(self, tiny_graph):
        edges = tiny_graph.edge_list()
        assert len(edges) == 7
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(2, 3)
        assert tiny_graph.has_edge(3, 2)
        assert not tiny_graph.has_edge(0, 5)

    def test_num_classes_requires_labels(self):
        g = Graph(adjacency=make_adjacency([(0, 1)], 2), features=np.ones((2, 1)))
        with pytest.raises(GraphError):
            g.num_classes

    def test_summary_contains_stats(self, tiny_graph):
        text = tiny_graph.summary()
        assert "nodes=6" in text and "edges=7" in text and "classes=2" in text


class TestFunctionalUpdates:
    def test_with_adjacency_keeps_other_fields(self, tiny_graph):
        new_adj = make_adjacency([(0, 1)], 6)
        g2 = tiny_graph.with_adjacency(new_adj)
        assert g2.num_edges == 1
        np.testing.assert_array_equal(g2.labels, tiny_graph.labels)
        np.testing.assert_array_equal(g2.features, tiny_graph.features)

    def test_with_features(self, tiny_graph):
        g2 = tiny_graph.with_features(np.zeros((6, 9)))
        assert g2.num_features == 9
        assert g2.num_edges == tiny_graph.num_edges

    def test_copy_is_deep(self, tiny_graph):
        g2 = tiny_graph.copy()
        g2.features[0, 0] = 42.0
        assert tiny_graph.features[0, 0] != 42.0

    def test_to_networkx(self, tiny_graph):
        nx_graph = tiny_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 6
        assert nx_graph.number_of_edges() == 7
        assert nx_graph.nodes[0]["label"] == 0
