"""Failure injection: pathological inputs must fail loudly or degrade
gracefully — never corrupt results silently."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.attacks import AttackBudget, RandomAttack
from repro.core import GNAT, PEEGA
from repro.datasets.splits import stratified_split
from repro.defenses import RawGCN
from repro.errors import GraphError
from repro.graph import Graph, gcn_normalize
from repro.nn import GCN, TrainConfig, train_node_classifier
from repro.tensor import Tensor


def make_graph(adjacency, features, labels, seed=0):
    graph = Graph(adjacency=adjacency, features=features, labels=labels)
    return stratified_split(graph, train_frac=0.2, val_frac=0.2, seed=seed)


@pytest.fixture
def ring_graph():
    """A 12-node two-class ring — minimal but connected."""
    n = 12
    adjacency = sp.lil_matrix((n, n))
    for i in range(n):
        adjacency[i, (i + 1) % n] = 1.0
        adjacency[(i + 1) % n, i] = 1.0
    features = np.zeros((n, 4))
    features[: n // 2, :2] = 1.0
    features[n // 2 :, 2:] = 1.0
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return make_graph(adjacency.tocsr(), features, labels)


class TestDegenerateGraphs:
    def test_edgeless_graph_trains(self):
        n = 20
        features = np.eye(n)[:, :10] + np.eye(n)[:, 10:]
        labels = np.arange(n) % 2
        graph = make_graph(sp.csr_matrix((n, n)), np.ones((n, 4)), labels)
        model = GCN(4, 2, seed=0)
        result = train_node_classifier(model, graph, TrainConfig(epochs=5))
        assert np.isfinite(result.train_losses).all()

    def test_complete_graph_attack_is_deletion_only(self):
        n = 10
        dense = np.ones((n, n)) - np.eye(n)
        labels = np.arange(n) % 2
        graph = make_graph(sp.csr_matrix(dense), np.ones((n, 3)), labels)
        result = PEEGA(attack_features=False, seed=0).attack(
            graph, budget=AttackBudget(total=3)
        )
        for flip in result.edge_flips:
            assert graph.has_edge(flip.u, flip.v)  # nothing left to add

    def test_single_class_labels_rejected_by_split(self):
        n = 10
        adjacency = sp.csr_matrix((n, n))
        graph = Graph(
            adjacency=adjacency, features=np.ones((n, 2)), labels=np.zeros(n, int)
        )
        split = stratified_split(graph, seed=0)  # one class is fine to split
        assert split.train_mask.sum() >= 1

    def test_attack_on_ring_preserves_invariants(self, ring_graph):
        result = RandomAttack(seed=0).attack(ring_graph, perturbation_rate=0.5)
        result.verify_budget()
        assert result.poisoned.adjacency.diagonal().sum() == 0


class TestCorruptInputs:
    def test_nan_features_fail_training_loudly(self, ring_graph):
        from repro.errors import DivergenceError

        bad = ring_graph.with_features(np.full_like(ring_graph.features, np.nan))
        model = GCN(bad.num_features, 2, seed=0)
        # The NaN loss must raise rather than report a fake accuracy.
        with pytest.raises(DivergenceError) as excinfo:
            train_node_classifier(model, bad, TrainConfig(epochs=3, patience=3))
        assert np.isnan(excinfo.value.loss)

    def test_weighted_adjacency_rejected(self):
        adjacency = sp.lil_matrix((3, 3))
        adjacency[0, 1] = 2.0
        adjacency[1, 0] = 2.0
        with pytest.raises(GraphError, match="binary"):
            Graph(adjacency=adjacency.tocsr(), features=np.ones((3, 2)))

    def test_gnat_on_zero_feature_rows(self, ring_graph):
        # A node with all-zero features must not produce NaNs in the
        # feature-graph cosine computation.
        features = ring_graph.features.copy()
        features[0] = 0.0
        graph = ring_graph.with_features(features)
        defender = GNAT(k_f=2, train_config=TrainConfig(epochs=5), seed=0)
        result = defender.fit(graph)
        assert np.isfinite(result.test_accuracy)


class TestBudgetEdgeCases:
    def test_budget_larger_than_search_space(self, ring_graph):
        # More budget than there are possible flips: attack stops early.
        huge = AttackBudget(total=10_000.0)
        result = RandomAttack(seed=0).attack(ring_graph, budget=huge)
        max_pairs = ring_graph.num_nodes * (ring_graph.num_nodes - 1) // 2
        assert result.num_perturbations <= max_pairs

    def test_fractional_budget_floor(self, ring_graph):
        result = PEEGA(seed=0).attack(ring_graph, budget=AttackBudget(total=0.5))
        assert result.num_perturbations == 0  # an edge costs 1 > 0.5

    def test_defender_on_fully_poisoned_graph_stays_bounded(self, ring_graph):
        poison = RandomAttack(seed=0).attack(ring_graph, perturbation_rate=2.0)
        accuracy = RawGCN(train_config=TrainConfig(epochs=10), seed=0).fit(
            poison.poisoned
        ).test_accuracy
        assert 0.0 <= accuracy <= 1.0


class TestNormalizationEdgeCases:
    def test_single_node_graph(self):
        adjacency = sp.csr_matrix((1, 1))
        normalized = gcn_normalize(adjacency)
        np.testing.assert_allclose(normalized.toarray(), [[1.0]])

    def test_gcn_forward_on_single_node(self):
        model = GCN(3, 2, seed=0)
        model.eval()
        logits = model.forward(
            gcn_normalize(sp.csr_matrix((1, 1))), Tensor(np.ones((1, 3)))
        )
        assert logits.shape == (1, 2)
        assert np.isfinite(logits.data).all()
