"""End-to-end determinism of the experiment harness.

Reproducibility is the whole point of this repository: the same
configuration must yield bit-identical tables, across fresh runner
instances.
"""

from repro.experiments import ExperimentRunner, ExperimentScale

TINY = ExperimentScale(scale=0.04, seeds=2, rate=0.1)


def build_table():
    runner = ExperimentRunner(TINY)
    return runner.accuracy_table(
        "cora", attackers=["PEEGA", "Metattack"], defenders=["GCN", "GNAT"]
    )


class TestDeterminism:
    def test_identical_tables_across_runners(self):
        first = build_table()
        second = build_table()
        assert first.rows.keys() == second.rows.keys()
        for attacker in first.rows:
            for defender in first.rows[attacker]:
                a = first.rows[attacker][defender]
                b = second.rows[attacker][defender]
                assert a.values == b.values, (attacker, defender)

    def test_different_dataset_seed_changes_graph(self):
        a = ExperimentRunner(TINY, dataset_seed=0).graph("cora")
        b = ExperimentRunner(TINY, dataset_seed=1).graph("cora")
        assert (a.adjacency != b.adjacency).nnz > 0
