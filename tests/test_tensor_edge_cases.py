"""Autodiff engine edge cases beyond the primary op tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import Tensor, check_gradients
from repro.tensor import functional as F


class TestPowAndRoots:
    def test_negative_exponent(self):
        x = np.array([[2.0, 4.0]])
        check_gradients(lambda a: (a**-0.5).sum(), [x])

    def test_integer_exponent_matches_repeated_mul(self):
        x = Tensor([3.0], requires_grad=True)
        (x**3).sum().backward()
        np.testing.assert_allclose(x.grad, [27.0])

    def test_sqrt_equals_pow_half(self):
        data = np.array([1.0, 4.0, 9.0])
        a = Tensor(data, requires_grad=True)
        b = Tensor(data, requires_grad=True)
        a.sqrt().sum().backward()
        (b**0.5).sum().backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-10)


class TestReductions:
    def test_sum_tuple_axes(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        t = Tensor(x, requires_grad=True)
        t.sum(axis=(0, 2)).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    def test_mean_tuple_axes_scaling(self):
        x = np.ones((2, 3, 4))
        t = Tensor(x, requires_grad=True)
        out = t.mean(axis=(0, 2))
        assert out.shape == (3,)
        np.testing.assert_allclose(out.data, np.ones(3))
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / 8.0))

    def test_sum_keepdims_shape(self):
        t = Tensor(np.ones((3, 4)))
        assert t.sum(axis=1, keepdims=True).shape == (3, 1)
        assert t.sum(axis=1).shape == (3,)


class TestMaximumTies:
    def test_tie_sends_gradient_to_first_operand(self):
        # Convention: a >= b routes gradient to a on ties.
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [0.0])


class TestReshape:
    def test_round_trip(self):
        x = np.arange(12.0)
        t = Tensor(x, requires_grad=True)
        out = t.reshape(3, 4).reshape(-1)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(12, 2.0))

    def test_tuple_argument(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape((2, 3)).shape == (2, 3)


class TestRowGatherFastPath:
    def test_matches_slow_path_with_duplicates(self):
        # The sparse-scatter fast path must agree with np.add.at.
        data = np.random.default_rng(0).normal(size=(6, 5))
        index = np.array([0, 3, 3, 5, 0, 0])

        fast = Tensor(data, requires_grad=True)
        fast[index].sum().backward()

        expected = np.zeros_like(data)
        np.add.at(expected, index, np.ones((len(index), 5)))
        np.testing.assert_allclose(fast.grad, expected)

    def test_1d_tensor_uses_slow_path(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        t[np.array([1, 1])].sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 2.0, 0.0, 0.0])

    def test_boolean_mask_indexing(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        t[mask].sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 0.0, 1.0, 0.0])


class TestNumericalStability:
    def test_softmax_uniform_on_equal_logits(self):
        probs = F.softmax(Tensor(np.zeros((2, 5)))).data
        np.testing.assert_allclose(probs, np.full((2, 5), 0.2))

    def test_cross_entropy_finite_on_confident_wrong(self):
        logits = np.array([[100.0, -100.0]])
        loss = F.cross_entropy(Tensor(logits, requires_grad=True), np.array([1]))
        assert np.isfinite(loss.item())
        loss.backward()

    def test_row_pnorm_large_values(self):
        x = Tensor(np.full((2, 3), 1e6), requires_grad=True)
        out = F.row_pnorm(x, 2).sum()
        assert np.isfinite(out.item())
        out.backward()
        assert np.isfinite(x.grad).all()


class TestGraphIsolation:
    def test_backward_twice_on_same_graph(self):
        # Re-running backward on an already-consumed graph accumulates again
        # (grads dict is rebuilt per call, .grad adds).
        x = Tensor([1.0], requires_grad=True)
        y = (x * 4.0).sum()
        y.backward()
        y.backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_independent_graphs_do_not_interact(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 2).sum().backward()
        first = x.grad.copy()
        x.zero_grad()
        (x * 5).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])
        np.testing.assert_allclose(first, [2.0])
