"""Structural property helpers: degree histograms, components, isolation."""

import numpy as np
import scipy.sparse as sp

import repro
from repro.graph import (
    Graph,
    degree_histogram,
    isolated_nodes,
    largest_connected_component,
)


def graph_from_edges(edges, n, labels=None):
    m = sp.lil_matrix((n, n))
    for u, v in edges:
        m[u, v] = 1.0
        m[v, u] = 1.0
    return Graph(adjacency=m.tocsr(), features=np.ones((n, 1)), labels=labels)


class TestDegreeHistogram:
    def test_counts(self, tiny_graph):
        histogram = degree_histogram(tiny_graph)
        # degrees are [2, 2, 3, 3, 2, 2] → four 2s, two 3s.
        assert histogram[2] == 4
        assert histogram[3] == 2
        assert histogram.sum() == 6

    def test_isolated_counted_at_zero(self):
        g = graph_from_edges([(0, 1)], 3)
        assert degree_histogram(g)[0] == 1


class TestConnectedComponents:
    def test_single_component(self, tiny_graph):
        assert largest_connected_component(tiny_graph).all()

    def test_two_components_picks_larger(self):
        g = graph_from_edges([(0, 1), (1, 2), (3, 4)], 5)
        mask = largest_connected_component(g)
        np.testing.assert_array_equal(mask, [True, True, True, False, False])


class TestIsolatedNodes:
    def test_none_isolated(self, tiny_graph):
        assert len(isolated_nodes(tiny_graph)) == 0

    def test_finds_isolated(self):
        g = graph_from_edges([(0, 1)], 4)
        np.testing.assert_array_equal(isolated_nodes(g), [2, 3])


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        assert repro.PEEGA is not None
        assert repro.GNAT is not None
        assert callable(repro.load_dataset)

    def test_all_submodules_importable(self):
        import importlib

        for name in (
            "tensor", "graph", "datasets", "nn", "surrogate", "core",
            "attacks", "defenses", "analysis", "experiments", "io", "cli",
        ):
            module = importlib.import_module(f"repro.{name}")
            assert module is not None

    def test_public_api_has_docstrings(self):
        # Every public item reachable from repro.core must be documented.
        import repro.core as core

        for name in core.__all__:
            item = getattr(core, name)
            assert item.__doc__, f"{name} lacks a docstring"
