"""Equivalence tier: exhaustive-block PRBCD/GRBCD vs the dense PEEGA oracle.

When ``block_size`` covers the whole candidate space the samplers disappear
and the block attackers must *reduce to* exhaustive scoring:

* GRBCD becomes PEEGA's topology-only greedy — identical flip sequences
  (including argpartition tie order, which decides p = 1 flips) against the
  dense ``use_cache=False`` oracle;
* PRBCD with ``epochs=1`` becomes one-shot PEEGA with ``flips_per_step=δ``
  (both resolve the clean state's zero-gradient degeneracy through the same
  tie ranking);
* the O(block) pair kernel agrees with the full-matrix gradient entries to
  tight tolerance (not bitwise — BLAS tile paths differ, which is exactly
  why the exhaustive modes score through the full matrix).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import GRBCD, PRBCD
from repro.attacks.base import AttackBudget
from repro.core.difference import DifferenceObjective, IncrementalScorer
from repro.core.peega import PEEGA
from repro.defenses import RawGCN
from repro.graph import EdgeFlip
from repro.surrogate import PropagationCache

EXHAUSTIVE = 10**9  # > n(n-1)/2 for every test graph


def _flips(result):
    return [(f.u, f.v) for f in result.edge_flips]


def _rescore(graph, result, layers, p, lam):
    objective = DifferenceObjective(graph, layers=layers, p=p, lam=lam)
    return float(
        objective(result.poisoned.adjacency, result.poisoned.features).item()
    )


@pytest.mark.parametrize("p", [1, 2])
@pytest.mark.parametrize("flips_per_step", [1, 3])
def test_grbcd_exhaustive_matches_dense_peega_cora(small_cora, p, flips_per_step):
    lam = 0.02
    dense = PEEGA(
        lam=lam,
        p=p,
        attack_features=False,
        focus_training_nodes=False,
        flips_per_step=flips_per_step,
        use_cache=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=12))
    block = GRBCD(
        lam=lam,
        p=p,
        block_size=EXHAUSTIVE,
        flips_per_step=flips_per_step,
        focus_training_nodes=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=12))
    assert _flips(dense) == _flips(block)
    assert _rescore(small_cora, dense, 2, p, lam) == pytest.approx(
        _rescore(small_cora, block, 2, p, lam), abs=1e-8
    )


@pytest.mark.parametrize("layers", [1, 3])
def test_grbcd_exhaustive_matches_dense_peega_layers(small_cora, layers):
    dense = PEEGA(
        lam=0.0,
        p=2,
        layers=layers,
        attack_features=False,
        focus_training_nodes=False,
        use_cache=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=8))
    block = GRBCD(
        lam=0.0,
        p=2,
        layers=layers,
        block_size=EXHAUSTIVE,
        focus_training_nodes=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=8))
    assert _flips(dense) == _flips(block)


def test_grbcd_exhaustive_matches_dense_peega_polblogs(small_polblogs):
    # Polblogs regime: identity features, training-node-focused objective.
    dense = PEEGA(
        lam=0.01,
        p=1,
        attack_features=False,
        focus_training_nodes=True,
        use_cache=False,
        seed=0,
    ).attack(small_polblogs, AttackBudget(total=10))
    block = GRBCD(
        lam=0.01,
        p=1,
        block_size=EXHAUSTIVE,
        focus_training_nodes=True,
        seed=0,
    ).attack(small_polblogs, AttackBudget(total=10))
    assert _flips(dense) == _flips(block)


def test_prbcd_exhaustive_one_epoch_is_one_shot_peega(small_cora):
    delta = 15
    dense = PEEGA(
        lam=0.0,
        p=2,
        attack_features=False,
        focus_training_nodes=False,
        flips_per_step=delta,
        use_cache=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=float(delta)))
    block = PRBCD(
        lam=0.0,
        p=2,
        block_size=EXHAUSTIVE,
        epochs=1,
        focus_training_nodes=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=float(delta)))
    assert _flips(dense)[:delta] == _flips(block)


def test_prbcd_exhaustive_post_attack_accuracy_matches_oracle(small_cora):
    """Identical flips ⇒ identical poisoned graphs ⇒ identical accuracy."""
    delta = 10
    dense = PEEGA(
        lam=0.0,
        p=2,
        attack_features=False,
        focus_training_nodes=False,
        flips_per_step=delta,
        use_cache=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=float(delta)))
    block = PRBCD(
        lam=0.0,
        p=2,
        block_size=EXHAUSTIVE,
        epochs=1,
        focus_training_nodes=False,
        seed=0,
    ).attack(small_cora, AttackBudget(total=float(delta)))
    assert (dense.poisoned.adjacency != block.poisoned.adjacency).nnz == 0
    acc_dense = RawGCN(seed=1).fit(dense.poisoned).test_accuracy
    acc_block = RawGCN(seed=1).fit(block.poisoned).test_accuracy
    assert acc_dense == acc_block


def test_prbcd_multi_epoch_returns_its_best_measured_rounding(small_cora):
    """The reported flips are the argmax of the objective trace, and the
    poisoned graph re-scores to exactly that value."""
    atk = PRBCD(
        lam=0.0,
        p=2,
        block_size=EXHAUSTIVE,
        epochs=8,
        focus_training_nodes=False,
        seed=0,
    )
    result = atk.attack(small_cora, AttackBudget(total=15.0))
    assert len(result.edge_flips) == 15
    best = max(result.objective_trace)
    assert _rescore(small_cora, result, 2, 2, 0.0) == pytest.approx(best, abs=1e-8)
    # The kick epoch starts at the clean state's (numerically) zero objective.
    assert result.objective_trace[0] == pytest.approx(0.0, abs=1e-6)
    assert best > 0.0


def test_pair_kernel_matches_full_matrix_entries(small_cora):
    """The O(block) pair kernel vs gathered full-matrix entries, including
    across incremental flip rounds — tight tolerance, loss exact."""
    rng = np.random.default_rng(5)
    n = small_cora.num_nodes
    feats = np.asarray(small_cora.features, dtype=np.float64)
    for p in (1, 2):
        for layers in (1, 2, 3):
            cache_a = PropagationCache(small_cora)
            obj_a = DifferenceObjective(
                small_cora, layers=layers, p=p, lam=0.02, cache=cache_a
            )
            scorer_a = IncrementalScorer(obj_a, cache_a)
            cache_b = PropagationCache(small_cora)
            obj_b = DifferenceObjective(
                small_cora, layers=layers, p=p, lam=0.02, cache=cache_b
            )
            scorer_b = IncrementalScorer(obj_b, cache_b)
            for round_ in range(3):
                uu = rng.integers(0, n, size=400)
                vv = rng.integers(0, n, size=400)
                keep = uu != vv
                uu, vv = uu[keep], vv[keep]
                full = scorer_a.gradients(feats, need_features=False)
                want = full.grad_topology[uu, vv]
                pair = scorer_b.pair_gradients(feats, uu, vv)
                assert pair.loss == full.loss
                np.testing.assert_allclose(
                    pair.grad_pairs, want, rtol=1e-10, atol=1e-14
                )
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u != v:
                    cache_a.apply(EdgeFlip(u, v))
                    cache_b.apply(EdgeFlip(u, v))
