"""Scenario: choosing a defense for a poisoned-data pipeline.

A team ingests a graph from an untrusted source (it may already be
poisoned) and must pick a training recipe.  This script poisons a Citeseer-
like graph with the strongest attacker at several budgets and compares every
defender the paper evaluates — including GNAT's individual augmented views —
so the team can see what each mechanism buys and what it costs in training
time.
"""

import numpy as np

from repro.core import GNAT, PEEGA
from repro.datasets import load_dataset
from repro.defenses import GCNJaccard, GCNSVD, GNNGuard, ProGNN, RGCN, RawGCN, SimPGCN


def evaluate(defender_factory, graph, seeds=2):
    results = [defender_factory(s).fit(graph) for s in range(seeds)]
    accuracy = float(np.mean([r.test_accuracy for r in results]))
    seconds = float(np.mean([r.runtime_seconds for r in results]))
    return accuracy, seconds


def main() -> None:
    graph = load_dataset("citeseer", scale=0.15, seed=0)
    print(f"graph: {graph.summary()}\n")

    defenders = [
        ("GCN (undefended)", lambda s: RawGCN(seed=s)),
        ("GCN-Jaccard", lambda s: GCNJaccard(seed=s)),
        ("GCN-SVD", lambda s: GCNSVD(rank=15, seed=s)),
        ("RGCN", lambda s: RGCN(seed=s)),
        ("SimPGCN", lambda s: SimPGCN(seed=s)),
        ("GNNGuard", lambda s: GNNGuard(seed=s)),
        ("Pro-GNN", lambda s: ProGNN(outer_epochs=30, seed=s)),
        ("GNAT (t only)", lambda s: GNAT(views="t", seed=s)),
        ("GNAT (t+e)", lambda s: GNAT(views="te", seed=s)),
        ("GNAT (t+f+e)", lambda s: GNAT(seed=s)),
    ]

    for rate in (0.1, 0.2):
        poisoned = PEEGA(lam=0.05, focus_training_nodes=False, seed=0).attack(graph, perturbation_rate=rate).poisoned
        print(f"=== PEEGA poison at rate {rate} ===")
        print(f"{'defender':<18} {'accuracy':>9} {'train time':>11}")
        print("-" * 42)
        for name, factory in defenders:
            accuracy, seconds = evaluate(factory, poisoned)
            print(f"{name:<18} {accuracy:>9.3f} {seconds:>10.2f}s")
        print()

    print(
        "Reading: preprocessing defenses help only when features are "
        "trustworthy; structure learning (Pro-GNN) is accurate but slow; "
        "GNAT's multi-view training gets the best accuracy-per-second."
    )


if __name__ == "__main__":
    main()
