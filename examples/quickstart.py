"""Quickstart: attack a citation graph with PEEGA, defend it with GNAT.

Runs in under a minute on a laptop::

    python examples/quickstart.py
"""

from repro.analysis import edge_difference, edge_homophily
from repro.core import GNAT, PEEGA
from repro.datasets import load_dataset
from repro.defenses import RawGCN


def main() -> None:
    # 1. Load a Cora-like citation graph (scale=0.15 ≈ 370 nodes).
    graph = load_dataset("cora", scale=0.15, seed=0)
    print(f"dataset : {graph.summary()}")
    print(f"homophily: {edge_homophily(graph):.1%} of edges connect same-label nodes")

    # 2. Train an undefended GCN on the clean graph.
    clean_gcn = RawGCN(seed=0).fit(graph)
    print(f"\nclean GCN accuracy            : {clean_gcn.test_accuracy:.3f}")

    # 3. Attack: PEEGA reads only the topology and features (black-box) and
    #    flips 10% * |edges| adjacency entries / feature bits.
    attack = PEEGA(lam=0.02, focus_training_nodes=False, seed=0).attack(graph, perturbation_rate=0.1)
    print(
        f"PEEGA applied {len(attack.edge_flips)} edge flips and "
        f"{len(attack.feature_flips)} feature flips in {attack.runtime_seconds:.1f}s"
    )
    diff = edge_difference(graph, attack.poisoned)
    print(f"attack pattern: {diff} (the paper's Fig 2 pattern: mostly Add+Diff)")

    poisoned_gcn = RawGCN(seed=0).fit(attack.poisoned)
    print(f"GCN accuracy on poisoned graph: {poisoned_gcn.test_accuracy:.3f}")

    # 4. Defend: GNAT trains one GCN over three augmented views.
    gnat = GNAT(seed=0).fit(attack.poisoned)
    print(f"GNAT accuracy on poisoned graph: {gnat.test_accuracy:.3f}")
    recovered = gnat.test_accuracy - poisoned_gcn.test_accuracy
    print(f"GNAT recovered {recovered:+.3f} accuracy over the raw GCN")


if __name__ == "__main__":
    main()
