"""Scenario: red-team audit of a GNN service.

A security team wants to know which threat model matters for their
node-classification service: a white-box insider (PGD/MinMax), a gray-box
adversary with label access (Metattack), or a pure black-box outsider who
can only crawl the graph (GF-Attack, PEEGA).  This script attacks the same
graph under every model with the same budget and compares damage, cost, and
the input requirements of each attacker — reproducing the paper's Table I +
Table IV/VII story in one run.
"""

import numpy as np

from repro.core import PEEGA
from repro.attacks import DICE, GFAttack, Metattack, MinMaxAttack, PGDAttack, RandomAttack
from repro.datasets import load_dataset
from repro.defenses import RawGCN


def main() -> None:
    graph = load_dataset("cora", scale=0.15, seed=0)
    clean = np.mean([RawGCN(seed=s).fit(graph).test_accuracy for s in range(3)])
    print(f"graph: {graph.summary()}")
    print(f"clean GCN accuracy: {clean:.3f}\n")

    attackers = [
        ("white-box ", PGDAttack(seed=0)),
        ("white-box ", MinMaxAttack(seed=0)),
        ("gray-box  ", Metattack(seed=0)),
        ("gray-box  ", DICE(seed=0)),
        ("black-box ", GFAttack(seed=0)),
        ("black-box ", PEEGA(lam=0.02, focus_training_nodes=False, seed=0)),
        ("baseline  ", RandomAttack(seed=0)),
    ]

    print(
        f"{'threat':<11} {'attacker':<10} {'needs labels':<13} {'needs model':<12} "
        f"{'accuracy':<9} {'damage':<8} {'time':<7}"
    )
    print("-" * 74)
    for threat, attacker in attackers:
        result = attacker.attack(graph, perturbation_rate=0.1)
        accuracy = np.mean(
            [RawGCN(seed=s).fit(result.poisoned).test_accuracy for s in range(3)]
        )
        print(
            f"{threat:<11} {attacker.name:<10} "
            f"{str(attacker.requires_labels):<13} {str(attacker.requires_model):<12} "
            f"{accuracy:<9.3f} {clean - accuracy:<8.3f} {result.runtime_seconds:<6.1f}s"
        )

    print(
        "\nReading: the pure black-box PEEGA approaches gray-box damage while "
        "requiring neither labels nor model access — the paper's headline "
        "claim — so the service must assume outsiders can mount strong "
        "poisoning attacks from public data alone."
    )


if __name__ == "__main__":
    main()
