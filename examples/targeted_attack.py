"""Scenario: targeted attack on a single user (Nettack) vs global poisoning.

An adversary wants ONE specific account misclassified (e.g. to evade a
bot-detection GNN) rather than to degrade the whole system.  This script
contrasts the two threat models on the same graph:

* Nettack (targeted, gray-box): perturbs only the victim's neighborhood
  with a budget proportional to its degree;
* PEEGA (untargeted, black-box): perturbs globally with a 10% budget.

It reports per-victim outcomes, collateral damage, and what GNAT does to
both.
"""

import numpy as np

from repro.attacks import AttackBudget, Nettack
from repro.core import GNAT, PEEGA
from repro.datasets import load_dataset
from repro.graph import gcn_normalize
from repro.nn import GCN, TrainConfig, train_node_classifier
from repro.tensor import Tensor


def train_gcn(graph, seed=0):
    model = GCN(graph.num_features, graph.num_classes, seed=seed)
    result = train_node_classifier(model, graph, TrainConfig())
    predictions = model.predict(gcn_normalize(graph.adjacency), Tensor(graph.features))
    return predictions, result.test_accuracy


def main() -> None:
    graph = load_dataset("cora", scale=0.12, seed=0)
    predictions, clean_accuracy = train_gcn(graph)
    print(f"graph: {graph.summary()}")
    print(f"clean GCN accuracy: {clean_accuracy:.3f}\n")

    # Pick victims the clean model classifies correctly.
    rng = np.random.default_rng(1)
    eligible = np.flatnonzero(
        (predictions == graph.labels) & graph.test_mask & (graph.degrees() >= 2)
    )
    victims = rng.choice(eligible, size=5, replace=False)

    print("=== targeted: Nettack, budget = deg(v) + 2 ===")
    fooled = 0
    for victim in victims:
        budget = AttackBudget(total=float(graph.degrees()[victim]) + 2.0)
        result = Nettack(target=int(victim), seed=0).attack(graph, budget=budget)
        new_predictions, accuracy = train_gcn(result.poisoned, seed=1)
        hit = new_predictions[victim] != graph.labels[victim]
        fooled += int(hit)
        print(
            f"victim {victim:>4} (deg {graph.degrees()[victim]:.0f}): "
            f"{'MISCLASSIFIED' if hit else 'survived':<14} "
            f"global accuracy {accuracy:.3f} (collateral {clean_accuracy - accuracy:+.3f})"
        )
    print(f"targeted success rate: {fooled}/{len(victims)}\n")

    print("=== untargeted: PEEGA at 10% budget ===")
    poisoned = PEEGA(lam=0.02, focus_training_nodes=False, seed=0).attack(
        graph, perturbation_rate=0.1
    ).poisoned
    poisoned_predictions, poisoned_accuracy = train_gcn(poisoned, seed=1)
    flipped = int(
        ((poisoned_predictions != graph.labels) & (predictions == graph.labels))[
            graph.test_mask
        ].sum()
    )
    print(f"global accuracy {poisoned_accuracy:.3f}; {flipped} test nodes newly misclassified")

    gnat = GNAT(seed=0).fit(poisoned)
    print(f"GNAT on the PEEGA poison: {gnat.test_accuracy:.3f}")
    print(
        "\nReading: targeted attacks are surgical (no collateral damage, hard "
        "to spot in aggregate metrics) while untargeted poisoning moves the "
        "global accuracy; defenses must handle both."
    )


if __name__ == "__main__":
    main()
