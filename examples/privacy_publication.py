"""Scenario: privacy-preserving data publication (the paper's motivating
example from Sec. I).

An internet platform wants to publish a social graph but first perturbs user
links and profiles so individuals are harder to re-identify, while a data
consumer still needs the published graph to be *useful* for node
classification.  This script uses PEEGA as the perturbation engine (its
representation-difference objective maximizes how much published embeddings
deviate from the originals — a privacy proxy) and measures the
privacy/utility trade-off across publication budgets, with and without a
GNAT-hardened consumer.
"""

import numpy as np

from repro.core import GNAT, PEEGA, DifferenceObjective
from repro.datasets import load_dataset
from repro.defenses import RawGCN


def embedding_shift(graph, published) -> float:
    """Mean per-node surrogate-representation shift (privacy proxy)."""
    objective = DifferenceObjective(graph, lam=0.0)
    value = objective(published.dense_adjacency(), published.features).item()
    return value / graph.num_nodes


def main() -> None:
    graph = load_dataset("cora", scale=0.15, seed=0)
    print(f"original graph: {graph.summary()}\n")
    print(f"{'budget':>8} | {'embed-shift':>12} | {'GCN utility':>12} | {'GNAT utility':>12}")
    print("-" * 56)

    for rate in (0.0, 0.05, 0.1, 0.2):
        if rate == 0.0:
            published = graph
        else:
            published = PEEGA(lam=0.02, focus_training_nodes=False, seed=0).attack(graph, perturbation_rate=rate).poisoned
        shift = embedding_shift(graph, published)
        gcn = np.mean(
            [RawGCN(seed=s).fit(published).test_accuracy for s in range(2)]
        )
        gnat = np.mean(
            [GNAT(seed=s).fit(published).test_accuracy for s in range(2)]
        )
        print(f"{rate:>8.2f} | {shift:>12.4f} | {gcn:>12.3f} | {gnat:>12.3f}")

    print(
        "\nReading: a larger publication budget moves user embeddings further "
        "(more privacy) but costs the consumer accuracy; a GNAT-hardened "
        "consumer retains more utility at every budget."
    )


if __name__ == "__main__":
    main()
