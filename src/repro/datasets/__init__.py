"""Dataset substrate: synthetic generators, registry, splits."""

from .registry import DATASETS, SCALE_TIERS, DatasetSpec, dataset_names, load_dataset
from .splits import split_counts, stratified_split
from .synthetic import (
    StreamedSBMSpec,
    SyntheticSpec,
    attach_identity_features,
    generate_graph,
    generate_streamed_sbm,
)

__all__ = [
    "DATASETS",
    "SCALE_TIERS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "SyntheticSpec",
    "StreamedSBMSpec",
    "generate_graph",
    "generate_streamed_sbm",
    "attach_identity_features",
    "stratified_split",
    "split_counts",
]
