"""Dataset substrate: synthetic generators, registry, splits."""

from .registry import DATASETS, DatasetSpec, dataset_names, load_dataset
from .splits import split_counts, stratified_split
from .synthetic import SyntheticSpec, attach_identity_features, generate_graph

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "SyntheticSpec",
    "generate_graph",
    "attach_identity_features",
    "stratified_split",
    "split_counts",
]
