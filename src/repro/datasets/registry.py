"""Named dataset registry calibrated to the paper's Table III.

``load_dataset("cora")`` yields a synthetic stand-in matching Cora's node,
edge, class, and feature counts (see DESIGN.md's substitution table); a
``scale`` parameter shrinks every count proportionally so the full
experiment grid runs quickly on a laptop while preserving graph statistics
(mean degree, homophily, class balance, feature sparsity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DatasetError
from ..graph import Graph, validate_graph
from ..utils.rng import SeedLike, ensure_rng
from .splits import stratified_split
from .synthetic import (
    StreamedSBMSpec,
    SyntheticSpec,
    generate_graph,
    generate_streamed_sbm,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SCALE_TIERS",
    "load_dataset",
    "dataset_names",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Full-scale statistics of a named dataset (paper's Table III)."""

    name: str
    num_nodes: int
    num_edges: int
    num_classes: int
    feature_dim: int  # 0 = identity features (Polblogs)
    homophily: float
    feature_bits: float = 14.0
    feature_signal: float = 0.75
    hard_fraction: float = 0.4
    hard_mix: float = 0.85
    view_correlation: float = 0.7
    degree_exponent: float = 2.0
    prototype_fraction: float = 0.05
    min_feature_dim: int = 48
    degree_scale_power: float = 0.0

    # degree_scale_power controls how mean degree shrinks when the graph is
    # scaled down: 0 preserves mean degree (right for sparse citation
    # graphs), 0.5 shrinks it by sqrt(scale) (needed for dense graphs like
    # Polblogs whose density would otherwise saturate the pair space at
    # small n and flatten the degree distribution).

    def scaled(self, scale: float) -> SyntheticSpec:
        """Build a generator spec with every count scaled by ``scale``."""
        if not 0.0 < scale <= 1.0:
            raise DatasetError(f"scale must lie in (0, 1], got {scale}")
        num_nodes = max(80, int(round(self.num_nodes * scale)))
        # Preserve mean degree under scaling (modulated by degree_scale_power
        # for dense graphs — see field comment above).
        mean_degree = 2.0 * self.num_edges / self.num_nodes
        mean_degree *= scale**self.degree_scale_power
        num_edges = max(num_nodes, int(round(mean_degree * num_nodes / 2.0)))
        # Feature dimensionality is deliberately NOT scaled down: the
        # relative power of a single feature-bit flip (Fig 5a's FP-vs-TM
        # claim), feature sparsity, and cosine/Jaccard behaviour all depend
        # on the real dimensionality, and dense (n, d) arrays remain cheap
        # at reduced node counts.
        feature_dim = self.feature_dim
        return SyntheticSpec(
            num_nodes=num_nodes,
            num_edges=num_edges,
            num_classes=self.num_classes,
            feature_dim=feature_dim,
            homophily=self.homophily,
            feature_bits=self.feature_bits,
            feature_signal=self.feature_signal,
            hard_fraction=self.hard_fraction,
            hard_mix=self.hard_mix,
            view_correlation=self.view_correlation,
            degree_exponent=self.degree_exponent,
            prototype_fraction=self.prototype_fraction,
        )


DATASETS: dict[str, DatasetSpec] = {
    # Cora: citation network, 7 topics, sparse binary bag-of-words.
    "cora": DatasetSpec(
        name="cora",
        num_nodes=2485,
        num_edges=5069,
        num_classes=7,
        feature_dim=1433,
        homophily=0.81,
    ),
    # Citeseer: citation network, 6 topics, higher-dimensional features,
    # lower clean accuracy (paper: 0.72) than Cora.
    "citeseer": DatasetSpec(
        name="citeseer",
        num_nodes=2110,
        num_edges=3668,
        num_classes=6,
        feature_dim=3703,
        homophily=0.74,
        feature_bits=16.0,
        hard_fraction=0.55,
        hard_mix=0.9,
    ),
    # Polblogs: 2 dense political communities, identity features.
    "polblogs": DatasetSpec(
        name="polblogs",
        num_nodes=1222,
        num_edges=16714,
        num_classes=2,
        feature_dim=0,
        homophily=0.91,
        degree_exponent=1.3,
        degree_scale_power=0.5,
    ),
}


# Scale tiers for the sampled-block attackers (ROADMAP item 1): streamed
# degree-corrected SBM graphs far beyond what the Table III stand-ins (or
# any O(n²) attacker) can reach.  Degree stays sparse-citation-like;
# feature_dim shrinks with n so the (n, d) feature matrix stays resident.
SCALE_TIERS: dict[str, StreamedSBMSpec] = {
    "sbm-10k": StreamedSBMSpec(
        num_nodes=10_000, avg_degree=8.0, num_classes=8, feature_dim=64
    ),
    "sbm-100k": StreamedSBMSpec(
        num_nodes=100_000, avg_degree=8.0, num_classes=10, feature_dim=32
    ),
    "sbm-1m": StreamedSBMSpec(
        num_nodes=1_000_000, avg_degree=6.0, num_classes=12, feature_dim=16
    ),
}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(DATASETS) + sorted(SCALE_TIERS)


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: SeedLike = 0,
    train_frac: float = 0.1,
    val_frac: float = 0.1,
    validate: str = "strict",
) -> Graph:
    """Generate the named dataset with stratified 10/10/80 splits attached.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    scale:
        Proportional size factor in ``(0, 1]``; 1.0 reproduces the paper's
        Table III statistics.
    seed:
        Controls both graph generation and split sampling.
    validate:
        Graph contract validation policy applied to the generated graph
        (``strict``/``repair``/``off`` — see
        :func:`repro.graph.validate_graph`).
    """
    key = name.lower()
    rng = ensure_rng(seed)
    if key in SCALE_TIERS:
        sbm_spec = SCALE_TIERS[key].scaled(scale)
        graph = generate_streamed_sbm(sbm_spec, seed=rng, name=key)
    elif key in DATASETS:
        spec = DATASETS[key].scaled(scale)
        graph = generate_graph(spec, seed=rng, name=key)
    else:
        raise DatasetError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    graph = stratified_split(graph, train_frac=train_frac, val_frac=val_frac, seed=rng)
    return validate_graph(graph, policy=validate, context=f"dataset {key}")
