"""Train/validation/test node splits.

The paper (Sec. V-A1) follows the Nettack/Metattack/Pro-GNN convention:
10% of nodes for training, 10% for validation, 80% for testing, sampled at
random.  :func:`stratified_split` additionally stratifies by class so small
classes remain represented in the labeled set.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..errors import DatasetError
from ..graph import Graph
from ..utils.rng import SeedLike, ensure_rng

__all__ = ["stratified_split", "split_counts"]


def split_counts(num_nodes: int, train_frac: float, val_frac: float) -> tuple[int, int, int]:
    """Integer (train, val, test) sizes for the given fractions."""
    if not (0 < train_frac < 1 and 0 < val_frac < 1 and train_frac + val_frac < 1):
        raise DatasetError(
            f"invalid split fractions train={train_frac}, val={val_frac}"
        )
    n_train = max(1, int(round(num_nodes * train_frac)))
    n_val = max(1, int(round(num_nodes * val_frac)))
    n_test = num_nodes - n_train - n_val
    if n_test <= 0:
        raise DatasetError("split fractions leave no test nodes")
    return n_train, n_val, n_test


def stratified_split(
    graph: Graph,
    train_frac: float = 0.1,
    val_frac: float = 0.1,
    seed: SeedLike = None,
) -> Graph:
    """Return ``graph`` with stratified boolean train/val/test masks attached."""
    if graph.labels is None:
        raise DatasetError("stratified_split requires labels")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    n_train, n_val, _ = split_counts(n, train_frac, val_frac)

    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)

    # Per-class proportional allocation (at least one train node per class).
    classes = np.unique(graph.labels)
    order = []
    for cls in classes:
        members = np.flatnonzero(graph.labels == cls)
        members = rng.permutation(members)
        cls_train = max(1, int(round(len(members) * train_frac)))
        cls_val = max(1, int(round(len(members) * val_frac)))
        train_mask[members[:cls_train]] = True
        val_mask[members[cls_train : cls_train + cls_val]] = True
        order.extend(members[cls_train + cls_val :])

    # Trim/extend to hit the exact global counts.
    def _resize(mask: np.ndarray, target: int, pool: np.ndarray) -> None:
        current = int(mask.sum())
        if current > target:
            extra = rng.choice(np.flatnonzero(mask), size=current - target, replace=False)
            mask[extra] = False
        elif current < target:
            free = pool[~mask[pool] & ~train_mask[pool] & ~val_mask[pool]]
            take = rng.choice(free, size=min(target - current, len(free)), replace=False)
            mask[take] = True

    remaining = np.asarray(order, dtype=np.int64)
    _resize(train_mask, n_train, remaining)
    _resize(val_mask, n_val, remaining)
    test_mask = ~(train_mask | val_mask)

    return replace(graph, train_mask=train_mask, val_mask=val_mask, test_mask=test_mask)
