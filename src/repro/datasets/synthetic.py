"""Synthetic attributed-graph generators.

The paper evaluates on Cora, Citeseer, and Polblogs as shipped by DeepRobust.
Those archives are network downloads and unavailable offline, so this module
builds statistically equivalent graphs from first principles:

* topology: a degree-corrected planted-partition model (Chung–Lu weights
  inside/between blocks) that matches each dataset's node count, edge count,
  class count, and edge homophily (Fig 1 reports >70% same-label edges on all
  of them — the property PEEGA's global view and GNAT's augmentations rely
  on);
* features: sparse binary bags-of-words whose active bits are drawn mostly
  from per-class prototype dimensions, reproducing the feature-similarity
  signal GCN-Jaccard and GNAT's feature graph exploit;
* Polblogs: an identity feature matrix (as in the paper), two dense
  communities, high homophily — reproducing the edge case where
  feature-based defenses are inapplicable (Table VI's footnote).

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import DatasetError
from ..graph import Graph
from ..utils.rng import SeedLike, ensure_rng

__all__ = [
    "SyntheticSpec",
    "generate_graph",
    "attach_identity_features",
    "StreamedSBMSpec",
    "generate_streamed_sbm",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of the degree-corrected planted-partition generator.

    Attributes
    ----------
    num_nodes / num_edges / num_classes:
        Target sizes; the realized edge count may differ by a few edges after
        de-duplication.
    feature_dim:
        Number of binary feature dimensions; 0 requests identity features
        (the Polblogs convention).
    homophily:
        Target fraction of intra-class edges.
    degree_exponent:
        Pareto tail exponent for the Chung–Lu degree weights; smaller means
        heavier-tailed degree distributions.
    feature_bits:
        Expected number of active bits per node.
    feature_signal:
        Fraction of a node's active bits drawn from its class prototype
        dimensions (the rest are noise).
    hard_fraction:
        Fraction of nodes that are "hard" — genuinely ambiguous between
        their label and a per-node confounder class, like interdisciplinary
        papers in a citation graph.  A hard node draws ``hard_mix`` of its
        feature-signal bits from the confounder's prototype and hosts the
        graph's inter-class edges (also toward its confounder).  This
        correlated two-view ambiguity is what calibrates clean GCN accuracy
        to the paper's 0.72–0.84 range while leaving feature similarity
        class-informative on the easy majority — the property
        Jaccard/cosine-based defenses rely on, as on the real datasets.
    hard_mix:
        Confounder share of a hard node's signal bits (0.5 = maximally
        ambiguous).
    view_correlation:
        Probability that a topology-hard node is *also* feature-hard.  Below
        1.0, some nodes have poisoned neighborhoods but clean features —
        exactly the nodes feature-similarity defenses (GCN-Jaccard, SimPGCN,
        GNAT's feature/ego views) can rescue, as on the real datasets where
        citation noise and word noise are only partially correlated.
    prototype_fraction:
        Fraction of feature dimensions assigned to each class prototype.
    class_skew:
        Dirichlet concentration controlling class-size imbalance
        (large = balanced).
    """

    num_nodes: int
    num_edges: int
    num_classes: int
    feature_dim: int
    homophily: float = 0.81
    degree_exponent: float = 2.0
    feature_bits: float = 14.0
    feature_signal: float = 0.75
    hard_fraction: float = 0.4
    hard_mix: float = 0.6
    view_correlation: float = 0.7
    prototype_fraction: float = 0.05
    class_skew: float = 24.0

    def __post_init__(self) -> None:
        if self.num_nodes < self.num_classes or self.num_classes < 2:
            raise DatasetError(
                f"need at least {self.num_classes} nodes and 2 classes, got "
                f"nodes={self.num_nodes}, classes={self.num_classes}"
            )
        if self.num_edges < self.num_nodes // 2:
            raise DatasetError("edge target too small to keep the graph connected")
        if not 0.0 < self.homophily < 1.0:
            raise DatasetError(f"homophily must lie in (0, 1), got {self.homophily}")


def _sample_labels(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    proportions = rng.dirichlet(np.full(spec.num_classes, spec.class_skew))
    labels = rng.choice(spec.num_classes, size=spec.num_nodes, p=proportions)
    # Guarantee every class is populated enough to stratify splits later.
    minimum = max(3, spec.num_nodes // (spec.num_classes * 20))
    for cls in range(spec.num_classes):
        shortfall = minimum - int((labels == cls).sum())
        if shortfall > 0:
            donors = np.flatnonzero(labels != cls)
            labels[rng.choice(donors, size=shortfall, replace=False)] = cls
    return labels


def _sample_confounders(
    spec: SyntheticSpec, labels: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-node confounder class and the topology/feature hardness masks.

    The confounder drives both a hard node's inter-class edges and (when the
    node is also feature-hard, probability ``view_correlation``) its mixed
    feature-signal bits.  Correlated-but-not-identical ambiguity across the
    two views is the property real citation graphs have: an
    interdisciplinary paper usually cites and resembles the same neighboring
    field, but not always both.  It is the reason GCN accuracy saturates
    well below the homophily level *and* the reason feature-based defenses
    can recover part of the gap.
    """
    confounders = np.array(
        [
            rng.choice([c for c in range(spec.num_classes) if c != label])
            for label in labels
        ],
        dtype=np.int64,
    )
    hard_topo = rng.random(spec.num_nodes) < spec.hard_fraction
    hard_feat = hard_topo & (rng.random(spec.num_nodes) < spec.view_correlation)
    return confounders, hard_topo, hard_feat


def _sample_edges(
    spec: SyntheticSpec,
    labels: np.ndarray,
    confounders: np.ndarray,
    hard: np.ndarray,
    rng: np.random.Generator,
) -> sp.csr_matrix:
    """Chung–Lu edge sampling with a planted-partition block structure."""
    n = spec.num_nodes
    weights = rng.pareto(spec.degree_exponent, size=n) + 1.0
    class_members = [np.flatnonzero(labels == cls) for cls in range(spec.num_classes)]
    # Hard nodes participate less in same-class edges: their degree budget is
    # mostly consumed by confounder links, so their edge mix is genuinely
    # ambiguous while easy nodes keep clean neighborhoods.
    intra_weights = np.where(hard, 0.25 * weights, weights)
    class_probs = []
    for members in class_members:
        w = intra_weights[members]
        class_probs.append(w / w.sum())
    class_mass = np.array([intra_weights[m].sum() for m in class_members])
    class_pick = class_mass / class_mass.sum()
    # Inter edges land preferentially on hard members of the target class.
    inter_target_weights = np.where(hard, 4.0 * weights, weights)
    inter_target_probs = []
    for members in class_members:
        w = inter_target_weights[members]
        inter_target_probs.append(w / w.sum())

    target_intra = int(round(spec.num_edges * spec.homophily))
    target_inter = spec.num_edges - target_intra
    edges: set[tuple[int, int]] = set()

    def add_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in edges:
            return False
        edges.add(key)
        return True

    # Intra-class edges.
    attempts = 0
    max_attempts = 50 * target_intra + 1000
    intra_added = 0
    while intra_added < target_intra and attempts < max_attempts:
        attempts += 1
        cls = rng.choice(spec.num_classes, p=class_pick)
        members = class_members[cls]
        if len(members) < 2:
            continue
        u, v = rng.choice(members, size=2, p=class_probs[cls])
        if add_edge(int(u), int(v)):
            intra_added += 1

    # Inter-class edges: a *hard* node links into its confounder class, so
    # topology ambiguity and feature ambiguity coincide per node.
    attempts = 0
    max_attempts = 50 * target_inter + 1000
    inter_added = 0
    hard_nodes = np.flatnonzero(hard)
    if len(hard_nodes) == 0:
        hard_nodes = np.arange(n)
    hard_probs = weights[hard_nodes] / weights[hard_nodes].sum()
    while inter_added < target_inter and attempts < max_attempts:
        attempts += 1
        u = int(rng.choice(hard_nodes, p=hard_probs))
        target_class = confounders[u]
        members = class_members[target_class]
        if len(members) == 0:
            continue
        v = int(rng.choice(members, p=inter_target_probs[target_class]))
        if add_edge(u, v):
            inter_added += 1

    rows, cols = (
        np.array([e[0] for e in edges], dtype=np.int64),
        np.array([e[1] for e in edges], dtype=np.int64),
    )
    data = np.ones(len(edges))
    adjacency = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    adjacency = adjacency + adjacency.T
    adjacency = adjacency.tocsr()
    adjacency.data = np.ones_like(adjacency.data)

    # Reconnect isolated nodes to a random same-class partner so the LCC
    # retains (almost) all nodes, as DeepRobust's preprocessed datasets do.
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    lonely = np.flatnonzero(degrees == 0)
    if len(lonely):
        adjacency = adjacency.tolil()
        for node in lonely:
            candidates = class_members[labels[node]]
            candidates = candidates[candidates != node]
            if len(candidates) == 0:
                candidates = np.setdiff1d(np.arange(n), [node])
            partner = int(rng.choice(candidates))
            adjacency[node, partner] = 1.0
            adjacency[partner, node] = 1.0
        adjacency = adjacency.tocsr()
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency


def _sample_features(
    spec: SyntheticSpec,
    labels: np.ndarray,
    confounders: np.ndarray,
    hard: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Binary bag-of-words features with per-class prototype dimensions.

    Easy nodes draw their signal bits purely from their class prototype;
    hard nodes split signal bits between their class and their confounder
    class (``hard_mix`` share).  The remaining bits are uniform background.
    """
    n, d = spec.num_nodes, spec.feature_dim
    prototype_size = max(4, int(round(d * spec.prototype_fraction)))
    prototypes = [
        rng.choice(d, size=min(prototype_size, d), replace=False)
        for _ in range(spec.num_classes)
    ]
    # Zipfian within-prototype word frequencies: a few core topic words are
    # shared by most members of a class (real bag-of-words behaviour), which
    # gives same-class pairs the non-trivial Jaccard overlap that
    # preprocessing defenses rely on.
    zipf = 1.0 / np.arange(1, prototype_size + 1)
    zipf /= zipf.sum()
    features = np.zeros((n, d), dtype=np.float64)
    for node in range(n):
        active = max(1, int(rng.poisson(spec.feature_bits)))
        n_signal = int(round(active * spec.feature_signal))
        if hard[node] and spec.num_classes > 1:
            # Feature-hard nodes are feature-*agnostic*: most of their signal
            # budget is replaced by diffuse foreign-field vocabulary (one
            # random other class per bit), the way real bag-of-words noise
            # spreads.  Their features neither identify the right class nor
            # confidently point at a wrong one — unlike their citations,
            # which concentrate on the confounder class.
            n_confusion = int(round(n_signal * spec.hard_mix))
            n_own = n_signal - n_confusion
            other_classes = [c for c in range(spec.num_classes) if c != labels[node]]
            for _ in range(n_confusion):
                foreign = prototypes[int(rng.choice(other_classes))]
                features[node, int(rng.choice(foreign, p=zipf[: len(foreign)]))] = 1.0
        else:
            n_own = n_signal
        prototype = prototypes[labels[node]]
        signal = rng.choice(
            prototype, size=min(n_own, len(prototype)), replace=False, p=zipf[: len(prototype)]
        )
        n_background = max(0, active - n_signal)
        background = rng.choice(d, size=n_background, replace=True)
        features[node, signal] = 1.0
        features[node, background] = 1.0
    # No node may have an all-zero feature row (breaks cosine similarity).
    empty = np.flatnonzero(features.sum(axis=1) == 0)
    for node in empty:
        features[node, rng.integers(0, d)] = 1.0
    return features


def attach_identity_features(adjacency: sp.spmatrix) -> np.ndarray:
    """Identity feature matrix — the paper's Polblogs convention."""
    return np.eye(adjacency.shape[0], dtype=np.float64)


def generate_graph(spec: SyntheticSpec, seed: SeedLike = None, name: str = "synthetic") -> Graph:
    """Generate an attributed graph from ``spec``.

    Returns a :class:`~repro.graph.Graph` with labels but no splits (use
    :func:`repro.datasets.splits.stratified_split` to add masks).
    """
    rng = ensure_rng(seed)
    labels = _sample_labels(spec, rng)
    confounders, hard_topo, hard_feat = _sample_confounders(spec, labels, rng)
    adjacency = _sample_edges(spec, labels, confounders, hard_topo, rng)
    if spec.feature_dim > 0:
        features = _sample_features(spec, labels, confounders, hard_feat, rng)
    else:
        features = attach_identity_features(adjacency)
    return Graph(adjacency=adjacency, features=features, labels=labels, name=name)


# ---------------------------------------------------------------------------
# Streamed degree-corrected SBM: the 100k–1M-node scale tiers.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamedSBMSpec:
    """Parameters of the streamed degree-corrected SBM generator.

    :class:`SyntheticSpec`'s generator is faithful but per-node Python
    (rejection-sampled edge sets, row loops for features) — fine at 3k
    nodes, hopeless at 1M.  This spec drives :func:`generate_streamed_sbm`,
    which produces the same family of graphs (Chung–Lu degrees inside a
    planted partition, binary prototype features) with fully vectorized
    draws and a direct CSR build: nothing of size O(n²) — or even
    O(n·avg_degree) Python objects — is ever materialized.

    Attributes
    ----------
    num_nodes / avg_degree / num_classes:
        Target sizes; the realized edge count lands within a few percent of
        ``num_nodes · avg_degree / 2`` after de-duplication.
    feature_dim:
        Binary feature dimensions.  Must be ≥ 1: identity features are an
        n×n matrix, which is exactly what this generator exists to avoid.
    homophily:
        Target fraction of intra-class edges.
    degree_exponent:
        Pareto tail exponent for the Chung–Lu weights.
    feature_bits / feature_signal:
        Expected active bits per node and the fraction drawn from the
        class prototype dimensions.
    class_skew:
        Dirichlet concentration controlling class-size imbalance.
    max_rounds:
        Oversample-and-dedup rounds before accepting an edge shortfall
        (heavy-tailed weights make a few percent of draws collide).
    """

    num_nodes: int
    avg_degree: float = 8.0
    num_classes: int = 10
    feature_dim: int = 32
    homophily: float = 0.8
    degree_exponent: float = 2.0
    feature_bits: float = 6.0
    feature_signal: float = 0.75
    class_skew: float = 24.0
    max_rounds: int = 12

    def __post_init__(self) -> None:
        if self.num_nodes < 2 * self.num_classes or self.num_classes < 2:
            raise DatasetError(
                f"need at least {2 * self.num_classes} nodes and 2 classes, got "
                f"nodes={self.num_nodes}, classes={self.num_classes}"
            )
        if self.feature_dim < 1:
            raise DatasetError(
                "streamed SBM requires feature_dim >= 1 (identity features "
                "would densify to n×n)"
            )
        if self.avg_degree < 1.0:
            raise DatasetError(f"avg_degree must be >= 1, got {self.avg_degree}")
        if not 0.0 < self.homophily < 1.0:
            raise DatasetError(f"homophily must lie in (0, 1), got {self.homophily}")

    def scaled(self, scale: float) -> "StreamedSBMSpec":
        """Shrink the node count by ``scale`` (density/degree preserved)."""
        from dataclasses import replace as dc_replace

        if not 0.0 < scale <= 1.0:
            raise DatasetError(f"scale must lie in (0, 1], got {scale}")
        nodes = max(2 * self.num_classes, int(round(self.num_nodes * scale)))
        return dc_replace(self, num_nodes=nodes)


def _streamed_labels(spec: StreamedSBMSpec, rng: np.random.Generator) -> np.ndarray:
    proportions = rng.dirichlet(np.full(spec.num_classes, spec.class_skew))
    labels = rng.choice(spec.num_classes, size=spec.num_nodes, p=proportions)
    # Every class needs enough members to stratify splits later; fix any
    # shortfall by relabeling donors from the largest class.
    minimum = max(3, spec.num_nodes // (spec.num_classes * 50))
    counts = np.bincount(labels, minlength=spec.num_classes)
    for cls in np.flatnonzero(counts < minimum):
        shortfall = minimum - counts[cls]
        donor_cls = int(np.argmax(counts))
        donors = np.flatnonzero(labels == donor_cls)[:shortfall]
        labels[donors] = cls
        counts = np.bincount(labels, minlength=spec.num_classes)
    return labels


def _sample_endpoint_pairs(
    rng: np.random.Generator,
    cdf_u: np.ndarray,
    members_u: np.ndarray,
    cdf_v: np.ndarray,
    members_v: np.ndarray,
    count: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` weighted endpoint pairs via inverse-CDF searchsorted."""
    uu = members_u[np.searchsorted(cdf_u, rng.random(count), side="right")]
    vv = members_v[np.searchsorted(cdf_v, rng.random(count), side="right")]
    return uu, vv


def generate_streamed_sbm(
    spec: StreamedSBMSpec, seed: SeedLike = None, name: str = "streamed-sbm"
) -> Graph:
    """Generate a degree-corrected SBM graph without ever densifying.

    The pipeline is a fixed number of vectorized passes:

    1. labels from a Dirichlet-multinomial, Chung–Lu Pareto weights;
    2. the edge budget is split intra/inter by ``homophily`` and allocated
       across class pairs with one multinomial draw (intra mass ∝ squared
       class weight-mass, inter mass ∝ the pair's mass product);
    3. per class pair, endpoints are drawn weight-proportionally by
       inverse-CDF ``searchsorted``; self-pairs are dropped, duplicates are
       removed via canonical ``min·n + max`` keys, and the shortfall is
       redrawn for up to ``max_rounds`` oversampled rounds;
    4. the CSR is assembled directly — ``lexsort`` over the mirrored
       endpoint arrays, ``bincount``/``cumsum`` for ``indptr`` — bypassing
       COO conversion and its duplicate-summing machinery;
    5. features are one Bernoulli matrix draw against a per-class
       probability row (prototype dimensions boosted, background uniform).

    Peak memory is O(E + n·feature_dim); ``tests/test_streamed_sbm.py``
    holds a tracemalloc guard at the 100k tier to keep it that way.
    """
    rng = ensure_rng(seed)
    n = spec.num_nodes
    c = spec.num_classes
    labels = _streamed_labels(spec, rng)
    weights = rng.pareto(spec.degree_exponent, size=n) + 1.0

    class_members: list[np.ndarray] = []
    class_cdfs: list[np.ndarray] = []
    class_mass = np.zeros(c, dtype=np.float64)
    for cls in range(c):
        members = np.flatnonzero(labels == cls)
        w = weights[members]
        total = float(w.sum())
        class_members.append(members)
        class_cdfs.append(np.cumsum(w) / total)
        class_mass[cls] = total

    target_edges = int(round(n * spec.avg_degree / 2.0))
    target_intra = int(round(target_edges * spec.homophily))
    target_inter = target_edges - target_intra

    # Allocate the intra budget across classes and the inter budget across
    # unordered class pairs with single multinomial draws.
    intra_probs = class_mass**2 / float((class_mass**2).sum())
    intra_counts = rng.multinomial(target_intra, intra_probs)
    pair_a, pair_b = np.triu_indices(c, k=1)
    pair_mass = class_mass[pair_a] * class_mass[pair_b]
    inter_probs = pair_mass / float(pair_mass.sum())
    inter_counts = rng.multinomial(target_inter, inter_probs)

    def fill_pool(
        cls_u: int, cls_v: int, quota: int
    ) -> np.ndarray:
        """Collect ``quota`` unique canonical pair keys for one class pair."""
        pool = np.empty(0, dtype=np.int64)
        for _ in range(spec.max_rounds):
            deficit = quota - len(pool)
            if deficit <= 0:
                break
            draw = int(deficit * 1.25) + 16
            uu, vv = _sample_endpoint_pairs(
                rng,
                class_cdfs[cls_u],
                class_members[cls_u],
                class_cdfs[cls_v],
                class_members[cls_v],
                draw,
            )
            keep = uu != vv
            lo = np.minimum(uu[keep], vv[keep]).astype(np.int64)
            hi = np.maximum(uu[keep], vv[keep]).astype(np.int64)
            pool = np.unique(np.concatenate([pool, lo * n + hi]))
        if len(pool) > quota:
            pool = np.sort(rng.choice(pool, size=quota, replace=False))
        return pool

    pools = [fill_pool(cls, cls, int(q)) for cls, q in enumerate(intra_counts)]
    pools += [
        fill_pool(int(a), int(b), int(q))
        for a, b, q in zip(pair_a, pair_b, inter_counts)
    ]
    # Intra pools (same-label pairs) and inter pools (different-label pairs)
    # are disjoint key sets, and distinct class pairs cannot collide either —
    # one concatenate gives the global unique edge list.
    keys = np.concatenate([p for p in pools if len(p)])
    uu, vv = keys // n, keys % n

    # Reconnect isolated nodes to a weight-proportional same-class partner.
    degree = np.bincount(uu, minlength=n) + np.bincount(vv, minlength=n)
    lonely = np.flatnonzero(degree == 0)
    if len(lonely):
        extra = np.empty(len(lonely), dtype=np.int64)
        for i, node in enumerate(lonely):
            cls = int(labels[node])
            members = class_members[cls]
            partner = int(
                members[np.searchsorted(class_cdfs[cls], rng.random(), side="right")]
            )
            attempts = 0
            while partner == node and attempts < 20:
                partner = int(
                    members[
                        np.searchsorted(class_cdfs[cls], rng.random(), side="right")
                    ]
                )
                attempts += 1
            if partner == node:
                partner = (node + 1) % n
            lo, hi = (node, partner) if node < partner else (partner, node)
            extra[i] = lo * n + hi
        keys = np.unique(np.concatenate([keys, extra]))
        uu, vv = keys // n, keys % n

    # Direct CSR build from the mirrored endpoint arrays.
    rows = np.concatenate([uu, vv])
    cols = np.concatenate([vv, uu])
    order = np.lexsort((cols, rows))
    indices = cols[order].astype(np.int32 if n < 2**31 else np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    data = np.ones(len(rows), dtype=np.float64)
    adjacency = sp.csr_matrix((data, indices, indptr), shape=(n, n))

    # Features: one Bernoulli draw per node row against its class profile.
    d = spec.feature_dim
    background = spec.feature_bits * (1.0 - spec.feature_signal) / d
    proto_size = max(1, d // c)
    prob = np.full((c, d), background, dtype=np.float64)
    for cls in range(c):
        start = (cls * proto_size) % d
        dims = (start + np.arange(proto_size)) % d
        prob[cls, dims] += spec.feature_bits * spec.feature_signal / proto_size
    np.clip(prob, 0.0, 0.9, out=prob)
    features = (rng.random((n, d)) < prob[labels]).astype(np.float64)
    empty = np.flatnonzero(features.sum(axis=1) == 0)
    if len(empty):
        features[empty, rng.integers(0, d, size=len(empty))] = 1.0

    return Graph(adjacency=adjacency, features=features, labels=labels, name=name)
