"""repro — reproduction of "Black-box Adversarial Attack and Defense on
Graph Neural Networks" (Li et al., ICDE 2022).

The package implements the paper's black-box attacker **PEEGA** and
graph-augmentation defender **GNAT**, together with every substrate the
evaluation depends on, from scratch in NumPy/SciPy:

* ``repro.tensor``      -- reverse-mode autodiff engine + optimizers
* ``repro.graph``       -- graph container, GCN normalization, perturbations
* ``repro.datasets``    -- synthetic Cora/Citeseer/Polblogs stand-ins
* ``repro.nn``          -- GCN, GAT, training loop, metrics
* ``repro.surrogate``   -- the linearized ``A_n^l X`` propagation surrogate
* ``repro.core``        -- PEEGA and GNAT (the paper's contributions)
* ``repro.attacks``     -- PGD, MinMax, Metattack, GF-Attack, Random, DICE
* ``repro.defenses``    -- GCN-Jaccard, GCN-SVD, RGCN, Pro-GNN, SimPGCN
* ``repro.analysis``    -- homophily, edge-diff, cross-label similarity
* ``repro.experiments`` -- the harness regenerating every table and figure

Quickstart::

    from repro.datasets import load_dataset
    from repro.core import PEEGA, GNAT

    graph = load_dataset("cora", scale=0.15, seed=0)
    poisoned = PEEGA(seed=0).attack(graph, perturbation_rate=0.1).poisoned
    result = GNAT(seed=0).fit(poisoned)
    print(f"GNAT accuracy on the poisoned graph: {result.test_accuracy:.3f}")
"""

from . import analysis, attacks, core, datasets, defenses, experiments, graph, nn
from .core import GNAT, PEEGA
from .datasets import load_dataset
from .graph import Graph

__version__ = "1.0.0"

__all__ = [
    "PEEGA",
    "GNAT",
    "Graph",
    "load_dataset",
    "analysis",
    "attacks",
    "core",
    "datasets",
    "defenses",
    "experiments",
    "graph",
    "nn",
    "__version__",
]
