"""Simple Graph Convolution (Wu et al., 2019).

``Z = softmax(A_n^K X W)`` — the linearized GCN that PEEGA's surrogate
(Eq. 7) and GF-Attack's filter view are modelled on.  Included both as a
victim model for transferability experiments and as the reference point
that makes the surrogate's fidelity testable.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, functional as F, glorot_uniform, zeros
from ..utils.rng import SeedLike, ensure_rng
from .gcn import AdjacencyLike, _propagate
from .module import Module

__all__ = ["SGC"]


class SGC(Module):
    """K-step propagation followed by one linear layer.

    The adjacency passed to :meth:`forward` must already be GCN-normalized;
    propagation applies it ``k_hops`` times (no nonlinearity), then a single
    weight matrix maps to class logits.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        k_hops: int = 2,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if k_hops < 1:
            raise ValueError(f"k_hops must be >= 1, got {k_hops}")
        rng = ensure_rng(seed)
        self.weight = glorot_uniform(in_dim, out_dim, rng)
        self.bias = zeros(out_dim)
        self.k_hops = int(k_hops)

    def forward(self, adjacency: AdjacencyLike, features: Tensor) -> Tensor:
        """Return raw logits ``(n, out_dim)``."""
        h = features if isinstance(features, Tensor) else Tensor(features)
        for _ in range(self.k_hops):
            h = _propagate(adjacency, h)
        return h.matmul(self.weight) + self.bias

    def predict(self, adjacency: AdjacencyLike, features: Tensor) -> np.ndarray:
        """Hard label predictions (no dropout, so mode is irrelevant)."""
        logits = self.forward(adjacency, features)
        return np.argmax(logits.data, axis=1)
