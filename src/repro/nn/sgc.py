"""Simple Graph Convolution (Wu et al., 2019).

``Z = softmax(A_n^K X W)`` — the linearized GCN that PEEGA's surrogate
(Eq. 7) and GF-Attack's filter view are modelled on.  Included both as a
victim model for transferability experiments and as the reference point
that makes the surrogate's fidelity testable.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, functional as F, glorot_uniform, zeros
from ..tensor.tensor import _needs_grad
from ..utils.rng import SeedLike, ensure_rng
from .gcn import AdjacencyLike, _propagate
from .module import Module

__all__ = ["SGC"]


def _adjacency_fingerprint(adjacency: sp.csr_matrix) -> tuple:
    """Cheap content hash of a CSR matrix (structure and values)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(adjacency.indptr.tobytes())
    digest.update(adjacency.indices.tobytes())
    digest.update(adjacency.data.tobytes())
    return (adjacency.shape, adjacency.nnz, digest.digest())


class SGC(Module):
    """K-step propagation followed by one linear layer.

    The adjacency passed to :meth:`forward` must already be GCN-normalized;
    propagation applies it ``k_hops`` times (no nonlinearity), then a single
    weight matrix maps to class logits.

    ``A_n^K X`` involves no parameters, so across a training run it is the
    same ``k_hops`` sparse products recomputed every epoch.  The forward
    pass memoizes the propagated features for the latest (adjacency,
    features) pair — keyed cheaply by object identity, revalidated by a
    content fingerprint of the adjacency, mirroring the surrogate's
    :class:`~repro.surrogate.cache.PropagationCache` keying — and recomputes
    silently whenever either changes.  The memo is bypassed when the
    features tensor itself participates in autodiff (the cached result
    carries no backward closure).  ``propagation_count`` counts actual
    propagation passes so tests can assert reuse.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        k_hops: int = 2,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if k_hops < 1:
            raise ValueError(f"k_hops must be >= 1, got {k_hops}")
        rng = ensure_rng(seed)
        self.weight = glorot_uniform(in_dim, out_dim, rng)
        self.bias = zeros(out_dim)
        self.k_hops = int(k_hops)
        self.propagation_count = 0
        self._memo_key: Optional[tuple] = None
        self._memo_fingerprint: Optional[tuple] = None
        self._memo_value: Optional[Tensor] = None

    def _propagated(self, adjacency: AdjacencyLike, h: Tensor) -> Tensor:
        if not sp.issparse(adjacency) or _needs_grad(h):
            return self._propagate_all(adjacency, h)
        key = (id(adjacency), id(h.data), self.k_hops)
        if self._memo_key == key and self._memo_fingerprint == _adjacency_fingerprint(
            adjacency
        ):
            return self._memo_value
        value = self._propagate_all(adjacency, h)
        self._memo_key = key
        self._memo_fingerprint = _adjacency_fingerprint(adjacency)
        self._memo_value = value
        return value

    def _propagate_all(self, adjacency: AdjacencyLike, h: Tensor) -> Tensor:
        self.propagation_count += 1
        for _ in range(self.k_hops):
            h = _propagate(adjacency, h)
        return h

    def forward(self, adjacency: AdjacencyLike, features: Tensor) -> Tensor:
        """Return raw logits ``(n, out_dim)``."""
        h = features if isinstance(features, Tensor) else Tensor(features)
        return self._propagated(adjacency, h).matmul(self.weight) + self.bias

    def predict(self, adjacency: AdjacencyLike, features: Tensor) -> np.ndarray:
        """Hard label predictions (no dropout, so mode is irrelevant)."""
        logits = self.forward(adjacency, features)
        return np.argmax(logits.data, axis=1)
