"""Simple Graph Convolution (Wu et al., 2019).

``Z = softmax(A_n^K X W)`` — the linearized GCN that PEEGA's surrogate
(Eq. 7) and GF-Attack's filter view are modelled on.  Included both as a
victim model for transferability experiments and as the reference point
that makes the surrogate's fidelity testable.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, functional as F, glorot_uniform, zeros
from ..tensor.tensor import _needs_grad
from ..utils.keystore import KeyedArtifactStore
from ..utils.rng import SeedLike, ensure_rng
from .gcn import AdjacencyLike, _propagate
from .module import Module

__all__ = ["SGC", "clear_propagation_cache"]


def _adjacency_fingerprint(adjacency: sp.csr_matrix) -> tuple:
    """Cheap content hash of a CSR matrix (structure and values)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(adjacency.indptr.tobytes())
    digest.update(adjacency.indices.tobytes())
    digest.update(adjacency.data.tobytes())
    return (adjacency.shape, adjacency.nnz, digest.digest())


def _features_fingerprint(data: np.ndarray) -> tuple:
    """Content hash of a dense feature matrix (shape, dtype, blake2b)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(data).tobytes())
    return (data.shape, str(data.dtype), digest.digest())


# Shared across SGC instances: A_n^K X depends only on graph content and
# k_hops, never on the weights, so every victim seed of a sweep cell (and
# both training engines) reuse one propagation.  Byte-accounted and
# LRU-evicted under the process ``--cache-bytes`` budget; an evicted entry
# is simply recomputed on the next forward.
_PROPAGATION_STORE = KeyedArtifactStore("sgc-propagation", max_entries=8)


def clear_propagation_cache() -> None:
    """Drop every memoized ``A_n^K X`` (tests asserting propagation counts)."""
    _PROPAGATION_STORE.clear()


class SGC(Module):
    """K-step propagation followed by one linear layer.

    The adjacency passed to :meth:`forward` must already be GCN-normalized;
    propagation applies it ``k_hops`` times (no nonlinearity), then a single
    weight matrix maps to class logits.

    ``A_n^K X`` involves no parameters, so across a training run it is the
    same ``k_hops`` sparse products recomputed every epoch.  The forward
    pass memoizes the propagated features in a process-wide
    :class:`~repro.utils.keystore.KeyedArtifactStore` keyed by *content*
    (adjacency and feature fingerprints plus ``k_hops``), with a cheap
    per-instance identity fast path revalidated by the adjacency
    fingerprint — mirroring the surrogate's
    :class:`~repro.surrogate.cache.PropagationCache` keying.  Content
    keying means different SGC instances (victim seeds, training engines)
    on the same graph share one propagation, and a mutated adjacency can
    never hit a stale entry.  The memo is bypassed when the features
    tensor itself participates in autodiff (the cached result carries no
    backward closure).  ``propagation_count`` counts actual propagation
    passes so tests can assert reuse (clear the shared store first via
    :func:`clear_propagation_cache`).
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        k_hops: int = 2,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if k_hops < 1:
            raise ValueError(f"k_hops must be >= 1, got {k_hops}")
        rng = ensure_rng(seed)
        self.weight = glorot_uniform(in_dim, out_dim, rng)
        self.bias = zeros(out_dim)
        self.k_hops = int(k_hops)
        self.propagation_count = 0
        self._memo_key: Optional[tuple] = None
        self._memo_fingerprint: Optional[tuple] = None
        self._memo_store_key: Optional[tuple] = None

    def _propagated(self, adjacency: AdjacencyLike, h: Tensor) -> Tensor:
        if not sp.issparse(adjacency) or _needs_grad(h):
            return self._propagate_all(adjacency, h)
        key = (id(adjacency), id(h.data), self.k_hops)
        adj_fp = _adjacency_fingerprint(adjacency)
        if not (self._memo_key == key and self._memo_fingerprint == adj_fp):
            # New (adjacency, features) pairing or mutated adjacency: rebuild
            # the content key (hashing features is the expensive part, so it
            # only happens here, not on the per-epoch fast path).
            self._memo_key = key
            self._memo_fingerprint = adj_fp
            self._memo_store_key = (adj_fp, _features_fingerprint(h.data), self.k_hops)
        cached = _PROPAGATION_STORE.get(self._memo_store_key)
        if cached is not None:
            return cached
        value = self._propagate_all(adjacency, h)
        _PROPAGATION_STORE.put(self._memo_store_key, value)
        return value

    def _propagate_all(self, adjacency: AdjacencyLike, h: Tensor) -> Tensor:
        self.propagation_count += 1
        for _ in range(self.k_hops):
            h = _propagate(adjacency, h)
        return h

    def forward(self, adjacency: AdjacencyLike, features: Tensor) -> Tensor:
        """Return raw logits ``(n, out_dim)``."""
        h = features if isinstance(features, Tensor) else Tensor(features)
        return self._propagated(adjacency, h).matmul(self.weight) + self.bias

    def predict(self, adjacency: AdjacencyLike, features: Tensor) -> np.ndarray:
        """Hard label predictions (no dropout, so mode is irrelevant)."""
        logits = self.forward(adjacency, features)
        return np.argmax(logits.data, axis=1)
