"""Graph Convolutional Network (Kipf & Welling, 2017) — the paper's Eq. 1.

Forward: ``Z = softmax(A_n · σ(A_n X W⁰) · W¹)`` where ``A_n`` is the
symmetric-normalized adjacency with self-loops.  The adjacency may be

* a SciPy sparse matrix (constant, fast training path), or
* a dense :class:`~repro.tensor.Tensor` (differentiable path, used by
  gradient-based attackers that backpropagate into the topology).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, functional as F, glorot_uniform, zeros
from ..utils.rng import SeedLike, ensure_rng
from .module import Module

AdjacencyLike = Union[sp.spmatrix, Tensor, np.ndarray]

__all__ = ["GraphConvolution", "GCN"]


def _propagate(adjacency: AdjacencyLike, x: Tensor) -> Tensor:
    """``adjacency @ x`` for sparse-constant or dense-tensor adjacency."""
    if sp.issparse(adjacency):
        return F.sparse_matmul(adjacency, x)
    if isinstance(adjacency, np.ndarray):
        adjacency = Tensor(adjacency)
    return adjacency.matmul(x)


class GraphConvolution(Module):
    """One GCN layer: ``A_n (X W) + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.weight = glorot_uniform(in_dim, out_dim, rng)
        self.bias = zeros(out_dim) if bias else None

    def forward(self, adjacency: AdjacencyLike, x: Tensor) -> Tensor:
        support = x.matmul(self.weight)
        out = _propagate(adjacency, support)
        if self.bias is not None:
            out = out + self.bias
        return out


class GCN(Module):
    """Two-layer (or deeper) GCN for node classification.

    Parameters
    ----------
    in_dim / hidden_dim / out_dim:
        Feature, hidden, and class dimensionalities.
    num_layers:
        Total layer count ``L`` (Fig 7b evaluates L ∈ {1..4}).
    dropout:
        Dropout rate applied to inputs of every layer but the first.
    seed:
        Weight-initialization seed.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden_dim: int = 16,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = ensure_rng(seed)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.layers = [
            GraphConvolution(dims[i], dims[i + 1], rng) for i in range(num_layers)
        ]
        self.dropout = float(dropout)
        self._dropout_rng = ensure_rng(rng.integers(0, 2**63 - 1))

    def forward(self, adjacency: AdjacencyLike, features: Tensor) -> Tensor:
        """Return raw logits ``(n, out_dim)``."""
        h = features if isinstance(features, Tensor) else Tensor(features)
        for index, layer in enumerate(self.layers):
            if index > 0:
                h = F.relu(h)
                h = F.dropout(h, self.dropout, self._dropout_rng, training=self.training)
            h = layer.forward(adjacency, h)
        return h

    def predict(self, adjacency: AdjacencyLike, features: Tensor) -> np.ndarray:
        """Hard label predictions (argmax over logits) in eval mode."""
        was_training = self.training
        self.eval()
        logits = self.forward(adjacency, features)
        if was_training:
            self.train()
        return np.argmax(logits.data, axis=1)
