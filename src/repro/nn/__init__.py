"""GNN models and training infrastructure."""

from .appnp import APPNP
from .fastpath import ENGINES, MultiViewForward, resolve_engine
from .gat import GAT, GraphAttentionLayer
from .gcn import GCN, GraphConvolution
from .metrics import accuracy, confusion_matrix
from .module import Module
from .sage import GraphSAGE, mean_aggregator
from .sgc import SGC, clear_propagation_cache
from .trainer import TrainConfig, TrainResult, evaluate, train_node_classifier

__all__ = [
    "Module",
    "GCN",
    "GraphConvolution",
    "GAT",
    "GraphAttentionLayer",
    "SGC",
    "clear_propagation_cache",
    "GraphSAGE",
    "mean_aggregator",
    "APPNP",
    "TrainConfig",
    "TrainResult",
    "train_node_classifier",
    "evaluate",
    "accuracy",
    "confusion_matrix",
    "ENGINES",
    "MultiViewForward",
    "resolve_engine",
]
