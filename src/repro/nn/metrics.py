"""Evaluation metrics for node classification."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ShapeError
from ..tensor import Tensor

__all__ = ["accuracy", "confusion_matrix"]


def accuracy(
    predictions: Union[Tensor, np.ndarray],
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> float:
    """Classification accuracy on the (optionally masked) nodes.

    ``predictions`` may be hard labels ``(n,)`` or logits/probabilities
    ``(n, c)`` (argmaxed internally).
    """
    if isinstance(predictions, Tensor):
        predictions = predictions.data
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions shape {predictions.shape} != labels shape {labels.shape}"
        )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        predictions, labels = predictions[mask], labels[mask]
    if len(labels) == 0:
        raise ShapeError("accuracy over an empty node set is undefined")
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """``(c, c)`` matrix with true classes as rows, predictions as columns."""
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    labels = np.asarray(labels)
    if num_classes is None:
        num_classes = int(max(predictions.max(), labels.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
