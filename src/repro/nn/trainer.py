"""Training loop for node-classification models.

Implements the standard transductive protocol from the paper's baselines:
full-batch Adam on the cross-entropy of labelled training nodes (Eq. 2),
early stopping on validation accuracy with best-weights restoration.

Two engines drive the per-epoch math (see :mod:`repro.nn.fastpath` and
``docs/fast_training.md``): the general autodiff path, and a fused
closed-form path — covering plain GCN/SGC/multi-view-GCN forwards, GAT's
dense masked attention, and the RGCN/SimPGCN defense fits via their
recognized loss terms — that produces a bit-identical weight trajectory
several times faster.  ``engine="auto"`` (the default) picks the fused
path whenever it applies.

A non-finite training loss (NaN/±inf) raises
:class:`~repro.errors.DivergenceError` before the optimizer steps, restoring
the best-validation checkpoint when early stopping has one — the trial
supervisor retries such runs with a fresh seed instead of averaging garbage
into a table cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError, DivergenceError
from ..graph import Graph, gcn_normalize
from ..tensor import Adam, Tensor, functional as F, no_grad
from ..utils import cancellation, faults, snapshots
from ..utils.rng import SeedLike
from .fastpath import make_fused_kernel, resolve_engine, training_matches_eval
from .metrics import accuracy
from .module import Module

__all__ = ["TrainConfig", "TrainResult", "train_node_classifier", "evaluate"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the training loop (paper defaults)."""

    epochs: int = 200
    lr: float = 0.01
    weight_decay: float = 5e-4
    patience: int = 30
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.patience < 1:
            raise ConfigError(f"patience must be >= 1, got {self.patience}")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    model: Module
    best_val_accuracy: float
    test_accuracy: float
    train_losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    epochs_run: int = 0


AdjacencyLike = Union[sp.spmatrix, Tensor, np.ndarray]
ForwardFn = Callable[[AdjacencyLike, Tensor], Tensor]


def _collect_generators(*roots) -> list[tuple[str, np.random.Generator]]:
    """Discover every ``np.random.Generator`` reachable from ``roots``.

    Walks module attribute dicts (sorted names), lists/tuples, and — one
    level deep — plain objects like loss terms, in a deterministic order,
    so the same model structure always yields the same ``(path, gen)``
    sequence.  This is what lets a mid-fit snapshot capture and restore
    the exact dropout/sampling stream positions without each model class
    having to declare its RNGs.
    """
    found: list[tuple[str, np.random.Generator]] = []
    seen: set[int] = set()

    def visit(obj, path: str, depth: int) -> None:
        if obj is None or id(obj) in seen:
            return
        if isinstance(obj, np.random.Generator):
            seen.add(id(obj))
            found.append((path, obj))
            return
        if depth >= 5:
            return
        if callable(obj) and hasattr(obj, "__self__"):
            visit(obj.__self__, f"{path}.__self__", depth + 1)
            return
        if isinstance(obj, Module):
            seen.add(id(obj))
            attrs = vars(obj)
            for name in sorted(attrs):
                visit(attrs[name], f"{path}.{name}", depth + 1)
        elif isinstance(obj, (list, tuple)):
            seen.add(id(obj))
            for index, item in enumerate(obj):
                visit(item, f"{path}[{index}]", depth + 1)
        elif depth == 0 and not isinstance(obj, (np.ndarray, Tensor)):
            try:
                attrs = vars(obj)
            except TypeError:
                return
            seen.add(id(obj))
            for name in sorted(attrs):
                visit(attrs[name], f"{path}.{name}", depth + 1)

    for index, root in enumerate(roots):
        visit(root, f"r{index}", 0)
    return found


def _fit_snapshot(
    model: Module,
    optimizer: Adam,
    result: "TrainResult",
    best_state: list[np.ndarray],
    best_logits: Optional[np.ndarray],
    stall: int,
    pending_epoch: Optional[int],
    epoch: int,
    rng_slots: list[tuple[str, np.random.Generator]],
) -> tuple[dict, dict]:
    """Build the ``(arrays, meta)`` snapshot of a fit at the top of ``epoch``."""
    arrays: dict[str, np.ndarray] = {}
    snapshots.pack_list(arrays, "param_", [p.data for p in model.parameters()])
    opt_state = optimizer.state_dict()
    snapshots.pack_list(arrays, "adam_m_", opt_state["m"])
    snapshots.pack_list(arrays, "adam_v_", opt_state["v"])
    snapshots.pack_list(arrays, "best_state_", best_state)
    arrays["train_losses"] = np.asarray(result.train_losses, dtype=np.float64)
    arrays["val_accuracies"] = np.asarray(result.val_accuracies, dtype=np.float64)
    if best_logits is not None:
        arrays["best_logits"] = best_logits
    meta = {
        "step": int(epoch),
        "epoch": int(epoch),
        "step_count": int(opt_state["step_count"]),
        "stall": int(stall),
        "pending_epoch": pending_epoch,
        "best_val_accuracy": float(result.best_val_accuracy),
        "epochs_run": int(result.epochs_run),
        "rngs": [
            [path, snapshots.generator_state(gen)] for path, gen in rng_slots
        ],
    }
    return arrays, meta


def evaluate(
    model: Module,
    adjacency: AdjacencyLike,
    features: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    forward: Optional[ForwardFn] = None,
) -> float:
    """Accuracy of ``model`` on masked nodes, in eval mode."""
    forward = forward or model.forward  # type: ignore[attr-defined]
    was_training = model.training
    model.eval()
    with no_grad():
        logits = forward(adjacency, Tensor(features))
    if was_training:
        model.train()
    return accuracy(logits, labels, mask)


def train_node_classifier(
    model: Module,
    graph: Graph,
    config: Optional[TrainConfig] = None,
    adjacency: Optional[AdjacencyLike] = None,
    forward: Optional[ForwardFn] = None,
    loss_fn: Optional[Callable[[Tensor], Tensor]] = None,
    engine: Optional[str] = None,
) -> TrainResult:
    """Train ``model`` transductively on ``graph``.

    Parameters
    ----------
    model:
        Any :class:`Module` with ``forward(adjacency, features) -> logits``.
    graph:
        Must carry labels and train/val/test masks.
    adjacency:
        Pre-normalized adjacency override; defaults to the GCN normalization
        of ``graph.adjacency``.  Defenders pass their purified/augmented
        operators here.
    forward:
        Forward-function override (used by multi-view defenders like GNAT,
        via :class:`~repro.nn.MultiViewForward`).
    loss_fn:
        Optional extra penalty added to the cross-entropy, taking the logits
        tensor (used by RGCN's KL term and SimPGCN's SSL term).
    engine:
        ``"auto"`` fuses eligible forwards (plain GCN/SGC over sparse
        operators, multi-view GCN, GAT's masked attention, and RGCN /
        SimPGCN under their recognized ``KLLoss`` / ``SSLLoss`` terms) into
        closed-form kernels with bit-identical trajectories; ``"fused"``
        requires fusion (raises :class:`~repro.errors.ConfigError` naming
        the ineligible component); ``"autodiff"`` forces the traced path.
        ``None`` defers to ``$REPRO_ENGINE``, defaulting to ``"auto"``.

    Returns
    -------
    TrainResult with the best-validation weights restored into ``model``.
    """
    config = config or TrainConfig()
    if graph.labels is None or graph.train_mask is None or graph.val_mask is None:
        raise ConfigError("training requires labels and train/val masks")
    test_mask = graph.test_mask if graph.test_mask is not None else ~(
        graph.train_mask | graph.val_mask
    )

    if adjacency is None:
        adjacency = gcn_normalize(graph.adjacency)
    features = Tensor(graph.features)
    forward = forward or model.forward  # type: ignore[attr-defined]
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)

    engine_name = resolve_engine(engine)
    kernel = None
    if engine_name != "autodiff":
        # strict=True makes an ineligible setup raise ConfigError naming
        # the specific blocker (model class, operator kind, custom loss).
        kernel = make_fused_kernel(
            model, graph, adjacency, forward, loss_fn,
            strict=engine_name == "fused",
        )
    # Deterministic-forward models (no dropout, no stochastic loss term):
    # a train-mode forward is bit-identical to an eval-mode one, so epoch
    # t's validation logits equal epoch t+1's training logits — reuse them
    # instead of paying a separate validation forward per epoch.
    reuse_train_logits = training_matches_eval(model, forward, loss_fn)
    # Stochastic fused kernels can't reuse training logits, but they CAN
    # defer: dropout never touches layer 0, so epoch t's validation logits
    # are a cheap eval-mode tail on top of epoch t+1's training forward
    # (same post-step weights the separate validation forward used).
    deferred_eval = (
        None
        if kernel is None or reuse_train_logits
        else getattr(kernel, "deferred_eval_forward", None)
    )

    result = TrainResult(model=model, best_val_accuracy=-1.0, test_accuracy=0.0)
    best_state = model.state_dict()
    best_logits: Optional[np.ndarray] = None
    stall = 0

    def record_validation(epoch: int, val_logits: np.ndarray) -> bool:
        """Book-keep one epoch's validation; True means early-stop now."""
        nonlocal best_state, best_logits, stall
        val_acc = accuracy(val_logits, graph.labels, graph.val_mask)
        result.val_accuracies.append(val_acc)
        result.epochs_run = epoch + 1
        if val_acc > result.best_val_accuracy:
            result.best_val_accuracy = val_acc
            best_state = model.state_dict()
            best_logits = val_logits
            stall = 0
        else:
            stall += 1
            if stall >= config.patience:
                return True
        if config.verbose and epoch % 20 == 0:
            print(
                f"epoch {epoch}: loss={result.train_losses[epoch]:.4f} "
                f"val_acc={val_acc:.4f}"
            )
        return False

    def validation_logits() -> np.ndarray:
        model.eval()
        if kernel is not None:
            return kernel.eval_forward()
        with no_grad():
            return forward(adjacency, features).data

    # With logits reuse, validation of epoch t settles at epoch t+1 (whose
    # training forward runs on the post-step weights of epoch t — exactly
    # what the separate validation forward used to compute).
    pending_epoch: Optional[int] = None

    # Preemption support: this fit is one resumable unit of the ambient
    # trial.  The epoch loop polls cancellation.checkpoint once per epoch,
    # offering its complete state (weights, Adam moments, RNG stream
    # positions, early-stopping bookkeeping) to the ambient snapshot sink;
    # an interrupted fit restores all of it here and continues with a
    # bit-identical weight trajectory.
    unit = snapshots.begin_unit("fit")
    rng_slots = _collect_generators(model, loss_fn, forward)
    start_epoch = 0
    resumed = unit.resume_state()
    if resumed is not None:
        arrays, meta = resumed
        for param, saved in zip(
            model.parameters(), snapshots.unpack_list(arrays, "param_")
        ):
            param.data[...] = saved
        optimizer.load_state_dict(
            {
                "step_count": meta["step_count"],
                "m": snapshots.unpack_list(arrays, "adam_m_"),
                "v": snapshots.unpack_list(arrays, "adam_v_"),
            }
        )
        best_state = [array.copy() for array in snapshots.unpack_list(arrays, "best_state_")]
        if "best_logits" in arrays:
            best_logits = arrays["best_logits"]
        result.train_losses = [float(x) for x in arrays["train_losses"]]
        result.val_accuracies = [float(x) for x in arrays["val_accuracies"]]
        result.best_val_accuracy = float(meta["best_val_accuracy"])
        result.epochs_run = int(meta["epochs_run"])
        stall = int(meta["stall"])
        pending = meta["pending_epoch"]
        pending_epoch = int(pending) if pending is not None else None
        saved_rngs = dict((path, state) for path, state in meta["rngs"])
        for path, gen in rng_slots:
            if path in saved_rngs:
                snapshots.restore_generator(gen, saved_rngs[path])
        start_epoch = int(meta["epoch"])

    for epoch in range(start_epoch, config.epochs):
        model.train()
        optimizer.zero_grad()
        faults.perturb("trainer", epoch=epoch)
        cancellation.checkpoint(
            "trainer",
            unit=unit,
            state=lambda: _fit_snapshot(
                model,
                optimizer,
                result,
                best_state,
                best_logits,
                stall,
                pending_epoch,
                epoch,
                rng_slots,
            ),
            epoch=epoch,
        )
        if kernel is not None:
            loss_raw, logits_data = kernel.train_forward()
            loss = None
        else:
            logits = forward(adjacency, features)
            loss = F.cross_entropy(logits, graph.labels, graph.train_mask)
            if loss_fn is not None:
                loss = loss + loss_fn(logits)
            loss_raw = float(loss.item())
            logits_data = logits.data
        if pending_epoch is not None:
            stop = record_validation(
                pending_epoch,
                logits_data if reuse_train_logits else deferred_eval(),
            )
            pending_epoch = None
            if stop:
                break
        loss_value = faults.corrupt("trainer", loss_raw, epoch=epoch)
        if not np.isfinite(loss_value):
            # Divergence is unrecoverable for this run: raise instead of
            # silently training on garbage, but restore the best-validation
            # checkpoint first so callers that catch still hold usable
            # weights.
            recovered = result.best_val_accuracy >= 0.0
            if recovered:
                model.load_state_dict(best_state)
            raise DivergenceError(
                f"non-finite training loss {loss_value} at epoch {epoch}"
                + (
                    f" (restored best checkpoint, val_acc="
                    f"{result.best_val_accuracy:.4f})"
                    if recovered
                    else " (no checkpoint to restore)"
                ),
                epoch=epoch,
                loss=loss_value,
                recovered=recovered,
                best_val_accuracy=result.best_val_accuracy,
            )
        if kernel is not None:
            kernel.backward()
        else:
            loss.backward()
        optimizer.step()
        result.train_losses.append(loss_value)

        if reuse_train_logits or deferred_eval is not None:
            pending_epoch = epoch
            continue
        if record_validation(epoch, validation_logits()):
            break

    if pending_epoch is not None:
        # The final epoch's validation never got a follow-up training
        # forward; pay the one eval forward it needs.
        record_validation(pending_epoch, validation_logits())

    model.eval()
    model.load_state_dict(best_state)
    if best_logits is None:  # unreachable with epochs >= 1; kept for safety
        best_logits = validation_logits()
    # Eval-mode forwards are pure functions of (weights, adjacency,
    # features), so the best epoch's validation logits ARE the logits the
    # restored model would produce — reuse them instead of paying one more
    # full forward pass per fit.
    result.test_accuracy = accuracy(best_logits, graph.labels, test_mask)
    return result
