"""Training loop for node-classification models.

Implements the standard transductive protocol from the paper's baselines:
full-batch Adam on the cross-entropy of labelled training nodes (Eq. 2),
early stopping on validation accuracy with best-weights restoration.

A non-finite training loss (NaN/±inf) raises
:class:`~repro.errors.DivergenceError` before the optimizer steps, restoring
the best-validation checkpoint when early stopping has one — the trial
supervisor retries such runs with a fresh seed instead of averaging garbage
into a table cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError, DivergenceError
from ..graph import Graph, gcn_normalize
from ..tensor import Adam, Tensor, functional as F, no_grad
from ..utils import faults
from ..utils.rng import SeedLike
from .metrics import accuracy
from .module import Module

__all__ = ["TrainConfig", "TrainResult", "train_node_classifier", "evaluate"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the training loop (paper defaults)."""

    epochs: int = 200
    lr: float = 0.01
    weight_decay: float = 5e-4
    patience: int = 30
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.patience < 1:
            raise ConfigError(f"patience must be >= 1, got {self.patience}")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    model: Module
    best_val_accuracy: float
    test_accuracy: float
    train_losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    epochs_run: int = 0


AdjacencyLike = Union[sp.spmatrix, Tensor, np.ndarray]
ForwardFn = Callable[[AdjacencyLike, Tensor], Tensor]


def evaluate(
    model: Module,
    adjacency: AdjacencyLike,
    features: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    forward: Optional[ForwardFn] = None,
) -> float:
    """Accuracy of ``model`` on masked nodes, in eval mode."""
    forward = forward or model.forward  # type: ignore[attr-defined]
    was_training = model.training
    model.eval()
    with no_grad():
        logits = forward(adjacency, Tensor(features))
    if was_training:
        model.train()
    return accuracy(logits, labels, mask)


def train_node_classifier(
    model: Module,
    graph: Graph,
    config: Optional[TrainConfig] = None,
    adjacency: Optional[AdjacencyLike] = None,
    forward: Optional[ForwardFn] = None,
    loss_fn: Optional[Callable[[Tensor], Tensor]] = None,
) -> TrainResult:
    """Train ``model`` transductively on ``graph``.

    Parameters
    ----------
    model:
        Any :class:`Module` with ``forward(adjacency, features) -> logits``.
    graph:
        Must carry labels and train/val/test masks.
    adjacency:
        Pre-normalized adjacency override; defaults to the GCN normalization
        of ``graph.adjacency``.  Defenders pass their purified/augmented
        operators here.
    forward:
        Forward-function override (used by multi-view defenders like GNAT).
    loss_fn:
        Optional extra penalty added to the cross-entropy, taking the logits
        tensor (used by RGCN's KL term and SimPGCN's SSL term).

    Returns
    -------
    TrainResult with the best-validation weights restored into ``model``.
    """
    config = config or TrainConfig()
    if graph.labels is None or graph.train_mask is None or graph.val_mask is None:
        raise ConfigError("training requires labels and train/val masks")
    test_mask = graph.test_mask if graph.test_mask is not None else ~(
        graph.train_mask | graph.val_mask
    )

    if adjacency is None:
        adjacency = gcn_normalize(graph.adjacency)
    features = Tensor(graph.features)
    forward = forward or model.forward  # type: ignore[attr-defined]
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)

    result = TrainResult(model=model, best_val_accuracy=-1.0, test_accuracy=0.0)
    best_state = model.state_dict()
    best_logits: Optional[Tensor] = None
    stall = 0

    for epoch in range(config.epochs):
        model.train()
        optimizer.zero_grad()
        faults.perturb("trainer", epoch=epoch)
        logits = forward(adjacency, features)
        loss = F.cross_entropy(logits, graph.labels, graph.train_mask)
        if loss_fn is not None:
            loss = loss + loss_fn(logits)
        loss_value = faults.corrupt("trainer", float(loss.item()), epoch=epoch)
        if not np.isfinite(loss_value):
            # Divergence is unrecoverable for this run: raise instead of
            # silently training on garbage, but restore the best-validation
            # checkpoint first so callers that catch still hold usable
            # weights.
            recovered = result.best_val_accuracy >= 0.0
            if recovered:
                model.load_state_dict(best_state)
            raise DivergenceError(
                f"non-finite training loss {loss_value} at epoch {epoch}"
                + (
                    f" (restored best checkpoint, val_acc="
                    f"{result.best_val_accuracy:.4f})"
                    if recovered
                    else " (no checkpoint to restore)"
                ),
                epoch=epoch,
                loss=loss_value,
                recovered=recovered,
                best_val_accuracy=result.best_val_accuracy,
            )
        loss.backward()
        optimizer.step()
        result.train_losses.append(loss_value)

        model.eval()
        with no_grad():
            val_logits = forward(adjacency, features)
        val_acc = accuracy(val_logits, graph.labels, graph.val_mask)
        result.val_accuracies.append(val_acc)
        result.epochs_run = epoch + 1

        if val_acc > result.best_val_accuracy:
            result.best_val_accuracy = val_acc
            best_state = model.state_dict()
            best_logits = val_logits
            stall = 0
        else:
            stall += 1
            if stall >= config.patience:
                break
        if config.verbose and epoch % 20 == 0:
            print(f"epoch {epoch}: loss={loss.item():.4f} val_acc={val_acc:.4f}")

    model.load_state_dict(best_state)
    if best_logits is None:  # unreachable with epochs >= 1; kept for safety
        model.eval()
        with no_grad():
            best_logits = forward(adjacency, features)
    # Eval-mode forwards are pure functions of (weights, adjacency,
    # features), so the best epoch's validation logits ARE the logits the
    # restored model would produce — reuse them instead of paying one more
    # full forward pass per fit.
    result.test_accuracy = accuracy(best_logits, graph.labels, test_mask)
    return result
