"""GraphSAGE (Hamilton et al., 2017) — mean-aggregator variant.

Cited by the paper as one of the message-passing family members GNN attacks
apply to ([5]).  Each layer concatenates a node's own representation with
the mean of its neighbors' and applies a linear transform:

    h'_v = σ( [h_v ‖ mean_{u∈N_v} h_u] W )

Included as an additional victim architecture for transferability studies
(the attack surface differs from GCN: no degree renormalization, explicit
self channel).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, functional as F, glorot_uniform, zeros
from ..utils.rng import SeedLike, ensure_rng
from .module import Module

__all__ = ["GraphSAGE", "mean_aggregator"]

AdjacencyLike = Union[sp.spmatrix, np.ndarray]


def mean_aggregator(adjacency: AdjacencyLike) -> sp.csr_matrix:
    """Row-stochastic neighbor-averaging operator ``D⁻¹A`` (no self-loops).

    Isolated nodes get a zero row (their neighbor channel is zero and the
    self channel carries them).
    """
    matrix = sp.csr_matrix(adjacency).astype(np.float64)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
    return (sp.diags(inverse) @ matrix).tocsr()


class _SAGELayer(Module):
    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.weight = glorot_uniform(2 * in_dim, out_dim, rng)
        self.bias = zeros(out_dim)

    def forward(self, aggregator: sp.csr_matrix, h: Tensor) -> Tensor:
        neighbor_mean = F.sparse_matmul(aggregator, h)
        merged = F.concat_rows(h, neighbor_mean)
        return merged.matmul(self.weight) + self.bias


class GraphSAGE(Module):
    """Two-layer mean-aggregator GraphSAGE for node classification.

    :meth:`forward` accepts the *raw* adjacency (sparse or dense) and builds
    the row-stochastic aggregator internally, so it is drop-in compatible
    with the :func:`repro.nn.train_node_classifier` loop when passed
    ``adjacency=graph.adjacency``.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden_dim: int = 16,
        dropout: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(seed)
        self.layer1 = _SAGELayer(in_dim, hidden_dim, rng)
        self.layer2 = _SAGELayer(hidden_dim, out_dim, rng)
        self.dropout = float(dropout)
        self._dropout_rng = ensure_rng(rng.integers(0, 2**63 - 1))
        self._aggregator_cache: tuple[int, sp.csr_matrix] | None = None

    def _aggregator(self, adjacency: AdjacencyLike) -> sp.csr_matrix:
        key = id(adjacency)
        if self._aggregator_cache is None or self._aggregator_cache[0] != key:
            self._aggregator_cache = (key, mean_aggregator(adjacency))
        return self._aggregator_cache[1]

    def forward(self, adjacency: AdjacencyLike, features: Tensor) -> Tensor:
        """Return raw logits ``(n, out_dim)``."""
        aggregator = self._aggregator(adjacency)
        h = features if isinstance(features, Tensor) else Tensor(features)
        h = F.relu(self.layer1.forward(aggregator, h))
        h = F.dropout(h, self.dropout, self._dropout_rng, training=self.training)
        return self.layer2.forward(aggregator, h)

    def predict(self, adjacency: AdjacencyLike, features: Tensor) -> np.ndarray:
        """Hard label predictions in eval mode."""
        was_training = self.training
        self.eval()
        logits = self.forward(adjacency, features)
        if was_training:
            self.train()
        return np.argmax(logits.data, axis=1)
