"""Graph Attention Network (Veličković et al., 2018).

Dense masked-attention implementation: attention logits are computed for
every node pair, entries outside the (self-looped) adjacency support are
masked to −∞ before the row softmax.  Dense attention is exact and fast at
the scales this reproduction runs at, and it accepts either sparse or dense
adjacencies (only the support pattern is read).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, functional as F, glorot_uniform, no_grad
from ..utils.rng import SeedLike, ensure_rng
from .module import Module

__all__ = ["GraphAttentionLayer", "GAT"]

AdjacencyLike = Union[sp.spmatrix, Tensor, np.ndarray]

_NEG_INF = -1e9


def _support_mask(adjacency: AdjacencyLike) -> np.ndarray:
    """Boolean (n, n) mask of *allowed* attention pairs: edges + self-loops."""
    if sp.issparse(adjacency):
        dense = adjacency.toarray()
    elif isinstance(adjacency, Tensor):
        dense = adjacency.data
    else:
        dense = np.asarray(adjacency)
    mask = dense > 0
    np.fill_diagonal(mask, True)
    return mask


class GraphAttentionLayer(Module):
    """Single-head graph attention: ``h'_i = Σ_j α_ij W h_j``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, slope: float = 0.2) -> None:
        super().__init__()
        self.weight = glorot_uniform(in_dim, out_dim, rng)
        self.attn_src = glorot_uniform(out_dim, 1, rng)
        self.attn_dst = glorot_uniform(out_dim, 1, rng)
        self.slope = float(slope)

    def forward(self, mask: np.ndarray, x: Tensor) -> Tensor:
        h = x.matmul(self.weight)  # (n, out_dim)
        src_scores = h.matmul(self.attn_src)  # (n, 1)
        dst_scores = h.matmul(self.attn_dst)  # (n, 1)
        logits = F.leaky_relu(src_scores + dst_scores.T, self.slope)  # (n, n)
        logits = F.masked_fill(logits, ~mask, _NEG_INF)
        attention = F.softmax(logits, axis=1)
        return attention.matmul(h)


class GAT(Module):
    """Two-layer multi-head GAT for node classification.

    First layer concatenates ``num_heads`` heads with ELU; output layer is a
    single head producing class logits — the architecture of the original
    paper and the configuration used as a "raw GNN" baseline in Tables IV–VI.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden_dim: int = 8,
        num_heads: int = 4,
        dropout: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(seed)
        self.heads = [GraphAttentionLayer(in_dim, hidden_dim, rng) for _ in range(num_heads)]
        self.out_layer = GraphAttentionLayer(hidden_dim * num_heads, out_dim, rng)
        self.dropout = float(dropout)
        self._dropout_rng = ensure_rng(rng.integers(0, 2**63 - 1))

    def forward(self, adjacency: AdjacencyLike, features: Tensor) -> Tensor:
        """Return raw logits ``(n, out_dim)``."""
        mask = _support_mask(adjacency)
        h = features if isinstance(features, Tensor) else Tensor(features)
        h = F.dropout(h, self.dropout, self._dropout_rng, training=self.training)
        outputs = [head.forward(mask, h) for head in self.heads]
        merged = outputs[0]
        for other in outputs[1:]:
            merged = F.concat_rows(merged, other)
        merged = F.elu(merged)
        merged = F.dropout(merged, self.dropout, self._dropout_rng, training=self.training)
        return self.out_layer.forward(mask, merged)

    def predict(self, adjacency: AdjacencyLike, features: Tensor) -> np.ndarray:
        """Hard label predictions in eval mode (no autodiff graph)."""
        was_training = self.training
        self.eval()
        with no_grad():
            logits = self.forward(adjacency, features)
        if was_training:
            self.train()
        return np.argmax(logits.data, axis=1)
