"""Fused closed-form training kernels for the sparse-operator GCN family.

:func:`repro.nn.train_node_classifier` normally traces a per-op autodiff
graph through :class:`repro.tensor.Tensor` every epoch.  That generality is
needed by GAT's attention, RGCN's KL term and SimPGCN's SSL head — but the
models that dominate every sweep (plain GCN, SGC, and GNAT's shared
multi-view GCN) are compositions of a fixed handful of kernels whose
gradients are known in closed form.  This module computes them directly:

* one NumPy pass for the forward (loss included), one for every parameter
  gradient, with no ``Tensor`` graph construction, no gather/scatter loss
  backward, and preallocated buffers reused across epochs;
* the never-consumed feature gradient of layer 0 (``g @ W⁰ᵀ``, an
  ``n × in_dim`` GEMM per view that autodiff computes and discards because
  features carry no grad) is skipped outright;
* for GNAT's multi-view forward the first-layer product ``X @ W⁰`` is
  computed **once** and shared across the t/f/e views — they differ only in
  the propagation operator applied on top of it.

The contract is *bit-identity*, in the tradition of PR 1's incremental
PEEGA scorer and PR 3's SGC memo: every float operation of the autodiff
path is replicated with the same NumPy kernels in the same order (IEEE-754
addition is not associative, so even the order in which per-view gradients
fold into a shared parameter matters — autodiff processes views in reverse
construction order, and so does :class:`_FusedMultiView`).  Dropout draws
come from the model's own ``_dropout_rng`` stream in the same order and
with the same expression as :func:`repro.tensor.functional.dropout`, so
the weight trajectory of a fused run is indistinguishable from an autodiff
run — journals, checkpoints and resume all compose.

Engine selection (``train_node_classifier(..., engine=...)``):

* ``"auto"`` (default) — fuse when eligible, else autodiff;
* ``"fused"`` — fuse or raise :class:`~repro.errors.ConfigError`;
* ``"autodiff"`` — always trace (the oracle path).

``engine=None`` defers to the ``REPRO_ENGINE`` environment variable
(inherited by ``--jobs N`` pool workers), defaulting to ``"auto"``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError, ShapeError
from ..tensor import Tensor, functional as F
from .gcn import GCN
from .sgc import SGC

__all__ = [
    "ENGINES",
    "ENGINE_ENV_VAR",
    "MultiViewForward",
    "resolve_engine",
    "make_fused_kernel",
    "training_matches_eval",
]

ENGINES = ("auto", "fused", "autodiff")
ENGINE_ENV_VAR = "REPRO_ENGINE"

try:  # SciPy's CSR kernel, reachable with a caller-owned output buffer.
    from scipy.sparse import _sparsetools as _sparsetools

    _csr_matvecs = _sparsetools.csr_matvecs
except Exception:  # pragma: no cover - depends on scipy internals
    _csr_matvecs = None


def _spmm(matrix: sp.csr_matrix, dense: np.ndarray, out: Optional[np.ndarray]):
    """``matrix @ dense`` into a reused buffer when the kernel is reachable.

    SciPy's ``_mul_multivector`` allocates a zeroed result and accumulates
    with ``csr_matvecs`` — doing the same into ``out`` is bit-identical
    while skipping the per-epoch allocation.
    """
    if out is None or _csr_matvecs is None or not dense.flags.c_contiguous:
        return matrix @ dense
    out[...] = 0.0
    _csr_matvecs(
        matrix.shape[0],
        matrix.shape[1],
        dense.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        dense.ravel(),
        out.ravel(),
    )
    return out


def _spmm_fresh(matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
    """``matrix @ dense`` as a fresh allocation, minus the scipy dispatch."""
    if _csr_matvecs is None or not dense.flags.c_contiguous:
        return matrix @ dense
    out = np.zeros((matrix.shape[0], dense.shape[1]))
    _csr_matvecs(
        matrix.shape[0],
        matrix.shape[1],
        dense.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        dense.ravel(),
        out.ravel(),
    )
    return out


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize an engine request (``None`` → ``$REPRO_ENGINE`` → auto)."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "auto"
    engine = str(engine).lower()
    if engine not in ENGINES:
        raise ConfigError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


class MultiViewForward:
    """GNAT's averaged multi-view forward as a dispatchable callable.

    The paper averages the per-view label *probabilities*
    ``Z = (Z^t + Z^f + Z^e)/3`` — robust to one confidently-wrong view.
    Returning ``log(Z̄)`` keeps the standard cross-entropy loss exact
    (log-softmax of a log-probability vector is itself).

    As a class (rather than GNAT's former inline closure) the trainer can
    recognize it and dispatch to :class:`_FusedMultiView`; calling it runs
    the identical autodiff composition.
    """

    def __init__(self, model: GCN, operators: Sequence[sp.spmatrix]) -> None:
        if not operators:
            raise ConfigError("MultiViewForward needs at least one operator")
        self.model = model
        self.operators = list(operators)

    def __call__(self, _adjacency: object, features: Tensor) -> Tensor:
        probs = F.softmax(self.model.forward(self.operators[0], features), axis=1)
        for operator in self.operators[1:]:
            probs = probs + F.softmax(self.model.forward(operator, features), axis=1)
        return (probs * (1.0 / float(len(self.operators))) + 1e-12).log()


# ----------------------------------------------------------------------
# Closed-form loss: masked cross-entropy from raw logits
# ----------------------------------------------------------------------
class _MaskedCrossEntropy:
    """Bit-exact replica of ``F.cross_entropy(logits, labels, mask)``.

    Forward stores the log-softmax (reused by backward); backward returns
    d(loss)/d(logits).  The gradient buffer is epoch-reused.
    """

    def __init__(
        self, labels: np.ndarray, mask: Optional[np.ndarray], shape: tuple[int, int]
    ) -> None:
        targets = np.asarray(labels, dtype=np.int64)
        if mask is None:
            rows = np.arange(len(targets))
        else:
            rows = np.flatnonzero(np.asarray(mask))
        if len(rows) == 0:
            raise ShapeError("nll_loss mask selects no rows")
        self.rows = rows
        self.targets = targets[rows]
        self.inv = 1.0 / float(len(rows))
        self._logp = np.empty(shape)
        self._grad = np.empty(shape)
        self._scratch = np.empty(shape)
        self._row = np.empty((shape[0], 1))

    def forward(self, logits: np.ndarray) -> float:
        shifted = np.subtract(
            logits, np.max(logits, axis=-1, keepdims=True, out=self._row),
            out=self._scratch,
        )
        np.exp(shifted, out=self._logp)
        np.sum(self._logp, axis=-1, keepdims=True, out=self._row)
        np.subtract(shifted, np.log(self._row, out=self._row), out=self._logp)
        picked = self._logp[self.rows, self.targets]
        return float(-picked.sum() * self.inv)

    def backward(self) -> np.ndarray:
        # NLL backward is a scatter of -1/k into the picked entries; the
        # log-softmax backward is g - softmax * rowsum(g).
        grad = self._grad
        grad[...] = 0.0
        grad[self.rows, self.targets] = -self.inv
        softmax = np.exp(self._logp, out=self._scratch)
        np.sum(grad, axis=-1, keepdims=True, out=self._row)
        np.multiply(softmax, self._row, out=softmax)
        return np.subtract(grad, softmax, out=grad)


# ----------------------------------------------------------------------
# Fused kernels
# ----------------------------------------------------------------------
class _FusedGCN:
    """Closed-form trainer kernel for a plain L-layer sparse-operator GCN."""

    def __init__(self, model: GCN, adjacency: sp.spmatrix, graph) -> None:
        self.model = model
        matrix = adjacency.tocsr()
        self.matrix = matrix
        self.matrix_t = matrix.T.tocsr()
        self.features = np.asarray(graph.features, dtype=np.float64)
        layers = model.layers
        n = self.features.shape[0]
        self.loss = _MaskedCrossEntropy(
            graph.labels, graph.train_mask, (n, layers[-1].weight.shape[1])
        )
        # Epoch-reused buffers.  The final logits are deliberately NOT
        # buffered: the trainer keeps them alive as best-epoch validation
        # logits, so they must be fresh allocations every epoch.
        self._support = [np.empty((n, l.weight.shape[1])) for l in layers]
        self._prop = [np.empty((n, l.weight.shape[1])) for l in layers[:-1]]
        self._gs = [np.empty((n, l.weight.shape[1])) for l in layers]
        self._posmask = [np.empty((n, l.weight.shape[1]), dtype=bool) for l in layers[:-1]]
        self._act = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._drop = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._rand = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._keepmask = [None] + [
            np.empty((n, l.weight.shape[0]), dtype=bool) for l in layers[1:]
        ]
        self._keep = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._grad_in = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._grad_w = [np.empty(l.weight.shape) for l in layers]
        self._grad_b = [np.empty(l.bias.shape) for l in layers]
        self._inputs: list[Optional[np.ndarray]] = [None] * len(layers)
        self._preacts: list[Optional[np.ndarray]] = [None] * len(layers)
        self._keeps: list[Optional[np.ndarray]] = [None] * len(layers)

    def train_forward(self) -> tuple[float, np.ndarray]:
        model = self.model
        rate = model.dropout
        rng = model._dropout_rng
        last = len(model.layers) - 1
        h = self.features
        for i, layer in enumerate(model.layers):
            if i > 0:
                a = np.maximum(h, 0.0, out=self._act[i])
                if rate > 0.0:
                    # Same draws, same expression as F.dropout — just into
                    # reused buffers (bool -> float division is the exact
                    # astype-then-divide arithmetic).
                    rng.random(out=self._rand[i])
                    np.greater_equal(self._rand[i], rate, out=self._keepmask[i])
                    keep = np.divide(
                        self._keepmask[i], 1.0 - rate, out=self._keep[i]
                    )
                    h = np.multiply(a, keep, out=self._drop[i])
                else:
                    keep = None
                    h = a
                self._keeps[i] = keep
            self._inputs[i] = h
            support = np.matmul(h, layer.weight.data, out=self._support[i])
            if i < last:
                out = _spmm(self.matrix, support, self._prop[i])
                np.add(out, layer.bias.data, out=out)
                self._preacts[i] = out
            else:
                # The trainer keeps final logits alive across epochs (they
                # become the best-epoch validation logits), so they must be
                # a fresh allocation — but the bias add can still be
                # in-place on the freshly-owned array.
                out = _spmm_fresh(self.matrix, support)
                np.add(out, layer.bias.data, out=out)
            h = out
        return self.loss.forward(h), h

    def backward(self) -> None:
        layers = self.model.layers
        g = self.loss.backward()
        for i in range(len(layers) - 1, -1, -1):
            layer = layers[i]
            layer.bias.grad = np.sum(g, axis=0, out=self._grad_b[i])
            gs = _spmm(self.matrix_t, g, self._gs[i])
            layer.weight.grad = np.matmul(self._inputs[i].T, gs, out=self._grad_w[i])
            if i > 0:
                # Feature grad of layer 0 is never consumed — skip it; for
                # i > 0 chain through dropout (mask multiply) and relu.
                gh = np.matmul(gs, layer.weight.data.T, out=self._grad_in[i])
                if self._keeps[i] is not None:
                    np.multiply(gh, self._keeps[i], out=gh)
                np.greater(self._preacts[i - 1], 0, out=self._posmask[i - 1])
                g = np.multiply(gh, self._posmask[i - 1], out=gh)

    def eval_forward(self) -> np.ndarray:
        layers = self.model.layers
        h = self.features
        for i, layer in enumerate(layers):
            if i > 0:
                h = np.maximum(h, 0.0, out=self._act[i])
            support = np.matmul(h, layer.weight.data, out=self._support[i])
            h = self.matrix @ support
            h = h + layer.bias.data
        return h

    def deferred_eval_forward(self) -> np.ndarray:
        """Eval logits for the weights the LAST ``train_forward`` used.

        Dropout only applies to inputs of layers > 0, so layer 0's training
        output is already the eval-mode one — reuse it and recompute just
        the (hidden-dim-cheap) tail without dropout, skipping the dominant
        ``X @ W⁰`` GEMM.  Valid only right after ``train_forward`` (the
        trainer's deferred-validation protocol guarantees that).
        """
        layers = self.model.layers
        last = len(layers) - 1
        h = self._preacts[0]
        for i in range(1, len(layers)):
            layer = layers[i]
            if i == 1:
                # train_forward already computed relu(preacts[0]) into
                # _act[1] (pre-dropout), and backward never reads it —
                # reuse instead of recomputing the activation.
                a = self._act[1]
            else:
                a = np.maximum(h, 0.0, out=self._act[i])
            support = np.matmul(a, layer.weight.data, out=self._support[i])
            if i < last:
                h = self.matrix @ support
                h = h + layer.bias.data
            else:
                h = _spmm_fresh(self.matrix, support)
                np.add(h, layer.bias.data, out=h)
        return h


class _FusedSGC:
    """Closed-form kernel for SGC: ``softmax(A_n^K X W + b)`` training.

    Propagation goes through the model's own ``_propagated`` memo so the
    ``propagation_count`` bookkeeping (and cross-engine memo sharing) is
    identical to the autodiff path.
    """

    def __init__(self, model: SGC, adjacency: sp.spmatrix, graph) -> None:
        self.model = model
        self.adjacency = adjacency
        self.features = Tensor(graph.features)
        n = self.features.shape[0]
        self.loss = _MaskedCrossEntropy(
            graph.labels, graph.train_mask, (n, model.weight.shape[1])
        )
        self._grad_w = np.empty(model.weight.shape)
        self._grad_b = np.empty(model.bias.shape)
        self._prop: Optional[np.ndarray] = None

    def train_forward(self) -> tuple[float, np.ndarray]:
        model = self.model
        self._prop = model._propagated(self.adjacency, self.features).data
        logits = self._prop @ model.weight.data + model.bias.data
        return self.loss.forward(logits), logits

    def backward(self) -> None:
        model = self.model
        g = self.loss.backward()
        model.bias.grad = np.sum(g, axis=0, out=self._grad_b)
        model.weight.grad = np.matmul(self._prop.T, g, out=self._grad_w)

    def eval_forward(self) -> np.ndarray:
        model = self.model
        prop = model._propagated(self.adjacency, self.features).data
        return prop @ model.weight.data + model.bias.data


class _FusedMultiView:
    """Closed-form kernel for GNAT's shared-weight multi-view GCN.

    Replicates :class:`MultiViewForward` bit for bit.  ``X @ W⁰`` is
    computed once per epoch and shared across views (the views differ only
    in the propagation operator, so the per-view autodiff recomputations
    are value-identical).  Backward runs each view's chain independently,
    then folds the per-view parameter gradients in *reverse* view order —
    the order autodiff's topological sweep accumulates them in, which
    matters because float addition is not associative.
    """

    def __init__(self, model: GCN, operators: Sequence[sp.spmatrix], graph) -> None:
        self.model = model
        self.operators = [op.tocsr() for op in operators]
        self.operators_t = [op.T.tocsr() for op in self.operators]
        self.features = np.asarray(graph.features, dtype=np.float64)
        layers = model.layers
        n = self.features.shape[0]
        views = len(self.operators)
        self.inv_views = 1.0 / float(views)
        self.loss = _MaskedCrossEntropy(
            graph.labels, graph.train_mask, (n, layers[-1].weight.shape[1])
        )
        self._support0 = np.empty((n, layers[0].weight.shape[1]))
        self._support = [None] + [
            np.empty((n, l.weight.shape[1])) for l in layers[1:]
        ]
        self._grad_in = [None] + [
            np.empty((n, l.weight.shape[0])) for l in layers[1:]
        ]
        self._inputs = [[None] * len(layers) for _ in range(views)]
        self._preacts = [[None] * len(layers) for _ in range(views)]
        self._keeps = [[None] * len(layers) for _ in range(views)]
        self._probs: list[Optional[np.ndarray]] = [None] * views
        self._t2: Optional[np.ndarray] = None

    def _view_logits(self, view: int, support0: np.ndarray, training: bool) -> np.ndarray:
        model = self.model
        layers = model.layers
        op = self.operators[view]
        rate = model.dropout
        rng = model._dropout_rng
        last = len(layers) - 1
        h = op @ support0
        h = h + layers[0].bias.data
        if 0 < last:
            self._preacts[view][0] = h
        for i in range(1, len(layers)):
            layer = layers[i]
            a = np.maximum(h, 0.0)
            if training and rate > 0.0:
                keep = (rng.random(a.shape) >= rate).astype(np.float64) / (1.0 - rate)
                x = a * keep
            else:
                keep, x = None, a
            self._keeps[view][i] = keep
            self._inputs[view][i] = x
            support = np.matmul(x, layer.weight.data, out=self._support[i])
            h = op @ support
            h = h + layer.bias.data
            if i < last:
                self._preacts[view][i] = h
        return h

    def _forward(self, training: bool) -> np.ndarray:
        support0 = np.matmul(
            self.features, self.model.layers[0].weight.data, out=self._support0
        )
        probs: Optional[np.ndarray] = None
        for view in range(len(self.operators)):
            z = self._view_logits(view, support0, training)
            shifted = np.exp(z - z.max(axis=1, keepdims=True))
            p = shifted / shifted.sum(axis=1, keepdims=True)
            self._probs[view] = p
            probs = p if probs is None else probs + p
        t2 = probs * self.inv_views + 1e-12
        self._t2 = t2
        return np.log(t2)

    def train_forward(self) -> tuple[float, np.ndarray]:
        logits = self._forward(training=True)
        return self.loss.forward(logits), logits

    def backward(self) -> None:
        model = self.model
        layers = model.layers
        depth = len(layers)
        views = len(self.operators)
        dlogits = self.loss.backward()
        dt2 = dlogits / self._t2
        dprobs = dt2 * self.inv_views
        w_parts = [[None] * depth for _ in range(views)]
        b_parts = [[None] * depth for _ in range(views)]
        for view in range(views):
            op_t = self.operators_t[view]
            p = self._probs[view]
            inner = (dprobs * p).sum(axis=1, keepdims=True)
            g = p * (dprobs - inner)
            for i in range(depth - 1, 0, -1):
                layer = layers[i]
                b_parts[view][i] = g.sum(axis=0)
                gs = op_t @ g
                w_parts[view][i] = self._inputs[view][i].T @ gs
                gh = np.matmul(gs, layer.weight.data.T, out=self._grad_in[i])
                if self._keeps[view][i] is not None:
                    np.multiply(gh, self._keeps[view][i], out=gh)
                g = gh * (self._preacts[view][i - 1] > 0)
            b_parts[view][0] = g.sum(axis=0)
            gs0 = op_t @ g
            w_parts[view][0] = self.features.T @ gs0
        # Reverse-view left fold = autodiff's accumulation order.
        for i in range(depth):
            w_acc = w_parts[views - 1][i]
            b_acc = b_parts[views - 1][i]
            for view in range(views - 2, -1, -1):
                w_acc = w_acc + w_parts[view][i]
                b_acc = b_acc + b_parts[view][i]
            layers[i].weight.grad = w_acc
            layers[i].bias.grad = b_acc

    def eval_forward(self) -> np.ndarray:
        return self._forward(training=False)

    def deferred_eval_forward(self) -> np.ndarray:
        """Eval logits for the weights the LAST ``train_forward`` used.

        Each view's layer-0 output carries no dropout, so the training
        forward already computed the eval-mode one — recompute only the
        hidden-dim tails, skipping the shared ``X @ W⁰`` GEMM *and* every
        view's first sparse propagation.
        """
        layers = self.model.layers
        probs: Optional[np.ndarray] = None
        for view in range(len(self.operators)):
            op = self.operators[view]
            h = self._preacts[view][0]
            for i in range(1, len(layers)):
                layer = layers[i]
                a = np.maximum(h, 0.0)
                support = np.matmul(a, layer.weight.data, out=self._support[i])
                h = op @ support
                h = h + layer.bias.data
            shifted = np.exp(h - h.max(axis=1, keepdims=True))
            p = shifted / shifted.sum(axis=1, keepdims=True)
            probs = p if probs is None else probs + p
        return np.log(probs * self.inv_views + 1e-12)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def _is_plain_bound_forward(forward: Callable, model) -> bool:
    """Is ``forward`` exactly the model's own (un-overridden) forward?"""
    return (
        getattr(forward, "__self__", None) is model
        and getattr(forward, "__func__", None) is type(model).forward
    )


def _gcn_fusible(model: GCN) -> bool:
    return 0.0 <= model.dropout < 1.0 and all(
        layer.bias is not None for layer in model.layers
    )


def make_fused_kernel(
    model,
    graph,
    adjacency,
    forward: Callable,
    loss_fn: Optional[Callable],
):
    """Return a fused kernel for this training setup, or None if ineligible.

    Eligibility is deliberately exact-type and exact-forward: subclasses or
    wrapped forwards may compute anything, so they keep the autodiff path.
    """
    if loss_fn is not None:
        return None
    if isinstance(forward, MultiViewForward):
        target = forward.model
        if target is not model or type(target) is not GCN:
            return None
        if not all(sp.issparse(op) for op in forward.operators):
            return None
        if not _gcn_fusible(target):
            return None
        return _FusedMultiView(target, forward.operators, graph)
    if not _is_plain_bound_forward(forward, model):
        return None
    if not sp.issparse(adjacency):
        return None
    if type(model) is GCN:
        if not _gcn_fusible(model):
            return None
        return _FusedGCN(model, adjacency, graph)
    if type(model) is SGC:
        return _FusedSGC(model, adjacency, graph)
    return None


def training_matches_eval(model, forward: Callable, loss_fn: Optional[Callable]) -> bool:
    """True when a train-mode forward is bit-identical to an eval-mode one.

    Holds for models without stochastic layers (SGC always; GCN at dropout
    0, or with a single layer — dropout only applies to inputs of layers
    > 0) under their plain forward — the trainer then reuses training
    logits for validation instead of paying a second full forward per
    epoch.
    """
    if loss_fn is not None:
        return False
    if isinstance(forward, MultiViewForward):
        target = forward.model
        if target is not model:
            return False
    elif _is_plain_bound_forward(forward, model):
        target = model
    else:
        return False
    if type(target) is SGC:
        return True
    return type(target) is GCN and (
        target.dropout <= 0.0 or len(target.layers) == 1
    )
