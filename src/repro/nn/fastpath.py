"""Fused closed-form training kernels for the sparse-operator GCN family.

:func:`repro.nn.train_node_classifier` normally traces a per-op autodiff
graph through :class:`repro.tensor.Tensor` every epoch.  That generality is
only needed by genuinely dynamic setups (custom loss closures, wrapped
forwards, dense differentiable operators); every model the sweeps actually
fit — plain GCN, SGC, GNAT's shared multi-view GCN, GAT's dense masked
attention, RGCN's Gaussian layers + KL term, and SimPGCN's adaptive
propagation + SSL head — is a composition of a fixed handful of kernels
whose gradients are known in closed form.  This module computes them
directly:

* one NumPy pass for the forward (loss included), one for every parameter
  gradient, with no ``Tensor`` graph construction, no gather/scatter loss
  backward, and preallocated buffers reused across epochs;
* the never-consumed feature gradient of layer 0 (``g @ W⁰ᵀ``, an
  ``n × in_dim`` GEMM per view that autodiff computes and discards because
  features carry no grad) is skipped outright;
* for GNAT's multi-view forward the first-layer product ``X @ W⁰`` is
  computed **once** and shared across the t/f/e views — they differ only in
  the propagation operator applied on top of it.

The contract is *bit-identity*, in the tradition of PR 1's incremental
PEEGA scorer and PR 3's SGC memo: every float operation of the autodiff
path is replicated with the same NumPy kernels in the same order (IEEE-754
addition is not associative, so even the order in which per-view gradients
fold into a shared parameter matters — autodiff processes views in reverse
construction order, and so does :class:`_FusedMultiView`).  Dropout draws
come from the model's own ``_dropout_rng`` stream in the same order and
with the same expression as :func:`repro.tensor.functional.dropout`, so
the weight trajectory of a fused run is indistinguishable from an autodiff
run — journals, checkpoints and resume all compose.

Engine selection (``train_node_classifier(..., engine=...)``):

* ``"auto"`` (default) — fuse when eligible, else autodiff;
* ``"fused"`` — fuse or raise :class:`~repro.errors.ConfigError`;
* ``"autodiff"`` — always trace (the oracle path).

``engine=None`` defers to the ``REPRO_ENGINE`` environment variable
(inherited by ``--jobs N`` pool workers), defaulting to ``"auto"``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError, ShapeError
from ..tensor import Tensor, functional as F
from .gat import GAT, _NEG_INF, _support_mask
from .gcn import GCN
from .sgc import SGC

__all__ = [
    "ENGINES",
    "ENGINE_ENV_VAR",
    "MultiViewForward",
    "resolve_engine",
    "make_fused_kernel",
    "training_matches_eval",
]

ENGINES = ("auto", "fused", "autodiff")
ENGINE_ENV_VAR = "REPRO_ENGINE"

try:  # SciPy's CSR kernel, reachable with a caller-owned output buffer.
    from scipy.sparse import _sparsetools as _sparsetools

    _csr_matvecs = _sparsetools.csr_matvecs
except Exception:  # pragma: no cover - depends on scipy internals
    _csr_matvecs = None


def _spmm(matrix: sp.csr_matrix, dense: np.ndarray, out: Optional[np.ndarray]):
    """``matrix @ dense`` into a reused buffer when the kernel is reachable.

    SciPy's ``_mul_multivector`` allocates a zeroed result and accumulates
    with ``csr_matvecs`` — doing the same into ``out`` is bit-identical
    while skipping the per-epoch allocation.
    """
    if out is None or _csr_matvecs is None or not dense.flags.c_contiguous:
        return matrix @ dense
    out[...] = 0.0
    _csr_matvecs(
        matrix.shape[0],
        matrix.shape[1],
        dense.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        dense.ravel(),
        out.ravel(),
    )
    return out


def _spmm_fresh(matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
    """``matrix @ dense`` as a fresh allocation, minus the scipy dispatch."""
    if _csr_matvecs is None or not dense.flags.c_contiguous:
        return matrix @ dense
    out = np.zeros((matrix.shape[0], dense.shape[1]))
    _csr_matvecs(
        matrix.shape[0],
        matrix.shape[1],
        dense.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        dense.ravel(),
        out.ravel(),
    )
    return out


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize an engine request (``None`` → ``$REPRO_ENGINE`` → auto)."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "auto"
    engine = str(engine).lower()
    if engine not in ENGINES:
        raise ConfigError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


class MultiViewForward:
    """GNAT's averaged multi-view forward as a dispatchable callable.

    The paper averages the per-view label *probabilities*
    ``Z = (Z^t + Z^f + Z^e)/3`` — robust to one confidently-wrong view.
    Returning ``log(Z̄)`` keeps the standard cross-entropy loss exact
    (log-softmax of a log-probability vector is itself).

    As a class (rather than GNAT's former inline closure) the trainer can
    recognize it and dispatch to :class:`_FusedMultiView`; calling it runs
    the identical autodiff composition.
    """

    def __init__(self, model: GCN, operators: Sequence[sp.spmatrix]) -> None:
        if not operators:
            raise ConfigError("MultiViewForward needs at least one operator")
        self.model = model
        self.operators = list(operators)

    def __call__(self, _adjacency: object, features: Tensor) -> Tensor:
        probs = F.softmax(self.model.forward(self.operators[0], features), axis=1)
        for operator in self.operators[1:]:
            probs = probs + F.softmax(self.model.forward(operator, features), axis=1)
        return (probs * (1.0 / float(len(self.operators))) + 1e-12).log()


# ----------------------------------------------------------------------
# Closed-form loss: masked cross-entropy from raw logits
# ----------------------------------------------------------------------
class _MaskedCrossEntropy:
    """Bit-exact replica of ``F.cross_entropy(logits, labels, mask)``.

    Forward stores the log-softmax (reused by backward); backward returns
    d(loss)/d(logits).  The gradient buffer is epoch-reused.
    """

    def __init__(
        self, labels: np.ndarray, mask: Optional[np.ndarray], shape: tuple[int, int]
    ) -> None:
        targets = np.asarray(labels, dtype=np.int64)
        if mask is None:
            rows = np.arange(len(targets))
        else:
            rows = np.flatnonzero(np.asarray(mask))
        if len(rows) == 0:
            raise ShapeError("nll_loss mask selects no rows")
        self.rows = rows
        self.targets = targets[rows]
        self.inv = 1.0 / float(len(rows))
        self._logp = np.empty(shape)
        self._grad = np.empty(shape)
        self._scratch = np.empty(shape)
        self._row = np.empty((shape[0], 1))

    def forward(self, logits: np.ndarray) -> float:
        shifted = np.subtract(
            logits, np.max(logits, axis=-1, keepdims=True, out=self._row),
            out=self._scratch,
        )
        np.exp(shifted, out=self._logp)
        np.sum(self._logp, axis=-1, keepdims=True, out=self._row)
        np.subtract(shifted, np.log(self._row, out=self._row), out=self._logp)
        picked = self._logp[self.rows, self.targets]
        return float(-picked.sum() * self.inv)

    def backward(self) -> np.ndarray:
        # NLL backward is a scatter of -1/k into the picked entries; the
        # log-softmax backward is g - softmax * rowsum(g).
        grad = self._grad
        grad[...] = 0.0
        grad[self.rows, self.targets] = -self.inv
        softmax = np.exp(self._logp, out=self._scratch)
        np.sum(grad, axis=-1, keepdims=True, out=self._row)
        np.multiply(softmax, self._row, out=softmax)
        return np.subtract(grad, softmax, out=grad)


# ----------------------------------------------------------------------
# Fused kernels
# ----------------------------------------------------------------------
class _FusedGCN:
    """Closed-form trainer kernel for a plain L-layer sparse-operator GCN."""

    def __init__(self, model: GCN, adjacency: sp.spmatrix, graph) -> None:
        self.model = model
        matrix = adjacency.tocsr()
        self.matrix = matrix
        self.matrix_t = matrix.T.tocsr()
        self.features = np.asarray(graph.features, dtype=np.float64)
        layers = model.layers
        n = self.features.shape[0]
        self.loss = _MaskedCrossEntropy(
            graph.labels, graph.train_mask, (n, layers[-1].weight.shape[1])
        )
        # Epoch-reused buffers.  The final logits are deliberately NOT
        # buffered: the trainer keeps them alive as best-epoch validation
        # logits, so they must be fresh allocations every epoch.
        self._support = [np.empty((n, l.weight.shape[1])) for l in layers]
        self._prop = [np.empty((n, l.weight.shape[1])) for l in layers[:-1]]
        self._gs = [np.empty((n, l.weight.shape[1])) for l in layers]
        self._posmask = [np.empty((n, l.weight.shape[1]), dtype=bool) for l in layers[:-1]]
        self._act = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._drop = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._rand = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._keepmask = [None] + [
            np.empty((n, l.weight.shape[0]), dtype=bool) for l in layers[1:]
        ]
        self._keep = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._grad_in = [None] + [np.empty((n, l.weight.shape[0])) for l in layers[1:]]
        self._grad_w = [np.empty(l.weight.shape) for l in layers]
        self._grad_b = [np.empty(l.bias.shape) for l in layers]
        self._inputs: list[Optional[np.ndarray]] = [None] * len(layers)
        self._preacts: list[Optional[np.ndarray]] = [None] * len(layers)
        self._keeps: list[Optional[np.ndarray]] = [None] * len(layers)

    def train_forward(self) -> tuple[float, np.ndarray]:
        model = self.model
        rate = model.dropout
        rng = model._dropout_rng
        last = len(model.layers) - 1
        h = self.features
        for i, layer in enumerate(model.layers):
            if i > 0:
                a = np.maximum(h, 0.0, out=self._act[i])
                if rate > 0.0:
                    # Same draws, same expression as F.dropout — just into
                    # reused buffers (bool -> float division is the exact
                    # astype-then-divide arithmetic).
                    rng.random(out=self._rand[i])
                    np.greater_equal(self._rand[i], rate, out=self._keepmask[i])
                    keep = np.divide(
                        self._keepmask[i], 1.0 - rate, out=self._keep[i]
                    )
                    h = np.multiply(a, keep, out=self._drop[i])
                else:
                    keep = None
                    h = a
                self._keeps[i] = keep
            self._inputs[i] = h
            support = np.matmul(h, layer.weight.data, out=self._support[i])
            if i < last:
                out = _spmm(self.matrix, support, self._prop[i])
                np.add(out, layer.bias.data, out=out)
                self._preacts[i] = out
            else:
                # The trainer keeps final logits alive across epochs (they
                # become the best-epoch validation logits), so they must be
                # a fresh allocation — but the bias add can still be
                # in-place on the freshly-owned array.
                out = _spmm_fresh(self.matrix, support)
                np.add(out, layer.bias.data, out=out)
            h = out
        return self.loss.forward(h), h

    def backward(self) -> None:
        layers = self.model.layers
        g = self.loss.backward()
        for i in range(len(layers) - 1, -1, -1):
            layer = layers[i]
            layer.bias.grad = np.sum(g, axis=0, out=self._grad_b[i])
            gs = _spmm(self.matrix_t, g, self._gs[i])
            layer.weight.grad = np.matmul(self._inputs[i].T, gs, out=self._grad_w[i])
            if i > 0:
                # Feature grad of layer 0 is never consumed — skip it; for
                # i > 0 chain through dropout (mask multiply) and relu.
                gh = np.matmul(gs, layer.weight.data.T, out=self._grad_in[i])
                if self._keeps[i] is not None:
                    np.multiply(gh, self._keeps[i], out=gh)
                np.greater(self._preacts[i - 1], 0, out=self._posmask[i - 1])
                g = np.multiply(gh, self._posmask[i - 1], out=gh)

    def eval_forward(self) -> np.ndarray:
        layers = self.model.layers
        h = self.features
        for i, layer in enumerate(layers):
            if i > 0:
                h = np.maximum(h, 0.0, out=self._act[i])
            support = np.matmul(h, layer.weight.data, out=self._support[i])
            h = self.matrix @ support
            h = h + layer.bias.data
        return h

    def deferred_eval_forward(self) -> np.ndarray:
        """Eval logits for the weights the LAST ``train_forward`` used.

        Dropout only applies to inputs of layers > 0, so layer 0's training
        output is already the eval-mode one — reuse it and recompute just
        the (hidden-dim-cheap) tail without dropout, skipping the dominant
        ``X @ W⁰`` GEMM.  Valid only right after ``train_forward`` (the
        trainer's deferred-validation protocol guarantees that).
        """
        layers = self.model.layers
        last = len(layers) - 1
        h = self._preacts[0]
        for i in range(1, len(layers)):
            layer = layers[i]
            if i == 1:
                # train_forward already computed relu(preacts[0]) into
                # _act[1] (pre-dropout), and backward never reads it —
                # reuse instead of recomputing the activation.
                a = self._act[1]
            else:
                a = np.maximum(h, 0.0, out=self._act[i])
            support = np.matmul(a, layer.weight.data, out=self._support[i])
            if i < last:
                h = self.matrix @ support
                h = h + layer.bias.data
            else:
                h = _spmm_fresh(self.matrix, support)
                np.add(h, layer.bias.data, out=h)
        return h


class _FusedSGC:
    """Closed-form kernel for SGC: ``softmax(A_n^K X W + b)`` training.

    Propagation goes through the model's own ``_propagated`` memo so the
    ``propagation_count`` bookkeeping (and cross-engine memo sharing) is
    identical to the autodiff path.
    """

    def __init__(self, model: SGC, adjacency: sp.spmatrix, graph) -> None:
        self.model = model
        self.adjacency = adjacency
        self.features = Tensor(graph.features)
        n = self.features.shape[0]
        self.loss = _MaskedCrossEntropy(
            graph.labels, graph.train_mask, (n, model.weight.shape[1])
        )
        self._grad_w = np.empty(model.weight.shape)
        self._grad_b = np.empty(model.bias.shape)
        self._prop: Optional[np.ndarray] = None

    def train_forward(self) -> tuple[float, np.ndarray]:
        model = self.model
        self._prop = model._propagated(self.adjacency, self.features).data
        logits = self._prop @ model.weight.data + model.bias.data
        return self.loss.forward(logits), logits

    def backward(self) -> None:
        model = self.model
        g = self.loss.backward()
        model.bias.grad = np.sum(g, axis=0, out=self._grad_b)
        model.weight.grad = np.matmul(self._prop.T, g, out=self._grad_w)

    def eval_forward(self) -> np.ndarray:
        model = self.model
        prop = model._propagated(self.adjacency, self.features).data
        return prop @ model.weight.data + model.bias.data


class _FusedMultiView:
    """Closed-form kernel for GNAT's shared-weight multi-view GCN.

    Replicates :class:`MultiViewForward` bit for bit.  ``X @ W⁰`` is
    computed once per epoch and shared across views (the views differ only
    in the propagation operator, so the per-view autodiff recomputations
    are value-identical).  Backward runs each view's chain independently,
    then folds the per-view parameter gradients in *reverse* view order —
    the order autodiff's topological sweep accumulates them in, which
    matters because float addition is not associative.
    """

    def __init__(self, model: GCN, operators: Sequence[sp.spmatrix], graph) -> None:
        self.model = model
        self.operators = [op.tocsr() for op in operators]
        self.operators_t = [op.T.tocsr() for op in self.operators]
        self.features = np.asarray(graph.features, dtype=np.float64)
        layers = model.layers
        n = self.features.shape[0]
        views = len(self.operators)
        self.inv_views = 1.0 / float(views)
        self.loss = _MaskedCrossEntropy(
            graph.labels, graph.train_mask, (n, layers[-1].weight.shape[1])
        )
        self._support0 = np.empty((n, layers[0].weight.shape[1]))
        self._support = [None] + [
            np.empty((n, l.weight.shape[1])) for l in layers[1:]
        ]
        self._grad_in = [None] + [
            np.empty((n, l.weight.shape[0])) for l in layers[1:]
        ]
        self._inputs = [[None] * len(layers) for _ in range(views)]
        self._preacts = [[None] * len(layers) for _ in range(views)]
        self._keeps = [[None] * len(layers) for _ in range(views)]
        self._probs: list[Optional[np.ndarray]] = [None] * views
        self._t2: Optional[np.ndarray] = None

    def _view_logits(self, view: int, support0: np.ndarray, training: bool) -> np.ndarray:
        model = self.model
        layers = model.layers
        op = self.operators[view]
        rate = model.dropout
        rng = model._dropout_rng
        last = len(layers) - 1
        h = op @ support0
        h = h + layers[0].bias.data
        if 0 < last:
            self._preacts[view][0] = h
        for i in range(1, len(layers)):
            layer = layers[i]
            a = np.maximum(h, 0.0)
            if training and rate > 0.0:
                keep = (rng.random(a.shape) >= rate).astype(np.float64) / (1.0 - rate)
                x = a * keep
            else:
                keep, x = None, a
            self._keeps[view][i] = keep
            self._inputs[view][i] = x
            support = np.matmul(x, layer.weight.data, out=self._support[i])
            h = op @ support
            h = h + layer.bias.data
            if i < last:
                self._preacts[view][i] = h
        return h

    def _forward(self, training: bool) -> np.ndarray:
        support0 = np.matmul(
            self.features, self.model.layers[0].weight.data, out=self._support0
        )
        probs: Optional[np.ndarray] = None
        for view in range(len(self.operators)):
            z = self._view_logits(view, support0, training)
            shifted = np.exp(z - z.max(axis=1, keepdims=True))
            p = shifted / shifted.sum(axis=1, keepdims=True)
            self._probs[view] = p
            probs = p if probs is None else probs + p
        t2 = probs * self.inv_views + 1e-12
        self._t2 = t2
        return np.log(t2)

    def train_forward(self) -> tuple[float, np.ndarray]:
        logits = self._forward(training=True)
        return self.loss.forward(logits), logits

    def backward(self) -> None:
        model = self.model
        layers = model.layers
        depth = len(layers)
        views = len(self.operators)
        dlogits = self.loss.backward()
        dt2 = dlogits / self._t2
        dprobs = dt2 * self.inv_views
        w_parts = [[None] * depth for _ in range(views)]
        b_parts = [[None] * depth for _ in range(views)]
        for view in range(views):
            op_t = self.operators_t[view]
            p = self._probs[view]
            inner = (dprobs * p).sum(axis=1, keepdims=True)
            g = p * (dprobs - inner)
            for i in range(depth - 1, 0, -1):
                layer = layers[i]
                b_parts[view][i] = g.sum(axis=0)
                gs = op_t @ g
                w_parts[view][i] = self._inputs[view][i].T @ gs
                gh = np.matmul(gs, layer.weight.data.T, out=self._grad_in[i])
                if self._keeps[view][i] is not None:
                    np.multiply(gh, self._keeps[view][i], out=gh)
                g = gh * (self._preacts[view][i - 1] > 0)
            b_parts[view][0] = g.sum(axis=0)
            gs0 = op_t @ g
            w_parts[view][0] = self.features.T @ gs0
        # Reverse-view left fold = autodiff's accumulation order.
        for i in range(depth):
            w_acc = w_parts[views - 1][i]
            b_acc = b_parts[views - 1][i]
            for view in range(views - 2, -1, -1):
                w_acc = w_acc + w_parts[view][i]
                b_acc = b_acc + b_parts[view][i]
            layers[i].weight.grad = w_acc
            layers[i].bias.grad = b_acc

    def eval_forward(self) -> np.ndarray:
        return self._forward(training=False)

    def deferred_eval_forward(self) -> np.ndarray:
        """Eval logits for the weights the LAST ``train_forward`` used.

        Each view's layer-0 output carries no dropout, so the training
        forward already computed the eval-mode one — recompute only the
        hidden-dim tails, skipping the shared ``X @ W⁰`` GEMM *and* every
        view's first sparse propagation.
        """
        layers = self.model.layers
        probs: Optional[np.ndarray] = None
        for view in range(len(self.operators)):
            op = self.operators[view]
            h = self._preacts[view][0]
            for i in range(1, len(layers)):
                layer = layers[i]
                a = np.maximum(h, 0.0)
                support = np.matmul(a, layer.weight.data, out=self._support[i])
                h = op @ support
                h = h + layer.bias.data
            shifted = np.exp(h - h.max(axis=1, keepdims=True))
            p = shifted / shifted.sum(axis=1, keepdims=True)
            probs = p if probs is None else probs + p
        return np.log(probs * self.inv_views + 1e-12)


class _FusedGAT:
    """Closed-form kernel for the two-layer multi-head GAT.

    Replicates :meth:`repro.nn.gat.GAT.forward` + masked cross-entropy op
    for op: per-head ``h¹ = x W``, LeakyReLU attention scores, the support
    mask applied as a ``-1e9`` fill, row softmax, the concatenated-head ELU,
    and both dropout draws from the model's own RNG stream.  The support
    mask (the O(n²) densification the autodiff path pays every forward) is
    built once per fit; the big (n, n) attention intermediates live in
    epoch-reused buffers.  Backward folds the three gradients of each
    head's ``h¹`` (attention product, then dst scores, then src scores) in
    exactly autodiff's reverse post-order, and skips the never-consumed
    feature gradient.
    """

    def __init__(self, model: GAT, adjacency, graph) -> None:
        self.model = model
        self.mask = _support_mask(adjacency)
        self.notmask = ~self.mask
        self.features = np.asarray(graph.features, dtype=np.float64)
        n, in_dim = self.features.shape
        heads = model.heads
        d = heads[0].weight.shape[1]
        out_dim = model.out_layer.weight.shape[1]
        width = d * len(heads)
        self.head_dim = d
        self.loss = _MaskedCrossEntropy(graph.labels, graph.train_mask, (n, out_dim))
        # Per-attention-layer state (heads + the output layer).
        self._h1 = [np.empty((n, d)) for _ in heads]
        self._att = [np.empty((n, n)) for _ in heads]
        self._pos = [np.empty((n, n), dtype=bool) for _ in heads]
        self._H = np.empty((n, out_dim))
        self._att_o = np.empty((n, n))
        self._pos_o = np.empty((n, n), dtype=bool)
        self._gw = [np.empty(h.weight.shape) for h in heads] + [
            np.empty(model.out_layer.weight.shape)
        ]
        # Concat / ELU / dropout stages.
        self._merged = np.empty((n, width))
        self._elu = np.empty((n, width))
        self._elupos = np.empty((n, width), dtype=bool)
        self._dropped = np.empty((n, width))
        self._wide = np.empty((n, width))  # scratch (ELU tail + its backward)
        self._wideb = np.empty((n, width), dtype=bool)
        self._rand0 = np.empty((n, in_dim))
        self._keep0b = np.empty((n, in_dim), dtype=bool)
        self._keep0 = np.empty((n, in_dim))
        self._x = np.empty((n, in_dim))
        self._rand1 = np.empty((n, width))
        self._keep1b = np.empty((n, width), dtype=bool)
        self._keep1 = np.empty((n, width))
        # (n, n) scratch shared by every attention layer's forward/backward.
        self._S = np.empty((n, n))
        self._T = np.empty((n, n))
        self._B = np.empty((n, n), dtype=bool)
        self._row = np.empty((n, 1))
        # Backward buffers.
        self._gH = np.empty((n, out_dim))
        self._ghead = np.empty((n, d))
        self._x_in: Optional[np.ndarray] = None
        self._e_in: Optional[np.ndarray] = None

    def _attention(self, x, layer, h1buf, attbuf, posbuf):
        """One masked-attention layer forward; returns its ``h¹``."""
        S, row = self._S, self._row
        h1 = np.matmul(x, layer.weight.data, out=h1buf)
        src = h1 @ layer.attn_src.data
        dst = h1 @ layer.attn_dst.data
        np.add(src, dst.T, out=S)
        # leaky_relu: np.where(pre > 0, pre, slope * pre), via masked copy.
        np.greater(S, 0, out=posbuf)
        np.multiply(S, layer.slope, out=self._T)
        np.logical_not(posbuf, out=self._B)
        np.copyto(S, self._T, where=self._B)
        np.copyto(S, _NEG_INF, where=self.notmask)
        # softmax: exp(a - rowmax) / rowsum.  Off-support entries sit at
        # -1e9 - rowmax, where IEEE exp underflows to exactly +0.0 — so
        # exp-ing only the support (after zeroing the buffer) reproduces
        # the full-matrix result bit for bit while skipping the underflow
        # slow path the autodiff oracle pays on every masked entry.
        np.max(S, axis=1, keepdims=True, out=row)
        np.subtract(S, row, out=S)
        np.copyto(attbuf, 0.0)
        np.exp(S, out=attbuf, where=self.mask)
        np.sum(attbuf, axis=1, keepdims=True, out=row)
        np.divide(attbuf, row, out=attbuf)
        return h1

    def _attention_backward(self, gout, layer, h1, att, pos, gh1buf, x_in, gwbuf):
        """Backward of one attention layer; returns the grad w.r.t. ``x``-side
        ``h¹`` caller input (i.e. d loss / d h¹ fully accumulated)."""
        S, T, row = self._S, self._T, self._row
        # h¹'s first gradient contribution: the attention product.
        gh1 = np.matmul(att.T, gout, out=gh1buf)
        datt = np.matmul(gout, h1.T, out=S)
        # softmax backward: out * (g - (g*out).sum(axis=1)).
        np.multiply(datt, att, out=T)
        np.sum(T, axis=1, keepdims=True, out=row)
        np.subtract(datt, row, out=S)
        np.multiply(att, S, out=S)
        # masked_fill backward zeroes the filled entries.
        np.copyto(S, 0.0, where=self.notmask)
        # leaky_relu backward: g * where(pre > 0, 1, slope), via masked copy.
        np.multiply(S, layer.slope, out=T)
        np.logical_not(pos, out=self._B)
        np.copyto(S, T, where=self._B)
        # src + dst.T backward: unbroadcast to the (n, 1) score columns;
        # autodiff's reverse post-order folds dst's contribution before src's.
        dsrc = S.sum(axis=1, keepdims=True)
        ddst = S.sum(axis=0, keepdims=True).T
        np.add(gh1, ddst @ layer.attn_dst.data.T, out=gh1)
        layer.attn_dst.grad = h1.T @ ddst
        np.add(gh1, dsrc @ layer.attn_src.data.T, out=gh1)
        layer.attn_src.grad = h1.T @ dsrc
        layer.weight.grad = np.matmul(x_in.T, gh1, out=gwbuf)
        return gh1

    def _merge_forward(self, x, training):
        """Heads -> concat -> ELU (+ training dropout) -> input of out layer."""
        model = self.model
        d = self.head_dim
        for i, head in enumerate(model.heads):
            h1 = self._attention(x, head, self._h1[i], self._att[i], self._pos[i])
            np.matmul(self._att[i], h1, out=self._merged[:, i * d : (i + 1) * d])
        m = self._merged
        # elu: np.where(a > 0, a, exp(min(a, 0)) - 1) at alpha=1.
        np.greater(m, 0, out=self._elupos)
        np.minimum(m, 0.0, out=self._wide)
        np.exp(self._wide, out=self._wide)
        np.subtract(self._wide, 1.0, out=self._wide)
        np.copyto(self._elu, m)
        np.logical_not(self._elupos, out=self._wideb)
        np.copyto(self._elu, self._wide, where=self._wideb)
        rate = model.dropout
        if training and rate > 0.0:
            model._dropout_rng.random(out=self._rand1)
            np.greater_equal(self._rand1, rate, out=self._keep1b)
            np.divide(self._keep1b, 1.0 - rate, out=self._keep1)
            return np.multiply(self._elu, self._keep1, out=self._dropped)
        return self._elu

    def train_forward(self) -> tuple[float, np.ndarray]:
        model = self.model
        rate = model.dropout
        x = self.features
        if rate > 0.0:
            # Same draws, same expression as F.dropout, into reused buffers.
            model._dropout_rng.random(out=self._rand0)
            np.greater_equal(self._rand0, rate, out=self._keep0b)
            np.divide(self._keep0b, 1.0 - rate, out=self._keep0)
            x = np.multiply(self.features, self._keep0, out=self._x)
        self._x_in = x
        e = self._merge_forward(x, training=True)
        self._e_in = e
        H = self._attention(e, model.out_layer, self._H, self._att_o, self._pos_o)
        logits = self._att_o @ H  # fresh: the trainer keeps logits alive
        return self.loss.forward(logits), logits

    def backward(self) -> None:
        model = self.model
        g = self.loss.backward()
        gH = self._attention_backward(
            g, model.out_layer, self._H, self._att_o, self._pos_o,
            self._gH, self._e_in, self._gw[-1],
        )
        ge = np.matmul(gH, model.out_layer.weight.data.T, out=self._wide)
        if model.dropout > 0.0:
            np.multiply(ge, self._keep1, out=ge)
        # elu backward: g * where(m > 0, 1, elu + 1), via masked copy.
        tail = self._merged  # safe: forward state now consumed
        np.add(self._elu, 1.0, out=tail)
        np.multiply(ge, tail, out=tail)
        np.logical_not(self._elupos, out=self._wideb)
        np.copyto(ge, tail, where=self._wideb)
        # concat backward: slice per head, reverse construction order.
        d = self.head_dim
        for i in reversed(range(len(model.heads))):
            self._attention_backward(
                ge[:, i * d : (i + 1) * d], model.heads[i],
                self._h1[i], self._att[i], self._pos[i],
                self._ghead, self._x_in, self._gw[i],
            )

    def eval_forward(self) -> np.ndarray:
        model = self.model
        e = self._merge_forward(self.features, training=False)
        H = self._attention(e, model.out_layer, self._H, self._att_o, self._pos_o)
        return self._att_o @ H


class _FusedRGCN:
    """Closed-form kernel for RGCN's Gaussian GCN + KL regularizer.

    Replicates :meth:`repro.defenses.rgcn.GaussianGCNModel.forward` plus
    ``ce + β·KL``: two sparse-operator passes (means through the mean
    operator, variances through the variance operator) with the elementwise
    attention/KL couplings, sampling ``μ + ε√σ`` from the model's own RNG.
    Backward replays autodiff's reverse post-order — the KL chain folds its
    contributions into ``μ₂``/``σ₂`` *before* the cross-entropy chain does —
    and skips both feature gradients.  Validation is free: the training
    forward already computes the eval-mode logits (``μ₂``, sampled only
    afterwards), so :meth:`deferred_eval_forward` just returns them.
    """

    def __init__(self, model, operators, graph, beta_kl: float) -> None:
        self.model = model
        adj_mean, adj_var = operators
        self.am = adj_mean.tocsr()
        self.av = adj_var.tocsr()
        self.am_t = self.am.T.tocsr()
        self.av_t = self.av.T.tocsr()
        self.features = np.asarray(graph.features, dtype=np.float64)
        self.beta_kl = float(beta_kl)
        n = self.features.shape[0]
        d = model.w_mean_1.shape[1]
        c = model.w_mean_2.shape[1]
        self.loss = _MaskedCrossEntropy(graph.labels, graph.train_mask, (n, c))
        # Epoch-reused buffers; μ₂ is deliberately fresh every epoch (the
        # trainer keeps it alive as deferred validation logits).
        self._xm1 = np.empty((n, d))
        self._sm1 = np.empty((n, d))
        self._mean1 = np.empty((n, d))
        self._pos_m1 = np.empty((n, d), dtype=bool)
        self._xv1 = np.empty((n, d))
        self._sv1 = np.empty((n, d))
        self._pos_v1 = np.empty((n, d), dtype=bool)
        self._rv1 = np.empty((n, d))
        self._var1 = np.empty((n, d))
        self._att = np.empty((n, d))
        self._ma = np.empty((n, d))
        self._p1 = np.empty((n, d))
        self._p2 = np.empty((n, d))
        self._xm2 = np.empty((n, c))
        self._xv2 = np.empty((n, c))
        self._sv2 = np.empty((n, c))
        self._pos_v2 = np.empty((n, c), dtype=bool)
        self._rv2 = np.empty((n, c))
        self._var2 = np.empty((n, c))
        self._sqrt = np.empty((n, c))
        self._mm = np.empty((n, c))
        self._td = np.empty((n, d))
        self._tc = np.empty((n, c))
        self._negb = np.empty((n, d), dtype=bool)
        self._gv2 = np.empty((n, c))
        self._gm2 = np.empty((n, c))
        self._gxm2 = np.empty((n, c))
        self._gxv2 = np.empty((n, c))
        self._gma = np.empty((n, d))
        self._gp1 = np.empty((n, d))
        self._gatt = np.empty((n, d))
        self._gvar1 = np.empty((n, d))
        self._gmean1 = np.empty((n, d))
        self._gxm1 = np.empty((n, d))
        self._gxv1 = np.empty((n, d))
        self._gw = {
            name: np.empty(getattr(model, name).shape)
            for name in ("w_mean_1", "w_var_1", "w_mean_2", "w_var_2")
        }
        self._mean2: Optional[np.ndarray] = None
        self._noise: Optional[np.ndarray] = None

    def _mean_path(self) -> np.ndarray:
        """First layer (both chains) + second mean layer; returns fresh μ₂."""
        model = self.model
        x = self.features
        xm1 = np.matmul(x, model.w_mean_1.data, out=self._xm1)
        sm1 = _spmm(self.am, xm1, self._sm1)
        # elu: np.where(a > 0, a, exp(min(a, 0)) - 1) at alpha=1.
        np.greater(sm1, 0, out=self._pos_m1)
        np.minimum(sm1, 0.0, out=self._td)
        np.exp(self._td, out=self._td)
        np.subtract(self._td, 1.0, out=self._td)
        np.copyto(self._mean1, sm1)
        np.logical_not(self._pos_m1, out=self._negb)
        np.copyto(self._mean1, self._td, where=self._negb)
        xv1 = np.matmul(x, model.w_var_1.data, out=self._xv1)
        sv1 = _spmm(self.av, xv1, self._sv1)
        np.greater(sv1, 0, out=self._pos_v1)
        rv1 = np.maximum(sv1, 0.0, out=self._rv1)
        var1 = np.add(rv1, 1e-6, out=self._var1)
        np.multiply(var1, -model.gamma, out=self._att)
        np.exp(self._att, out=self._att)
        np.multiply(self._mean1, self._att, out=self._ma)
        xm2 = np.matmul(self._ma, model.w_mean_2.data, out=self._xm2)
        return _spmm_fresh(self.am, xm2)

    def train_forward(self) -> tuple[float, np.ndarray]:
        model = self.model
        n = self.features.shape[0]
        mean2 = self._mean_path()
        self._mean2 = mean2
        p1 = np.multiply(self._var1, self._att, out=self._p1)
        p2 = np.multiply(p1, self._att, out=self._p2)
        xv2 = np.matmul(p2, model.w_var_2.data, out=self._xv2)
        sv2 = _spmm(self.av, xv2, self._sv2)
        np.greater(sv2, 0, out=self._pos_v2)
        rv2 = np.maximum(sv2, 0.0, out=self._rv2)
        var2 = np.add(rv2, 1e-6, out=self._var2)
        # KL(N(μ,σ) ‖ N(0,1)) = 0.5 · mean_v Σ_c (μ² + σ − log σ − 1).
        t = np.multiply(mean2, mean2, out=self._mm)
        t = np.add(t, var2, out=self._tc)
        np.subtract(t, np.log(var2, out=self._mm), out=t)
        np.subtract(t, 1.0, out=t)
        kl = 0.5 * (t.sum(axis=1).sum() * (1.0 / float(n)))
        # Training sample z = μ + ε√σ from the model's own sampling stream.
        noise = model._sample_rng.normal(size=var2.shape)
        self._noise = noise
        sqrt = np.sqrt(var2, out=self._sqrt)
        logits = mean2 + np.multiply(noise, sqrt, out=self._tc)
        ce = self.loss.forward(logits)
        return ce + self.beta_kl * kl, logits

    def backward(self) -> None:
        model = self.model
        n, c = self._var2.shape
        x = self.features
        # The KL chain runs first in autodiff's reverse post-order.  Its
        # upstream is the constant (β·0.5)/n broadcast over (n, c).
        v = (self.beta_kl * 0.5) * (1.0 / float(n))
        var2 = self._var2
        gv2 = np.divide(-v, var2, out=self._gv2)
        np.add(gv2, v, out=gv2)
        gm2 = np.multiply(self._mean2, v, out=self._gm2)
        np.add(gm2, gm2, out=gm2)
        # Then the cross-entropy chain folds in through the sampled logits.
        g = self.loss.backward()
        np.add(gm2, g, out=gm2)
        t = np.multiply(g, self._noise, out=self._tc)
        np.multiply(t, 0.5, out=t)
        np.divide(t, self._sqrt, out=t)
        np.add(gv2, t, out=gv2)
        # Variance chain (processed before the mean chain): σ₂ -> W_v2, p2.
        np.multiply(gv2, self._pos_v2, out=gv2)
        gxv2 = _spmm(self.av_t, gv2, self._gxv2)
        model.w_var_2.grad = np.matmul(
            self._p2.T, gxv2, out=self._gw["w_var_2"]
        )
        gp2 = np.matmul(gxv2, model.w_var_2.data.T, out=self._td)
        gp1 = np.multiply(gp2, self._att, out=self._gp1)
        gatt = np.multiply(gp2, self._p1, out=self._gatt)
        gvar1 = np.multiply(gp1, self._att, out=self._gvar1)
        np.add(gatt, np.multiply(gp1, self._var1, out=self._td), out=gatt)
        # Mean chain: μ₂ -> W_m2, (μ₁·α).
        gxm2 = _spmm(self.am_t, gm2, self._gxm2)
        model.w_mean_2.grad = np.matmul(
            self._ma.T, gxm2, out=self._gw["w_mean_2"]
        )
        gma = np.matmul(gxm2, model.w_mean_2.data.T, out=self._gma)
        gmean1 = np.multiply(gma, self._att, out=self._gmean1)
        np.add(gatt, np.multiply(gma, self._mean1, out=self._td), out=gatt)
        # Attention α = exp(−γ·σ₁): chain into σ₁ after p1's contribution.
        np.multiply(gatt, self._att, out=gatt)
        np.multiply(gatt, -model.gamma, out=self._td)
        np.add(gvar1, self._td, out=gvar1)
        np.multiply(gvar1, self._pos_v1, out=gvar1)
        gxv1 = _spmm(self.av_t, gvar1, self._gxv1)
        model.w_var_1.grad = np.matmul(x.T, gxv1, out=self._gw["w_var_1"])
        # elu backward: g * where(s > 0, 1, elu + 1).
        np.add(self._mean1, 1.0, out=self._td)
        np.multiply(gmean1, self._td, out=self._td)
        np.logical_not(self._pos_m1, out=self._negb)
        np.copyto(gmean1, self._td, where=self._negb)
        gxm1 = _spmm(self.am_t, gmean1, self._gxm1)
        model.w_mean_1.grad = np.matmul(x.T, gxm1, out=self._gw["w_mean_1"])

    def eval_forward(self) -> np.ndarray:
        # Eval-mode logits are the propagated means; the σ₂/KL/sampling tail
        # is never consumed, so the fused path skips it outright.
        return self._mean_path()

    def deferred_eval_forward(self) -> np.ndarray:
        """Eval logits for the weights the LAST ``train_forward`` used.

        The training forward computes μ₂ *before* sampling — exactly the
        eval-mode logits — so deferred validation costs nothing at all.
        """
        return self._mean2


class _FusedSimPGCN:
    """Closed-form kernel for SimPGCN's adaptive propagation + SSL head.

    Replicates :meth:`repro.defenses.simpgcn.SimPGCNModel.forward` plus
    ``ce + w·SSL``: per layer a topology propagation, a kNN-feature-graph
    propagation, a sigmoid gate mixing them, and a learnable self term; the
    SSL head regresses sampled pair-embedding differences onto cosine
    similarity, drawing each epoch's pairs from the same
    :class:`~repro.defenses.simpgcn.SSLLoss` RNG stream as the autodiff
    path.  Backward replays autodiff's reverse post-order: the SSL scatter
    gradients fold into the hidden layer before the classification chain,
    and both feature gradients are skipped.  The forward is deterministic,
    so the trainer reuses training logits for validation outright.
    """

    def __init__(self, model, operators, graph, ssl) -> None:
        self.model = model
        adj_topo, adj_feat = operators
        self.at = adj_topo.tocsr()
        self.af = adj_feat.tocsr()
        self.at_t = self.at.T.tocsr()
        self.af_t = self.af.T.tocsr()
        self.features = np.asarray(graph.features, dtype=np.float64)
        self.ssl = ssl
        n = self.features.shape[0]
        d = model.layer1.weight.shape[1]
        c = model.layer2.weight.shape[1]
        self.loss = _MaskedCrossEntropy(graph.labels, graph.train_mask, (n, c))
        self._s1 = np.empty((n, d))
        self._tp1 = np.empty((n, d))
        self._fp1 = np.empty((n, d))
        self._z1 = np.empty((n, d))
        self._pos1 = np.empty((n, d), dtype=bool)
        self._h = np.empty((n, d))
        self._s2 = np.empty((n, c))
        self._tp2 = np.empty((n, c))
        self._fp2 = np.empty((n, c))
        self._td = np.empty((n, d))
        self._tc = np.empty((n, c))
        self._gs1 = np.empty((n, d))
        self._gs2 = np.empty((n, c))
        self._gprop = np.empty((n, c))
        self._gpropd = np.empty((n, d))
        self._layer_state = [{}, {}]
        self._gw = [
            {
                "weight": np.empty(layer.weight.shape),
                "gate_w": np.empty(layer.gate_w.shape),
                "self_coeff": np.empty(layer.self_coeff.shape),
            }
            for layer in (model.layer1, model.layer2)
        ]

    def _layer_forward(self, layer, xin, sbuf, tpbuf, fpbuf, state):
        """One adaptive layer: gate·topo + (1−gate)·feat + self·support."""
        s = np.matmul(xin, layer.weight.data, out=sbuf)
        gpre = xin @ layer.gate_w.data + layer.gate_b.data
        gate = 1.0 / (1.0 + np.exp(-gpre))
        tp = _spmm(self.at, s, tpbuf)
        fp = _spmm(self.af, s, fpbuf)
        sc = xin @ layer.self_coeff.data
        om = 1.0 - gate
        state["gate"], state["om"], state["sc"] = gate, om, sc
        z = np.multiply(gate, tp)
        np.add(z, np.multiply(om, fp), out=z)
        np.add(z, np.multiply(sc, s), out=z)
        return z

    def _forward(self) -> np.ndarray:
        model = self.model
        z1 = self._layer_forward(
            model.layer1, self.features, self._s1, self._tp1, self._fp1,
            self._layer_state[0],
        )
        np.copyto(self._z1, z1)
        np.greater(self._z1, 0, out=self._pos1)
        h = np.maximum(self._z1, 0.0, out=self._h)
        return self._layer_forward(
            model.layer2, h, self._s2, self._tp2, self._fp2,
            self._layer_state[1],
        )

    def train_forward(self) -> tuple[float, np.ndarray]:
        logits = self._forward()  # fresh: the trainer reuses training logits
        ce = self.loss.forward(logits)
        # SSL term, drawn from the same stream the autodiff closure uses.
        pairs = self.ssl.draw_pairs()
        targets = self.ssl.pair_targets(pairs)
        h = self._h
        diff = h[pairs[:, 0]] - h[pairs[:, 1]]
        pred = diff @ self.model.ssl_head.data
        resid = pred.reshape(-1) - targets
        sq = resid * resid
        sslval = sq.sum() * (1.0 / float(sq.size))
        self._pairs, self._diff, self._resid = pairs, diff, resid
        return ce + self.ssl.weight * sslval, logits

    def _layer_backward(self, layer, g, xin, s, tp, fp, state, gsbuf, gw, gx):
        """Backward of one adaptive layer.

        When ``gx`` is given it already holds the SSL chain's gradient on
        this layer's input; the layer's own contributions fold on top in
        autodiff's accumulation order (self term, then support, then gate).
        ``gx=None`` skips the input gradient (the feature layer)."""
        gate, om, sc = state["gate"], state["om"], state["sc"]
        wide = g.shape[1] == self._tc.shape[1]
        t = self._tc if wide else self._td
        prop = self._gprop if wide else self._gpropd
        # self term (last constructed, first in reverse post-order).
        np.multiply(g, s, out=t)
        gsc = t.sum(axis=1, keepdims=True)
        gs = np.multiply(g, sc, out=gsbuf)
        if gx is not None:
            np.add(gx, gsc @ layer.self_coeff.data.T, out=gx)
        layer.self_coeff.grad = np.matmul(xin.T, gsc, out=gw["self_coeff"])
        # feature-graph term, then topology term.
        np.multiply(g, fp, out=t)
        gom = t.sum(axis=1, keepdims=True)
        gfp = np.multiply(g, om, out=t)
        np.add(gs, _spmm(self.af_t, gfp, prop), out=gs)
        ggate = -gom
        np.multiply(g, tp, out=t)
        ggate = ggate + t.sum(axis=1, keepdims=True)
        gtp = np.multiply(g, gate, out=t)
        np.add(gs, _spmm(self.at_t, gtp, prop), out=gs)
        if gx is not None:
            np.add(gx, gs @ layer.weight.data.T, out=gx)
        layer.weight.grad = np.matmul(xin.T, gs, out=gw["weight"])
        # sigmoid gate backward: g * gate * (1 - gate).
        ggpre = ggate * gate * om
        layer.gate_b.grad = ggpre.sum(axis=0)
        if gx is not None:
            np.add(gx, ggpre @ layer.gate_w.data.T, out=gx)
        layer.gate_w.grad = np.matmul(xin.T, ggpre, out=gw["gate_w"])
        return gx

    def backward(self) -> None:
        model = self.model
        pairs, diff, resid = self._pairs, self._diff, self._resid
        m = len(resid)
        n = self.features.shape[0]
        # SSL chain first (reverse post-order): resid² mean -> scatter into h.
        s = self.ssl.weight * (1.0 / float(m))
        t = s * resid
        gresid = t + t
        gpred = gresid.reshape(m, 1)
        model.ssl_head.grad = diff.T @ gpred
        gdiff = gpred @ model.ssl_head.data.T
        scatter_r = sp.csr_matrix(
            (np.ones(m), (pairs[:, 1], np.arange(m))), shape=(n, m)
        )
        scatter_l = sp.csr_matrix(
            (np.ones(m), (pairs[:, 0], np.arange(m))), shape=(n, m)
        )
        gh = scatter_r @ (-gdiff)
        gh = gh + scatter_l @ gdiff
        # Classification chain: layer 2 folds its four h-contributions on top.
        g = self.loss.backward()
        gh = self._layer_backward(
            model.layer2, g, self._h, self._s2, self._tp2, self._fp2,
            self._layer_state[1], self._gs2, self._gw[1], gh,
        )
        np.multiply(gh, self._pos1, out=gh)
        self._layer_backward(
            model.layer1, gh, self.features, self._s1, self._tp1, self._fp1,
            self._layer_state[0], self._gs1, self._gw[0], None,
        )

    def eval_forward(self) -> np.ndarray:
        return self._forward()


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def _is_plain_bound_forward(forward: Callable, model) -> bool:
    """Is ``forward`` exactly the model's own (un-overridden) forward?"""
    return (
        getattr(forward, "__self__", None) is model
        and getattr(forward, "__func__", None) is type(model).forward
    )


def _gcn_fusible(model: GCN) -> bool:
    return 0.0 <= model.dropout < 1.0 and all(
        layer.bias is not None for layer in model.layers
    )


def _loss_classes():
    """The recognized loss-term classes, imported lazily.

    ``repro.defenses`` imports ``repro.nn``; importing the other way at
    module scope would be circular, so the defense loss classes resolve on
    first dispatch.
    """
    from ..defenses.rgcn import GaussianGCNModel, KLLoss
    from ..defenses.simpgcn import SimPGCNModel, SSLLoss

    return GaussianGCNModel, KLLoss, SimPGCNModel, SSLLoss


def _ineligible(strict: bool, reason: str):
    """Reject a fused dispatch: raise with the *specific* blocker in strict
    mode, else fall back to autodiff by returning None."""
    if strict:
        raise ConfigError(
            f"engine='fused' requires a fusible training setup, but {reason}; "
            "use engine='auto' to fall back to autodiff"
        )
    return None


def _operator_pair_reason(adjacency, names: tuple[str, str]) -> Optional[str]:
    """Why ``adjacency`` is not the expected (sparse, sparse) operator pair."""
    if not isinstance(adjacency, tuple) or len(adjacency) != 2:
        return f"adjacency is {type(adjacency).__name__}, not a ({names[0]}, {names[1]}) operator pair"
    for name, op in zip(names, adjacency):
        if not sp.issparse(op):
            return f"the {name} operator is a dense {type(op).__name__}, not scipy.sparse"
    return None


def make_fused_kernel(
    model,
    graph,
    adjacency,
    forward: Callable,
    loss_fn: Optional[Callable],
    strict: bool = False,
):
    """Return a fused kernel for this training setup, or None if ineligible.

    Eligibility is deliberately exact-type and exact-forward: subclasses or
    wrapped forwards may compute anything, so they keep the autodiff path.
    With ``strict=True`` (the trainer's ``engine="fused"``), every rejection
    raises :class:`~repro.errors.ConfigError` naming the specific
    ineligible component — the model class, the operator kind, or the
    custom loss — instead of returning None.
    """
    GaussianGCNModel, KLLoss, SimPGCNModel, SSLLoss = _loss_classes()
    if loss_fn is not None:
        # Only the two recognized defense loss terms fuse; anything else is
        # an arbitrary closure the kernels cannot replicate.
        if isinstance(loss_fn, KLLoss):
            if type(model) is not GaussianGCNModel:
                return _ineligible(
                    strict,
                    f"KLLoss pairs with GaussianGCNModel, not {type(model).__name__}",
                )
            if loss_fn.model is not model:
                return _ineligible(
                    strict, "the KLLoss is bound to a different model instance"
                )
            if not _is_plain_bound_forward(forward, model):
                return _ineligible(
                    strict, "the forward is wrapped or overridden, not GaussianGCNModel.forward"
                )
            reason = _operator_pair_reason(adjacency, ("mean", "variance"))
            if reason is not None:
                return _ineligible(strict, reason)
            return _FusedRGCN(model, adjacency, graph, loss_fn.beta_kl)
        if isinstance(loss_fn, SSLLoss):
            if type(model) is not SimPGCNModel:
                return _ineligible(
                    strict,
                    f"SSLLoss pairs with SimPGCNModel, not {type(model).__name__}",
                )
            if loss_fn.model is not model:
                return _ineligible(
                    strict, "the SSLLoss is bound to a different model instance"
                )
            if not _is_plain_bound_forward(forward, model):
                return _ineligible(
                    strict, "the forward is wrapped or overridden, not SimPGCNModel.forward"
                )
            reason = _operator_pair_reason(adjacency, ("topology", "feature-graph"))
            if reason is not None:
                return _ineligible(strict, reason)
            return _FusedSimPGCN(model, adjacency, graph, loss_fn)
        name = getattr(type(loss_fn), "__qualname__", type(loss_fn).__name__)
        if name in ("function", "lambda"):
            name = getattr(loss_fn, "__qualname__", repr(loss_fn))
        return _ineligible(strict, f"custom loss_fn {name!r} is not a recognized loss term")
    if isinstance(forward, MultiViewForward):
        target = forward.model
        if target is not model:
            return _ineligible(
                strict, "the MultiViewForward wraps a different model instance"
            )
        if type(target) is not GCN:
            return _ineligible(
                strict,
                f"multi-view fusion covers plain GCN, not {type(target).__name__}",
            )
        for i, op in enumerate(forward.operators):
            if not sp.issparse(op):
                return _ineligible(
                    strict,
                    f"view operator {i} is a dense {type(op).__name__}, not scipy.sparse",
                )
        if not _gcn_fusible(target):
            return _ineligible(
                strict, "the GCN has dropout >= 1 or bias-free layers"
            )
        return _FusedMultiView(target, forward.operators, graph)
    if not _is_plain_bound_forward(forward, model):
        return _ineligible(
            strict,
            f"the forward is wrapped or overridden, not {type(model).__name__}.forward",
        )
    if type(model) is GAT:
        # GAT's kernel only reads the adjacency's support pattern, so dense
        # adjacencies are as fusible as sparse ones.
        if not 0.0 <= model.dropout < 1.0:
            return _ineligible(strict, f"GAT dropout {model.dropout} is outside [0, 1)")
        return _FusedGAT(model, adjacency, graph)
    if not sp.issparse(adjacency):
        return _ineligible(
            strict,
            f"the adjacency operator is a dense {type(adjacency).__name__}, "
            "not scipy.sparse (e.g. GCN-SVD's low-rank dense operator)",
        )
    if type(model) is GCN:
        if not _gcn_fusible(model):
            return _ineligible(
                strict, "the GCN has dropout >= 1 or bias-free layers"
            )
        return _FusedGCN(model, adjacency, graph)
    if type(model) is SGC:
        return _FusedSGC(model, adjacency, graph)
    return _ineligible(
        strict, f"no fused kernel covers model class {type(model).__name__}"
    )


def training_matches_eval(model, forward: Callable, loss_fn: Optional[Callable]) -> bool:
    """True when a train-mode forward is bit-identical to an eval-mode one.

    Holds for models without stochastic forward ops under their plain
    forward (SGC always; GCN at dropout 0, or with a single layer —
    dropout only applies to inputs of layers > 0; GAT at dropout 0;
    SimPGCN always, including under its recognized ``SSLLoss`` — the SSL
    term randomizes the *loss*, never the logits) — the trainer then
    reuses training logits for validation instead of paying a second full
    forward per epoch.  RGCN never qualifies: its training logits are
    sampled.
    """
    if loss_fn is not None:
        _, _, SimPGCNModel, SSLLoss = _loss_classes()
        return (
            isinstance(loss_fn, SSLLoss)
            and type(model) is SimPGCNModel
            and loss_fn.model is model
            and _is_plain_bound_forward(forward, model)
        )
    if isinstance(forward, MultiViewForward):
        target = forward.model
        if target is not model:
            return False
    elif _is_plain_bound_forward(forward, model):
        target = model
    else:
        return False
    if type(target) is SGC:
        return True
    if type(target) is GAT:
        return target.dropout <= 0.0
    return type(target) is GCN and (
        target.dropout <= 0.0 or len(target.layers) == 1
    )
