"""Minimal module system for GNN models (parameter registration + modes)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Module"]


class Module:
    """Base class for models: tracks parameters and train/eval mode.

    Parameters are discovered by attribute scanning: any :class:`Tensor`
    attribute with ``requires_grad=True``, plus parameters of any nested
    :class:`Module` (also inside list attributes, for layer stacks).
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------
    def parameters(self) -> list[Tensor]:
        """All trainable tensors of this module and its children."""
        return list(self._iter_parameters())

    def _iter_parameters(self) -> Iterator[Tensor]:
        for value in self.__dict__.values():
            yield from _extract_params(value)

    def modules(self) -> Iterator["Module"]:
        """This module and every nested child module."""
        yield self
        for value in self.__dict__.values():
            yield from _extract_modules(value)

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch to training mode (enables dropout etc.)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> list[np.ndarray]:
        """Snapshot of all parameter arrays (copied)."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        """Restore parameters from :meth:`state_dict` output."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays but model has {len(params)} parameters"
            )
        for param, array in zip(params, state):
            if param.data.shape != array.shape:
                raise ValueError(
                    f"parameter shape {param.data.shape} != saved shape {array.shape}"
                )
            param.data = array.copy()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()


def _extract_params(value: object) -> Iterator[Tensor]:
    if isinstance(value, Tensor):
        if value.requires_grad:
            yield value
    elif isinstance(value, Module):
        yield from value._iter_parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _extract_params(item)


def _extract_modules(value: object) -> Iterator[Module]:
    if isinstance(value, Module):
        yield from value.modules()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _extract_modules(item)
