"""APPNP (Klicpera et al., 2019) — predict-then-propagate.

Personalized-PageRank propagation decouples feature transformation from
neighborhood aggregation:

    H⁰ = MLP(X);    Hᵏ⁺¹ = (1 − α)·A_n Hᵏ + α·H⁰;    Z = H^K

Relevant to the paper's over-smoothing discussion ([67]–[69], Sec. V-E3):
the teleport term α keeps deep propagation anchored to each node's own
features, which also makes APPNP structurally similar to GNAT's ego view.
Included as an additional victim architecture.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, functional as F, glorot_uniform, zeros
from ..utils.rng import SeedLike, ensure_rng
from .gcn import AdjacencyLike, _propagate
from .module import Module

__all__ = ["APPNP"]


class APPNP(Module):
    """MLP + K-step personalized-PageRank propagation.

    The adjacency passed to :meth:`forward` must be GCN-normalized.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden_dim: int = 16,
        k_steps: int = 10,
        alpha: float = 0.1,
        dropout: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        if k_steps < 1:
            raise ValueError(f"k_steps must be >= 1, got {k_steps}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
        rng = ensure_rng(seed)
        self.w1 = glorot_uniform(in_dim, hidden_dim, rng)
        self.b1 = zeros(hidden_dim)
        self.w2 = glorot_uniform(hidden_dim, out_dim, rng)
        self.b2 = zeros(out_dim)
        self.k_steps = int(k_steps)
        self.alpha = float(alpha)
        self.dropout = float(dropout)
        self._dropout_rng = ensure_rng(rng.integers(0, 2**63 - 1))

    def forward(self, adjacency: AdjacencyLike, features: Tensor) -> Tensor:
        """Return raw logits ``(n, out_dim)``."""
        h = features if isinstance(features, Tensor) else Tensor(features)
        h = F.dropout(h, self.dropout, self._dropout_rng, training=self.training)
        h = F.relu(h.matmul(self.w1) + self.b1)
        h = F.dropout(h, self.dropout, self._dropout_rng, training=self.training)
        local = h.matmul(self.w2) + self.b2
        propagated = local
        for _ in range(self.k_steps):
            propagated = _propagate(adjacency, propagated) * (1.0 - self.alpha) + (
                local * self.alpha
            )
        return propagated

    def predict(self, adjacency: AdjacencyLike, features: Tensor) -> np.ndarray:
        """Hard label predictions in eval mode."""
        was_training = self.training
        self.eval()
        logits = self.forward(adjacency, features)
        if was_training:
            self.train()
        return np.argmax(logits.data, axis=1)
