"""DropEdge training (Rong et al., 2020) — stochastic-topology defense.

Cited by the paper ([67]) in the over-smoothing discussion; in the
robustness literature it doubles as a simple defense: each training epoch
samples a random edge subset, so no single (possibly adversarial) edge can
dominate what the model learns — topology-level dropout.  Evaluation uses
the full graph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from ..graph import Graph, gcn_normalize
from ..nn import GCN, TrainConfig, accuracy
from ..tensor import Adam, Tensor, functional as F, no_grad
from ..utils.rng import SeedLike, ensure_rng
from .base import Defender

__all__ = ["DropEdgeGCN", "sample_edge_subgraph"]


def sample_edge_subgraph(
    adjacency: sp.csr_matrix, keep_prob: float, rng: np.random.Generator
) -> sp.csr_matrix:
    """Keep each undirected edge independently with ``keep_prob``."""
    if not 0.0 < keep_prob <= 1.0:
        raise ConfigError(f"keep_prob must lie in (0, 1], got {keep_prob}")
    upper = sp.triu(adjacency, k=1).tocoo()
    keep = rng.random(upper.nnz) < keep_prob
    kept = sp.coo_matrix(
        (upper.data[keep], (upper.row[keep], upper.col[keep])), shape=adjacency.shape
    )
    sampled = kept + kept.T
    return sampled.tocsr()


class DropEdgeGCN(Defender):
    """GCN trained with per-epoch random edge dropping.

    Parameters
    ----------
    keep_prob:
        Probability each edge survives in a given epoch's subgraph.
    """

    name = "DropEdge"

    def __init__(
        self,
        keep_prob: float = 0.7,
        hidden_dim: int = 16,
        train_config: Optional[TrainConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if not 0.0 < keep_prob <= 1.0:
            raise ConfigError(f"keep_prob must lie in (0, 1], got {keep_prob}")
        self.keep_prob = float(keep_prob)
        self.hidden_dim = int(hidden_dim)
        self.train_config = train_config or TrainConfig()

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        # The per-epoch operator changes, so the loop is written out rather
        # than delegated to train_node_classifier.
        config = self.train_config
        rng = ensure_rng(self._model_seed())
        model = GCN(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            seed=int(rng.integers(0, 2**31)),
        )
        optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        features = Tensor(graph.features)
        full_operator = gcn_normalize(graph.adjacency)

        best_val, best_state, stall = -1.0, model.state_dict(), 0
        for _ in range(config.epochs):
            model.train()
            optimizer.zero_grad()
            sampled = sample_edge_subgraph(graph.adjacency, self.keep_prob, rng)
            logits = model.forward(gcn_normalize(sampled), features)
            loss = F.cross_entropy(logits, graph.labels, graph.train_mask)
            loss.backward()
            optimizer.step()

            model.eval()
            with no_grad():
                val_logits = model.forward(full_operator, features)
            val_acc = accuracy(val_logits, graph.labels, graph.val_mask)
            if val_acc > best_val:
                best_val, best_state, stall = val_acc, model.state_dict(), 0
            else:
                stall += 1
                if stall >= config.patience:
                    break

        model.load_state_dict(best_state)
        model.eval()
        test_mask = graph.test_mask if graph.test_mask is not None else ~(
            graph.train_mask | graph.val_mask
        )
        with no_grad():
            test_logits = model.forward(full_operator, features)
        return (
            accuracy(test_logits, graph.labels, test_mask),
            best_val,
            {"keep_prob": self.keep_prob},
        )
