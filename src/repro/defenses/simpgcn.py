"""SimPGCN (Jin et al., 2021) — node-similarity-preserving defense.

Two ideas from the original method:

1. **Adaptive propagation**: every layer mixes the (poisoned) topology
   propagation with a kNN *feature-similarity* graph propagation and a
   per-node self term.  A learnable, feature-conditioned gate
   ``s_v = sigmoid(x_v w + b)`` balances topology vs. feature graph per
   node, and a learnable diagonal coefficient scales the self loop.
2. **Self-supervised similarity regression**: hidden embeddings of sampled
   node pairs must predict the pairwise cosine feature similarity, keeping
   the representation faithful to node similarity even when the topology is
   poisoned.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..graph import Graph, gcn_normalize
from ..graph.viewcache import array_fingerprint, cached_operator
from ..nn import Module, TrainConfig, train_node_classifier
from ..tensor import Tensor, functional as F, glorot_uniform, zeros
from ..utils.rng import SeedLike, ensure_rng
from .base import Defender

__all__ = ["SimPGCN", "SSLLoss", "knn_graph", "KNN_CHUNK_ROWS"]

# Row-chunk size for the blocked top-k similarity scan.  Chosen above every
# graph this repo trains on (full-scale synthetic Cora is 2708 nodes), so
# the default path computes the similarity in ONE block — literally the
# legacy ``unit @ unit.T`` GEMM, byte-identical by construction.  Blocking
# only kicks in beyond this scale, capping peak memory at O(chunk·n); note
# that BLAS results are shape-dependent at the ULP level, so on tie-heavy
# (e.g. binary bag-of-words) features the blocked top-k can legitimately
# pick a different equal-similarity neighbor than the dense scan would.
KNN_CHUNK_ROWS = 4096


def cosine_similarity_matrix(features: np.ndarray) -> np.ndarray:
    """Dense cosine similarity with zero rows handled."""
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    unit = features / norms
    return unit @ unit.T


def _knn_graph_blocked(features: np.ndarray, k: int, chunk: int) -> sp.csr_matrix:
    n = features.shape[0]
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    unit = features / norms
    rows = np.repeat(np.arange(n), k)
    cols = np.empty(n * k, dtype=np.int64)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        similarity = unit[start:stop] @ unit.T
        # Mask self-similarity, exactly like np.fill_diagonal on the full
        # matrix restricted to this row block.
        similarity[np.arange(stop - start), np.arange(start, stop)] = -np.inf
        cols[start * k : stop * k] = np.argpartition(-similarity, k, axis=1)[
            :, :k
        ].ravel()
    data = np.ones(len(rows))
    adjacency = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    adjacency = adjacency + adjacency.T
    adjacency.data = np.ones_like(adjacency.data)
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency.tocsr()


def knn_graph(
    features: np.ndarray, k: int, chunk_rows: Optional[int] = None
) -> sp.csr_matrix:
    """Symmetric kNN graph over cosine feature similarity (no self-loops).

    The similarity scan runs top-k per row chunk (``chunk_rows``, default
    :data:`KNN_CHUNK_ROWS`), so peak memory is O(chunk·n) instead of O(n²).
    Results are memoized process-wide by feature-content fingerprint (see
    :mod:`repro.graph.viewcache`): structure-only attacks never touch the
    features, so every cell of a sweep row reuses one build.
    """
    n = features.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")
    chunk = int(chunk_rows) if chunk_rows is not None else KNN_CHUNK_ROWS
    if chunk < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk}")
    # Any chunk >= n is the same single-block computation: normalize the
    # cache key so they share an entry.
    return cached_operator(
        "knn",
        array_fingerprint(features) + (int(k), min(chunk, n)),
        lambda: _knn_graph_blocked(features, k, chunk),
    )


class _SimPLayer(Module):
    """One adaptive propagation layer of SimPGCN."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.weight = glorot_uniform(in_dim, out_dim, rng)
        self.gate_w = glorot_uniform(in_dim, 1, rng)
        self.gate_b = zeros(1)
        self.self_coeff = glorot_uniform(in_dim, 1, rng)

    def forward(
        self, adj_topo: sp.csr_matrix, adj_feat: sp.csr_matrix, h: Tensor
    ) -> Tensor:
        support = h.matmul(self.weight)
        gate = F.sigmoid(h.matmul(self.gate_w) + self.gate_b)  # (n, 1)
        topo_prop = F.sparse_matmul(adj_topo, support)
        feat_prop = F.sparse_matmul(adj_feat, support)
        self_scale = h.matmul(self.self_coeff)  # (n, 1) learnable self weight
        return gate * topo_prop + (1.0 - gate) * feat_prop + self_scale * support


class SimPGCNModel(Module):
    """Two adaptive layers + similarity-regression head."""

    def __init__(
        self, in_dim: int, hidden_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.layer1 = _SimPLayer(in_dim, hidden_dim, rng)
        self.layer2 = _SimPLayer(hidden_dim, out_dim, rng)
        self.ssl_head = glorot_uniform(hidden_dim, 1, rng)
        # Dict-held hidden cache: keeps the grad-requiring activations out
        # of parameter scanning (which traverses Tensors/lists/tuples, not
        # dicts), so state_dict stays in sync regardless of whether the
        # last forward ran in train or eval mode.
        self._forward_cache: dict = {}
        self._hidden = None

    @property
    def _hidden(self) -> Optional[Tensor]:
        return self._forward_cache.get("hidden")

    @_hidden.setter
    def _hidden(self, value: Optional[Tensor]) -> None:
        self._forward_cache["hidden"] = value

    def forward(self, adjacency: tuple[sp.csr_matrix, sp.csr_matrix], x: Tensor) -> Tensor:
        adj_topo, adj_feat = adjacency
        h = F.relu(self.layer1.forward(adj_topo, adj_feat, x))
        self._hidden = h
        return self.layer2.forward(adj_topo, adj_feat, h)

    def ssl_loss(self, pairs: np.ndarray, targets: np.ndarray) -> Tensor:
        """Regression of pairwise cosine similarity from hidden embeddings."""
        assert self._hidden is not None, "call forward first"
        left = self._hidden[pairs[:, 0]]
        right = self._hidden[pairs[:, 1]]
        predicted = (left - right).matmul(self.ssl_head)  # (m, 1)
        residual = predicted.reshape(-1) - Tensor(targets)
        return (residual * residual).mean()


class SSLLoss:
    """SimPGCN's self-supervised similarity-regression term as a loss class.

    Each call draws a fresh batch of node pairs from the defender's RNG and
    regresses their hidden-embedding difference onto the pairwise cosine
    feature similarity.  As a class (rather than the former inline closure)
    the trainer can recognize it and dispatch the fit to the fused kernel,
    which replays :meth:`draw_pairs` against the same RNG stream; calling it
    runs the identical autodiff composition.
    """

    def __init__(
        self,
        model: SimPGCNModel,
        similarity: np.ndarray,
        weight: float,
        num_pairs: int,
        num_nodes: int,
        rng: np.random.Generator,
    ) -> None:
        self.model = model
        self.similarity = similarity
        self.weight = float(weight)
        self.num_pairs = int(num_pairs)
        self.num_nodes = int(num_nodes)
        self.rng = rng

    def draw_pairs(self) -> np.ndarray:
        """One epoch's pair batch; advances the shared RNG stream."""
        return self.rng.integers(0, self.num_nodes, size=(self.num_pairs, 2))

    def pair_targets(self, pairs: np.ndarray) -> np.ndarray:
        return self.similarity[pairs[:, 0], pairs[:, 1]]

    def __call__(self, _logits: Tensor) -> Tensor:
        pairs = self.draw_pairs()
        return self.weight * self.model.ssl_loss(pairs, self.pair_targets(pairs))


class SimPGCN(Defender):
    """Similarity-preserving GCN defense.

    Parameters
    ----------
    knn_k:
        Neighbors of the feature-similarity graph.
    ssl_weight:
        Weight of the self-supervised similarity-regression loss.
    ssl_pairs:
        Sampled node pairs per epoch for the SSL term.
    """

    name = "SimPGCN"

    def __init__(
        self,
        knn_k: int = 20,
        ssl_weight: float = 0.1,
        ssl_pairs: int = 400,
        hidden_dim: int = 16,
        train_config: Optional[TrainConfig] = None,
        engine: Optional[str] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.knn_k = int(knn_k)
        self.ssl_weight = float(ssl_weight)
        self.ssl_pairs = int(ssl_pairs)
        self.hidden_dim = int(hidden_dim)
        self.train_config = train_config or TrainConfig()
        self.engine = engine

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        rng = ensure_rng(self._model_seed())
        k = min(self.knn_k, graph.num_nodes - 1)
        adj_feat = gcn_normalize(knn_graph(graph.features, k))
        adj_topo = gcn_normalize(graph.adjacency)
        similarity = cosine_similarity_matrix(graph.features)

        model = SimPGCNModel(graph.num_features, self.hidden_dim, graph.num_classes, rng)
        ssl_term = SSLLoss(
            model, similarity, self.ssl_weight, self.ssl_pairs, graph.num_nodes, rng
        )

        result = train_node_classifier(
            model,
            graph,
            self.train_config,
            adjacency=(adj_topo, adj_feat),  # type: ignore[arg-type]
            loss_fn=ssl_term,
            engine=self.engine,
        )
        return result.test_accuracy, result.best_val_accuracy, {"knn_k": k}
