"""Raw (undefended) GNNs wrapped in the defender interface.

GCN and GAT are the "Raw GNNs" columns of Tables IV–VI: they apply no
purification and serve as the floor every defender must beat.
"""

from __future__ import annotations

from typing import Optional

from ..graph import Graph
from ..nn import GAT, GCN, TrainConfig, train_node_classifier
from ..utils.rng import SeedLike
from .base import Defender

__all__ = ["RawGCN", "RawGAT"]


class RawGCN(Defender):
    """Vanilla two-layer GCN, no defense."""

    name = "GCN"

    def __init__(
        self,
        hidden_dim: int = 16,
        dropout: float = 0.5,
        train_config: Optional[TrainConfig] = None,
        engine: Optional[str] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.hidden_dim = int(hidden_dim)
        self.dropout = float(dropout)
        self.train_config = train_config or TrainConfig()
        self.engine = engine

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        model = GCN(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            dropout=self.dropout,
            seed=self._model_seed(),
        )
        result = train_node_classifier(
            model, graph, self.train_config, engine=self.engine
        )
        return result.test_accuracy, result.best_val_accuracy, {"epochs": result.epochs_run}


class RawGAT(Defender):
    """Vanilla two-layer GAT; its attention gives mild implicit robustness."""

    name = "GAT"

    def __init__(
        self,
        hidden_dim: int = 8,
        num_heads: int = 4,
        dropout: float = 0.5,
        train_config: Optional[TrainConfig] = None,
        engine: Optional[str] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.hidden_dim = int(hidden_dim)
        self.num_heads = int(num_heads)
        self.dropout = float(dropout)
        self.train_config = train_config or TrainConfig()
        self.engine = engine

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        model = GAT(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            num_heads=self.num_heads,
            dropout=self.dropout,
            seed=self._model_seed(),
        )
        result = train_node_classifier(
            model, graph, self.train_config, engine=self.engine
        )
        return result.test_accuracy, result.best_val_accuracy, {"epochs": result.epochs_run}
