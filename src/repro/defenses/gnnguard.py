"""GNNGuard (Zhang & Zitnik, 2020) — attention-pruning defense.

Cited in the paper's related work as the attention-based defender family
([40], Sec. II-C): at every layer, edges whose endpoints' *current hidden
representations* are dissimilar get their message-passing weight pruned to
zero, and surviving edges are re-weighted by normalized cosine similarity
with an exponential-memory term across layers.  Like GAT/RGCN it can only
*down-weight* suspicious edges — the limitation (no recovery of deleted
edges, error propagation from the poisoned first layer) that the paper's
Sec. V-B2 discussion attributes to this family.

The similarity coefficients are treated as constants (no gradient flows
through the pruning weights), matching the original implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..nn import Module, TrainConfig, train_node_classifier
from ..tensor import Tensor, functional as F, glorot_uniform
from ..utils.rng import SeedLike, ensure_rng
from .base import Defender

__all__ = ["GNNGuard", "similarity_weights"]


def similarity_weights(
    adjacency: sp.csr_matrix,
    hidden: np.ndarray,
    prune_threshold: float,
) -> sp.csr_matrix:
    """Row-normalized cosine-similarity edge weights with pruning.

    Returns a weighted operator on the support of ``adjacency`` (plus
    self-loops) where edge (u, v) carries
    ``cos(h_u, h_v) / Σ_w cos(h_u, h_w)`` if the similarity clears the
    threshold, else 0.
    """
    coo = adjacency.tocoo()
    norms = np.linalg.norm(hidden, axis=1)
    norms[norms == 0] = 1.0
    unit = hidden / norms[:, None]
    similarities = np.einsum("ij,ij->i", unit[coo.row], unit[coo.col])
    similarities = np.where(similarities >= prune_threshold, similarities, 0.0)
    weighted = sp.coo_matrix(
        (similarities, (coo.row, coo.col)), shape=adjacency.shape
    ).tocsr()
    # Row-normalize over surviving neighbors; every node keeps a self weight
    # so isolated/full-pruned nodes fall back to their own features.
    row_sums = np.asarray(weighted.sum(axis=1)).ravel()
    self_weight = 1.0 / (row_sums + 1.0)
    scaling = sp.diags(np.where(row_sums > 0, self_weight, 1.0))
    normalized = scaling @ weighted
    normalized = normalized + sp.diags(self_weight)
    return normalized.tocsr()


class _GuardedGCN(Module):
    """Two GCN layers whose propagation operator is rebuilt per forward."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        prune_threshold: float,
        memory: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.w1 = glorot_uniform(in_dim, hidden_dim, rng)
        self.w2 = glorot_uniform(hidden_dim, out_dim, rng)
        self.prune_threshold = float(prune_threshold)
        self.memory = float(memory)
        self._dropout_rng = ensure_rng(rng.integers(0, 2**63 - 1))

    def forward(self, adjacency: sp.csr_matrix, features: Tensor) -> Tensor:
        # Layer 1: weights from raw feature similarity.
        op1 = similarity_weights(adjacency, features.data, self.prune_threshold)
        h = F.relu(F.sparse_matmul(op1, features.matmul(self.w1)))
        h = F.dropout(h, 0.5, self._dropout_rng, training=self.training)
        # Layer 2: weights from hidden similarity, smoothed by memory ρ.
        op2 = similarity_weights(adjacency, h.data, self.prune_threshold)
        op2 = self.memory * op1 + (1.0 - self.memory) * op2
        return F.sparse_matmul(op2.tocsr(), h.matmul(self.w2))


class GNNGuard(Defender):
    """Similarity-pruning attention defense.

    Parameters
    ----------
    prune_threshold:
        Minimum endpoint cosine similarity for an edge to keep weight.
    memory:
        Exponential smoothing ρ between layer-1 and layer-2 coefficients.
    """

    name = "GNNGuard"

    def __init__(
        self,
        prune_threshold: float = 0.1,
        memory: float = 0.9,
        hidden_dim: int = 16,
        train_config: Optional[TrainConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= memory <= 1.0:
            raise ValueError(f"memory must lie in [0, 1], got {memory}")
        self.prune_threshold = float(prune_threshold)
        self.memory = float(memory)
        self.hidden_dim = int(hidden_dim)
        self.train_config = train_config or TrainConfig()

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        rng = ensure_rng(self._model_seed())
        model = _GuardedGCN(
            graph.num_features,
            self.hidden_dim,
            graph.num_classes,
            self.prune_threshold,
            self.memory,
            rng,
        )
        result = train_node_classifier(
            model, graph, self.train_config, adjacency=graph.adjacency
        )
        return result.test_accuracy, result.best_val_accuracy, {}
