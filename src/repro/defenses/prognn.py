"""Pro-GNN (Jin et al., 2020) — joint graph structure learning defense.

Alternating optimization of a dense learned adjacency ``S`` and GCN
parameters ``θ`` (Def. 2 instantiated):

* θ-step: Adam on the GCN cross-entropy over the *normalized current S*;
* S-step: gradient descent on
  ``α‖S − Â‖_F² + τ·CE(GCN_θ(S), Y) + λ_s·tr(Xᵀ L_S X)`` (feature
  smoothness on the learned graph), followed by the two proximal operators
  of the original method — nuclear-norm singular-value shrinkage (low rank)
  and L1 soft-thresholding (sparsity) — then projection to [0,1] and
  symmetrization.

The per-epoch full SVD in the proximal step is the deliberate cost centre
that makes Pro-GNN by far the slowest defender (Table VIII).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import Graph, gcn_normalize_dense
from ..nn import GCN, TrainConfig, accuracy
from ..tensor import Adam, Tensor, functional as F
from ..utils.rng import SeedLike
from .base import Defender

__all__ = ["ProGNN"]


class ProGNN(Defender):
    """Graph-structure-learning defense (alternating θ / S optimization).

    Parameters
    ----------
    outer_epochs:
        Alternation rounds.
    structure_lr:
        Learning rate of the S gradient step.
    alpha_fidelity:
        Weight of ``‖S − Â‖_F²`` (stay close to the observed graph).
    lambda_smooth:
        Feature smoothness weight ``tr(Xᵀ L_S X)``.
    tau_gnn:
        Weight of the GCN loss inside the S objective.
    beta_nuclear / gamma_l1:
        Shrinkage amounts of the nuclear-norm / L1 proximal steps.
    inner_theta_steps:
        GCN Adam steps per alternation round.
    """

    name = "Pro-GNN"

    def __init__(
        self,
        outer_epochs: int = 60,
        structure_lr: float = 0.01,
        alpha_fidelity: float = 1.0,
        lambda_smooth: float = 1e-3,
        tau_gnn: float = 1.0,
        beta_nuclear: float = 1.5e-3,
        gamma_l1: float = 1e-4,
        inner_theta_steps: int = 2,
        hidden_dim: int = 16,
        lr: float = 0.01,
        weight_decay: float = 5e-4,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.outer_epochs = int(outer_epochs)
        self.structure_lr = float(structure_lr)
        self.alpha_fidelity = float(alpha_fidelity)
        self.lambda_smooth = float(lambda_smooth)
        self.tau_gnn = float(tau_gnn)
        self.beta_nuclear = float(beta_nuclear)
        self.gamma_l1 = float(gamma_l1)
        self.inner_theta_steps = int(inner_theta_steps)
        self.hidden_dim = int(hidden_dim)
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)

    # ------------------------------------------------------------------
    def _structure_loss(
        self, s_tensor: Tensor, observed: np.ndarray, features: Tensor,
        model: GCN, labels: np.ndarray, train_mask: np.ndarray,
    ) -> Tensor:
        fidelity = ((s_tensor - Tensor(observed)) ** 2).sum() * self.alpha_fidelity
        # Feature smoothness tr(X^T L X) = 0.5 Σ_uv S_uv ||x_u − x_v||².
        # The pairwise-distance matrix is precomputed once (constant).
        smooth = (s_tensor * self._pairwise_sq).sum() * (0.5 * self.lambda_smooth)
        logits = model.forward(gcn_normalize_dense(s_tensor), features)
        gnn_term = F.cross_entropy(logits, labels, train_mask) * self.tau_gnn
        return fidelity + smooth + gnn_term

    @staticmethod
    def _proximal(s: np.ndarray, beta_nuclear: float, gamma_l1: float) -> np.ndarray:
        """Nuclear-norm shrinkage + L1 soft-threshold + box/symmetry projection."""
        # Singular-value soft-thresholding (full SVD — dominant cost).
        u, sigma, vt = np.linalg.svd(s, full_matrices=False)
        sigma = np.maximum(sigma - beta_nuclear, 0.0)
        s = (u * sigma) @ vt
        # L1 soft-threshold.
        s = np.sign(s) * np.maximum(np.abs(s) - gamma_l1, 0.0)
        # Box + symmetry + no self-loops.
        s = np.clip(0.5 * (s + s.T), 0.0, 1.0)
        np.fill_diagonal(s, 0.0)
        return s

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        observed = graph.dense_adjacency()
        features = Tensor(graph.features)
        labels = graph.labels
        assert labels is not None

        # Precompute pairwise squared feature distances for the smoothness term.
        sq_norms = (graph.features**2).sum(axis=1)
        self._pairwise_sq = Tensor(
            sq_norms[:, None] + sq_norms[None, :] - 2.0 * graph.features @ graph.features.T
        )

        model = GCN(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            dropout=0.5,
            seed=self._model_seed(),
        )
        optimizer = Adam(model.parameters(), lr=self.lr, weight_decay=self.weight_decay)
        s = observed.copy()

        best_val, best_state, best_s = -1.0, model.state_dict(), s.copy()
        for _ in range(self.outer_epochs):
            # θ-step on the current structure.
            normalized_const = gcn_normalize_dense(s).detach()
            model.train()
            for _ in range(self.inner_theta_steps):
                optimizer.zero_grad()
                logits = model.forward(normalized_const, features)
                loss = F.cross_entropy(logits, labels, graph.train_mask)
                loss.backward()
                optimizer.step()

            # S-step: one gradient step + proximal operators.
            model.eval()
            s_tensor = Tensor(s, requires_grad=True)
            loss = self._structure_loss(
                s_tensor, observed, features, model, labels, graph.train_mask
            )
            loss.backward()
            grad = s_tensor.grad if s_tensor.grad is not None else np.zeros_like(s)
            s = self._proximal(
                s - self.structure_lr * (grad + grad.T) * 0.5,
                self.beta_nuclear,
                self.gamma_l1,
            )

            # Track the best validation structure/parameters.
            model.eval()
            logits = model.forward(gcn_normalize_dense(s).detach(), features)
            val_acc = accuracy(logits, labels, graph.val_mask)
            if val_acc > best_val:
                best_val = val_acc
                best_state = model.state_dict()
                best_s = s.copy()

        model.load_state_dict(best_state)
        model.eval()
        logits = model.forward(gcn_normalize_dense(best_s).detach(), features)
        test_mask = graph.test_mask if graph.test_mask is not None else ~(
            graph.train_mask | graph.val_mask
        )
        test_acc = accuracy(logits, labels, test_mask)
        del self._pairwise_sq
        return test_acc, best_val, {"learned_edges": float((best_s > 0.5).sum() / 2)}
