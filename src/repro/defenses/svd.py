"""GCN-SVD (Entezari et al., 2020) — low-rank preprocessing defense.

Observation: adversarial perturbations are high-frequency — they raise the
rank of the adjacency.  The defense replaces the poisoned adjacency with its
rank-``k`` truncated-SVD reconstruction (a dense, weighted matrix) and
trains a GCN on it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from ..graph import Graph
from ..nn import GCN, TrainConfig, train_node_classifier
from ..utils.rng import SeedLike
from .base import Defender

__all__ = ["GCNSVD", "low_rank_adjacency"]


def low_rank_adjacency(adjacency: sp.spmatrix, rank: int) -> np.ndarray:
    """Rank-``rank`` reconstruction of the adjacency (negatives clipped)."""
    n = adjacency.shape[0]
    if not 1 <= rank <= n:
        raise ConfigError(f"rank must lie in [1, {n}], got {rank}")
    if rank >= n - 1:
        dense = adjacency.toarray()
        return np.clip(dense, 0.0, None)
    u, s, vt = sp.linalg.svds(adjacency.tocsc().astype(np.float64), k=rank)
    reconstruction = (u * s) @ vt
    # Symmetrize (svds output can drift) and clip tiny negatives.
    reconstruction = 0.5 * (reconstruction + reconstruction.T)
    return np.clip(reconstruction, 0.0, None)


def _normalize_weighted(dense: np.ndarray) -> np.ndarray:
    """GCN normalization of a dense weighted adjacency with self-loops."""
    matrix = dense + np.eye(dense.shape[0])
    degrees = matrix.sum(axis=1)
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
    return matrix * inv_sqrt[:, None] * inv_sqrt[None, :]


class GCNSVD(Defender):
    """Truncated-SVD purification + GCN.

    Parameters
    ----------
    rank:
        Reduced rank of the reconstruction (paper tunes over
        {5, 10, 15, 50, 100, 200}).
    """

    name = "GCN-SVD"

    def __init__(
        self,
        rank: int = 15,
        hidden_dim: int = 16,
        train_config: Optional[TrainConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.rank = int(rank)
        self.hidden_dim = int(hidden_dim)
        self.train_config = train_config or TrainConfig()

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        reconstruction = low_rank_adjacency(graph.adjacency, min(self.rank, graph.num_nodes - 2))
        normalized = _normalize_weighted(reconstruction)
        model = GCN(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            seed=self._model_seed(),
        )
        result = train_node_classifier(model, graph, self.train_config, adjacency=normalized)
        return result.test_accuracy, result.best_val_accuracy, {"rank": self.rank}
