"""Defender framework.

A defender takes a (possibly poisoned) graph with labels/masks, trains a
robust model, and reports test accuracy (Def. 2's outer objective).  Timing
is recorded for the efficiency comparison (Table VIII).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graph import Graph, validate_graph
from ..utils.rng import SeedLike, ensure_rng

__all__ = ["Defender", "DefenseResult", "validate_pruned_graph"]


def validate_pruned_graph(graph: Graph, defender_name: str, policy: str = "repair") -> Graph:
    """Contract-check a graph a pruning defense produced.

    Pruning defenses (Jaccard, GNAT) rebuild the adjacency; a bug there —
    an asymmetric prune, a surviving self-loop — would silently skew every
    accuracy they report.  The default ``repair`` policy fixes and warns
    instead of aborting a sweep over an internal artifact.
    """
    return validate_graph(
        graph, policy=policy, context=f"{defender_name} pruned graph"
    )


@dataclass
class DefenseResult:
    """Outcome of a defender's fit on one graph."""

    defender_name: str
    test_accuracy: float
    val_accuracy: float
    runtime_seconds: float = 0.0
    details: dict = field(default_factory=dict)


class Defender(abc.ABC):
    """Interface all defenders implement.

    Subclasses implement :meth:`_fit` returning ``(test_acc, val_acc,
    details)``; :meth:`fit` adds validation and timing.
    """

    name: str = "defender"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = ensure_rng(seed)

    def _model_seed(self) -> int:
        return int(self._rng.integers(0, 2**31))

    @abc.abstractmethod
    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        """Train on ``graph``; return (test_accuracy, val_accuracy, details)."""

    def fit(self, graph: Graph, validate: str = "strict") -> DefenseResult:
        """Train the defense on ``graph`` and evaluate on its test mask.

        The input passes contract validation under ``validate``
        (``strict``/``repair``/``off``) before training.
        """
        if graph.labels is None or graph.train_mask is None or graph.val_mask is None:
            raise ConfigError("defenders require labels and train/val masks")
        graph = validate_graph(
            graph, policy=validate, context=f"{self.name} defense input"
        )
        start = time.perf_counter()
        test_acc, val_acc, details = self._fit(graph)
        elapsed = time.perf_counter() - start
        return DefenseResult(
            defender_name=self.name,
            test_accuracy=test_acc,
            val_accuracy=val_acc,
            runtime_seconds=elapsed,
            details=details,
        )
