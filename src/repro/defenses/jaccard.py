"""GCN-Jaccard (Wu et al., 2019) — preprocessing defense.

Observation: adversarial edges mostly connect *dissimilar* nodes.  The
defense removes every edge whose endpoints' binary-feature Jaccard
similarity falls below a threshold, then trains a plain GCN on the cleaned
graph.  Not applicable when features carry no similarity signal (identity
features on Polblogs — Table VI's footnote).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..graph import Graph
from ..nn import GCN, TrainConfig, train_node_classifier
from ..utils.rng import SeedLike
from .base import Defender, validate_pruned_graph

__all__ = ["GCNJaccard", "jaccard_similarity", "drop_dissimilar_edges"]


def jaccard_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two binary feature vectors."""
    intersection = float(np.minimum(a, b).sum())
    union = float(np.maximum(a, b).sum())
    return intersection / union if union > 0 else 0.0


def drop_dissimilar_edges(graph: Graph, threshold: float) -> tuple[Graph, int]:
    """Remove edges with endpoint Jaccard similarity below ``threshold``.

    Returns the cleaned graph and the number of removed edges.  The pruned
    graph passes repair-policy contract validation on the way out — an
    asymmetric prune or surviving self-loop is fixed and warned about, not
    silently trained on.
    """
    edges = graph.edge_list()
    features = graph.features
    adjacency = graph.adjacency.tolil(copy=True)
    removed = 0
    for u, v in edges:
        if jaccard_similarity(features[u], features[v]) < threshold:
            adjacency[u, v] = 0.0
            adjacency[v, u] = 0.0
            removed += 1
    cleaned = graph.with_adjacency(adjacency.tocsr())
    cleaned = validate_pruned_graph(cleaned, "GCN-Jaccard")
    return cleaned, removed


class GCNJaccard(Defender):
    """Jaccard edge filtering + GCN.

    Parameters
    ----------
    threshold:
        Minimum Jaccard similarity for an edge to survive (paper tunes over
        {0.01, 0.02, 0.03, 0.04, 0.05, 1} — note a threshold of 1 removes
        nearly everything and is included as a stress setting).
    """

    name = "GCN-Jaccard"

    def __init__(
        self,
        threshold: float = 0.03,
        hidden_dim: int = 16,
        train_config: Optional[TrainConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if threshold < 0:
            raise ConfigError(f"threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)
        self.hidden_dim = int(hidden_dim)
        self.train_config = train_config or TrainConfig()

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        if _features_degenerate(graph.features):
            raise ConfigError(
                "GCN-Jaccard is not applicable to identity features "
                "(no similarity signal); see Table VI footnote"
            )
        cleaned, removed = drop_dissimilar_edges(graph, self.threshold)
        model = GCN(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            seed=self._model_seed(),
        )
        result = train_node_classifier(model, cleaned, self.train_config)
        return (
            result.test_accuracy,
            result.best_val_accuracy,
            {"removed_edges": removed},
        )


def _features_degenerate(features: np.ndarray) -> bool:
    """True when features are (a permutation of) an identity matrix."""
    n, d = features.shape
    return n == d and np.allclose(features.sum(axis=1), 1.0) and np.allclose(
        features.sum(axis=0), 1.0
    )
