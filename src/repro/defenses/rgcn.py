"""RGCN (Zhu et al., 2019) — Gaussian-representation defense.

Nodes are represented as Gaussians ``N(μ_v, diag(σ_v))``; an attention
weight ``α_v = exp(−γ σ_v)`` down-weights high-variance (likely attacked)
neighbors during propagation.  Means propagate through ``D^{-1/2}AD^{-1/2}``
and variances through ``D^{-1}AD^{-1}`` with squared attention, exactly as
in the original Gaussian graph convolution layer.  Training samples
``z = μ + ε√σ`` and adds a KL(N(μ,σ) ‖ N(0,1)) regularizer.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..graph import Graph, add_self_loops
from ..nn import Module, TrainConfig, accuracy
from ..tensor import Adam, Tensor, functional as F, glorot_uniform
from ..utils.rng import SeedLike, ensure_rng
from .base import Defender

__all__ = ["RGCN", "GaussianGCNModel", "KLLoss"]


def _power_normalize(adjacency: sp.spmatrix, exponent: float) -> sp.csr_matrix:
    """``D^{-exponent} (A+I) D^{-exponent}`` as CSR."""
    matrix = add_self_loops(adjacency.tocsr())
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.where(degrees > 0, degrees ** (-exponent), 0.0)
    scaling = sp.diags(inv)
    return (scaling @ matrix @ scaling).tocsr()


class GaussianGCNModel(Module):
    """Two-layer Gaussian graph convolution network."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden_dim: int,
        gamma: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.w_mean_1 = glorot_uniform(in_dim, hidden_dim, rng)
        self.w_var_1 = glorot_uniform(in_dim, hidden_dim, rng)
        self.w_mean_2 = glorot_uniform(hidden_dim, out_dim, rng)
        self.w_var_2 = glorot_uniform(hidden_dim, out_dim, rng)
        self.gamma = float(gamma)
        self._sample_rng = ensure_rng(rng.integers(0, 2**63 - 1))
        # Holds the forward's KL tensor.  Kept inside a dict so parameter
        # scanning (which traverses Tensor attributes, lists and tuples,
        # but not dicts) never mistakes a grad-requiring cache for a
        # trainable parameter — that would desync state_dict snapshots
        # taken after training forwards from ones taken after eval
        # forwards.
        self._forward_cache: dict = {}
        self._kl_cache = None

    @property
    def _kl_cache(self) -> Optional[Tensor]:
        return self._forward_cache.get("kl")

    @_kl_cache.setter
    def _kl_cache(self, value: Optional[Tensor]) -> None:
        self._forward_cache["kl"] = value

    def forward(
        self,
        adjacency: tuple[sp.csr_matrix, sp.csr_matrix],
        features: Tensor,
    ) -> Tensor:
        """Return sampled logits; ``adjacency`` is the (mean-op, var-op) pair."""
        adj_mean, adj_var = adjacency
        mean = F.elu(F.sparse_matmul(adj_mean, features.matmul(self.w_mean_1)))
        var = F.relu(F.sparse_matmul(adj_var, features.matmul(self.w_var_1))) + 1e-6

        attention = (var * (-self.gamma)).exp()
        mean = F.sparse_matmul(adj_mean, (mean * attention).matmul(self.w_mean_2))
        var = (
            F.relu(
                F.sparse_matmul(adj_var, (var * attention * attention).matmul(self.w_var_2))
            )
            + 1e-6
        )

        # KL(N(μ, σ) || N(0, 1)) regularizer, cached for the training loss.
        kl = 0.5 * (mean * mean + var - var.log() - 1.0).sum(axis=1).mean()
        self._kl_cache = kl

        if self.training:
            noise = Tensor(self._sample_rng.normal(size=var.shape))
            return mean + noise * var.sqrt()
        return mean


class KLLoss:
    """RGCN's KL regularizer ``β · KL(N(μ,σ) ‖ N(0,1))`` as a loss term.

    As a class (rather than the former inline lambda) the trainer can
    recognize it and dispatch the whole Gaussian-GCN fit to the fused
    closed-form kernel; calling it runs the identical autodiff expression
    against the KL value the model's forward cached.
    """

    def __init__(self, model: GaussianGCNModel, beta_kl: float) -> None:
        self.model = model
        self.beta_kl = float(beta_kl)

    def __call__(self, _logits: Tensor) -> Tensor:
        return self.beta_kl * self.model._kl_cache


class RGCN(Defender):
    """Robust GCN with Gaussian node representations.

    Parameters
    ----------
    hidden_dim:
        Gaussian hidden width (paper tunes over {16, 32, 64, 128}).
    gamma:
        Attention sharpness on the variance.
    beta_kl:
        Weight of the KL regularizer.
    """

    name = "RGCN"

    def __init__(
        self,
        hidden_dim: int = 32,
        gamma: float = 1.0,
        beta_kl: float = 5e-4,
        train_config: Optional[TrainConfig] = None,
        engine: Optional[str] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        self.hidden_dim = int(hidden_dim)
        self.gamma = float(gamma)
        self.beta_kl = float(beta_kl)
        self.train_config = train_config or TrainConfig()
        self.engine = engine

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        from ..nn.trainer import train_node_classifier

        rng = ensure_rng(self._model_seed())
        model = GaussianGCNModel(
            graph.num_features, graph.num_classes, self.hidden_dim, self.gamma, rng
        )
        operators = (
            _power_normalize(graph.adjacency, 0.5),
            _power_normalize(graph.adjacency, 1.0),
        )
        result = train_node_classifier(
            model,
            graph,
            self.train_config,
            adjacency=operators,  # type: ignore[arg-type]
            loss_fn=KLLoss(model, self.beta_kl),
            engine=self.engine,
        )
        return result.test_accuracy, result.best_val_accuracy, {}
