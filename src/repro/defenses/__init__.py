"""Defenders: the framework and every baseline from Tables IV–VI."""

from .base import Defender, DefenseResult
from .dropedge import DropEdgeGCN, sample_edge_subgraph
from .gnnguard import GNNGuard, similarity_weights
from .jaccard import GCNJaccard, drop_dissimilar_edges, jaccard_similarity
from .prognn import ProGNN
from .raw import RawGAT, RawGCN
from .rgcn import RGCN
from .simpgcn import SimPGCN, knn_graph
from .svd import GCNSVD, low_rank_adjacency

__all__ = [
    "Defender",
    "DefenseResult",
    "RawGCN",
    "RawGAT",
    "GCNJaccard",
    "GNNGuard",
    "DropEdgeGCN",
    "sample_edge_subgraph",
    "similarity_weights",
    "jaccard_similarity",
    "drop_dissimilar_edges",
    "GCNSVD",
    "low_rank_adjacency",
    "RGCN",
    "ProGNN",
    "SimPGCN",
    "knn_graph",
]
