"""Weight initialization schemes for GNN layers."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["glorot_uniform", "glorot_normal", "zeros", "uniform"]


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> Tensor:
    """Glorot/Xavier uniform initialization (the GCN paper's default)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-limit, limit, size=(fan_in, fan_out)), requires_grad=True)


def glorot_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> Tensor:
    """Glorot/Xavier normal initialization."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return Tensor(rng.normal(0.0, std, size=(fan_in, fan_out)), requires_grad=True)


def zeros(*shape: int) -> Tensor:
    """Zero-initialized trainable tensor (biases)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def uniform(shape: tuple[int, ...], low: float, high: float, rng: np.random.Generator) -> Tensor:
    """Uniform trainable tensor on ``[low, high)``."""
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=True)
