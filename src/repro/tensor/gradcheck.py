"""Finite-difference gradient verification for the autodiff engine.

Used by the test suite to validate every differentiable primitive, and
available to users debugging custom losses built on :class:`Tensor`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. input ``index``."""
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    target = base[index]
    grad = np.zeros_like(target)
    flat = target.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*[Tensor(x) for x in base]).item())
        flat[i] = original - eps
        minus = float(fn(*[Tensor(x) for x in base]).item())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of scalar ``fn`` match finite differences.

    Raises
    ------
    AssertionError
        If any input's analytic gradient deviates beyond tolerances.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numeric_gradient(fn, [t.data for t in tensors], index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
