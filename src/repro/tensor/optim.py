"""Gradient-based optimizers for the autodiff engine.

Implements SGD (with optional momentum) and Adam, matching the semantics of
their PyTorch counterparts closely enough for the paper's training loops
(two-layer GCN/GAT trained with Adam, lr=0.01, weight decay 5e-4).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding a parameter list and the zero-grad helper."""

    def __init__(self, params: Iterable[Tensor], lr: float, weight_decay: float = 0.0) -> None:
        self.params: Sequence[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; implemented by subclasses."""
        raise NotImplementedError

    def _grad(self, param: Tensor) -> np.ndarray:
        grad = param.grad if param.grad is not None else np.zeros_like(param.data)
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            grad = self._grad(param)
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Step-reused scratch: Adam's update is ~10 temporaries per
        # parameter per step in its naive spelling, and the allocations
        # dominate its cost for GCN-sized parameters.  The buffered update
        # below runs the exact same operations in the same order (bitwise
        # identical trajectories), just into preallocated memory.
        self._scratch_a = [np.empty_like(p.data) for p in self.params]
        self._scratch_b = [np.empty_like(p.data) for p in self.params]

    def state_dict(self) -> dict:
        """Optimizer state for mid-trial snapshots (copies, not views)."""
        return {
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict`; trajectories continue bit-identically."""
        if len(state["m"]) != len(self._m) or len(state["v"]) != len(self._v):
            raise ValueError(
                "optimizer state does not match the managed parameter list"
            )
        self._step_count = int(state["step_count"])
        for slot, value in zip(self._m, state["m"]):
            slot[...] = value
        for slot, value in zip(self._v, state["v"]):
            slot[...] = value

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v, buf_a, buf_b in zip(
            self.params, self._m, self._v, self._scratch_a, self._scratch_b
        ):
            grad = param.grad if param.grad is not None else np.zeros_like(param.data)
            if self.weight_decay:
                # grad + weight_decay * param.data
                np.multiply(param.data, self.weight_decay, out=buf_a)
                grad = np.add(grad, buf_a, out=buf_a)
            m *= self.beta1
            m += np.multiply(grad, 1.0 - self.beta1, out=buf_b)
            v *= self.beta2
            # (1 - beta2) * grad * grad, associated left-to-right
            np.multiply(grad, 1.0 - self.beta2, out=buf_b)
            v += np.multiply(buf_b, grad, out=buf_b)
            m_hat = np.divide(m, bias1, out=buf_b)  # grad no longer read
            v_hat = np.divide(v, bias2, out=buf_a)
            np.sqrt(v_hat, out=buf_a)
            np.add(buf_a, self.eps, out=buf_a)
            # lr * m_hat / (sqrt(v_hat) + eps), associated left-to-right
            np.multiply(m_hat, self.lr, out=buf_b)
            param.data -= np.divide(buf_b, buf_a, out=buf_b)
