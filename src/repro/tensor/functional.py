"""Differentiable functions built on :class:`repro.tensor.Tensor`.

These cover everything the GNN models, attackers, and defenders need:
activations, row-wise softmax / log-softmax, cross entropy, dropout,
sparse-constant matrix products, and the Lp row-distance used by PEEGA's
representation-difference objective (Eq. 5/6 of the paper).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..errors import ShapeError
from .tensor import Tensor, as_tensor, _needs_grad

__all__ = [
    "relu",
    "leaky_relu",
    "elu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "dropout",
    "sparse_matmul",
    "sparse_matmul_grad_matrix",
    "row_pnorm",
    "masked_fill",
    "concat_rows",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU used by GAT attention scores."""
    x = as_tensor(x)
    slope = float(negative_slope)

    def forward(a: np.ndarray) -> np.ndarray:
        return np.where(a > 0, a, slope * a)

    def backward(g: np.ndarray, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        return g * np.where(a > 0, 1.0, slope)

    from .tensor import _unary

    return _unary(x, forward, backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit (GAT's output nonlinearity)."""
    x = as_tensor(x)

    def forward(a: np.ndarray) -> np.ndarray:
        return np.where(a > 0, a, alpha * (np.exp(np.minimum(a, 0.0)) - 1.0))

    def backward(g: np.ndarray, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        return g * np.where(a > 0, 1.0, out + alpha)

    from .tensor import _unary

    return _unary(x, forward, backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    x = as_tensor(x)

    def forward(a: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-a))

    def backward(g: np.ndarray, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        return g * out * (1.0 - out)

    from .tensor import _unary

    return _unary(x, forward, backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    x = as_tensor(x)
    from .tensor import _unary

    return _unary(x, np.tanh, lambda g, a, out: g * (1.0 - out * out))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable row-wise log-softmax."""
    x = as_tensor(x)

    def forward(a: np.ndarray) -> np.ndarray:
        shifted = a - a.max(axis=axis, keepdims=True)
        return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))

    def backward(g: np.ndarray, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        softmax_vals = np.exp(out)
        return g - softmax_vals * g.sum(axis=axis, keepdims=True)

    from .tensor import _unary

    return _unary(x, forward, backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Row-wise softmax."""
    x = as_tensor(x)

    def forward(a: np.ndarray) -> np.ndarray:
        shifted = np.exp(a - a.max(axis=axis, keepdims=True))
        return shifted / shifted.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        inner = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - inner)

    from .tensor import _unary

    return _unary(x, forward, backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``.

    Parameters
    ----------
    log_probs:
        ``(n, c)`` tensor of log-probabilities (output of :func:`log_softmax`).
    targets:
        ``(n,)`` integer class labels.
    mask:
        Optional ``(n,)`` boolean array selecting the rows that contribute
        (e.g. labelled training nodes).  The loss is averaged over selected
        rows, matching Eq. 2 of the paper up to the 1/n factor.
    """
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    if log_probs.ndim != 2 or targets.ndim != 1 or len(targets) != log_probs.shape[0]:
        raise ShapeError(
            f"nll_loss expects (n, c) log-probs and (n,) targets, got "
            f"{log_probs.shape} and {targets.shape}"
        )
    if mask is None:
        rows = np.arange(len(targets))
    else:
        rows = np.flatnonzero(np.asarray(mask))
    if len(rows) == 0:
        raise ShapeError("nll_loss mask selects no rows")
    picked = log_probs[rows, targets[rows]]
    return -picked.sum() * (1.0 / float(len(rows)))


def cross_entropy(
    logits: Tensor, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Cross-entropy loss from raw logits (log-softmax + NLL)."""
    return nll_loss(log_softmax(logits, axis=-1), targets, mask)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.  Identity when ``training`` is False or ``rate`` is 0."""
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(keep)


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a *constant* SciPy sparse matrix with a dense tensor.

    The sparse operand is treated as data (no gradient flows into it); the
    gradient w.r.t. ``x`` is ``matrix.T @ upstream``.  This is the fast path
    used during GNN training where the (normalized) adjacency is fixed.
    """
    x = as_tensor(x)
    matrix = matrix.tocsr()
    out_data = matrix @ x.data
    out = Tensor(out_data, requires_grad=_needs_grad(x), _parents=(x,))
    if out.requires_grad:
        matrix_t = matrix.T.tocsr()
        out._backward = lambda g: (matrix_t @ g,)
    return out


def sparse_matmul_grad_matrix(
    upstream: np.ndarray, x: np.ndarray, rows: Optional[np.ndarray] = None
) -> np.ndarray:
    """Backward kernel for the *matrix* operand of ``matrix @ x``.

    For an (n, n) propagation matrix applied to dense (n, d) activations, the
    gradient w.r.t. the matrix is the dense outer product
    ``upstream @ x.T`` — the one unavoidably quadratic step of attack-score
    computation.  :func:`sparse_matmul` keeps its matrix constant, so greedy
    structure attackers (the incremental PEEGA engine) call this kernel
    directly instead of routing an (n, n) tensor through the autodiff graph.

    ``rows`` restricts the output to the given row subset — when attacker-node
    constraints shrink the candidate frontier, only the touched rows of the
    gradient are ever materialized (cost ``|rows|·n·d`` instead of ``n²·d``).

    ``upstream`` may stack the per-layer adjoints column-wise (n, l·d) with
    ``x`` stacking the matching forward activations, turning the layer sum
    ``Σ_k U_k Z_{k-1}ᵀ`` into a single GEMM.
    """
    upstream = np.asarray(upstream, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if upstream.ndim != 2 or x.ndim != 2 or upstream.shape[1] != x.shape[1]:
        raise ShapeError(
            f"sparse_matmul_grad_matrix expects matching (n, d) operands, got "
            f"{upstream.shape} and {x.shape}"
        )
    if rows is None:
        return upstream @ x.T
    return upstream[np.asarray(rows, dtype=np.int64)] @ x.T


def row_pnorm(x: Tensor, p: Union[int, float], eps: float = 1e-12) -> Tensor:
    """Row-wise Lp norm ``||x_i||_p`` returning a vector of length n.

    This implements the distance used throughout PEEGA's objective.  ``p=1``
    uses a subgradient-smooth absolute value; ``p>=2`` uses the standard
    smooth formulation with an ``eps`` guard against a zero-norm gradient
    singularity.
    """
    x = as_tensor(x)
    p = float(p)
    if p < 1:
        raise ValueError(f"row_pnorm requires p >= 1, got {p}")
    if p == 1.0:
        return x.abs().sum(axis=1)
    powered = (x.abs() + eps) ** p
    return powered.sum(axis=1) ** (1.0 / p)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is True by ``value`` (no grad there)."""
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)

    def forward(a: np.ndarray) -> np.ndarray:
        out = a.copy()
        out[mask] = value
        return out

    def backward(g: np.ndarray, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        grad = g.copy()
        grad[mask] = 0.0
        return grad

    from .tensor import _unary

    return _unary(x, forward, backward)


def concat_rows(a: Tensor, b: Tensor) -> Tensor:
    """Concatenate two 2-D tensors along columns (axis=1), differentiably."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[0] != b.shape[0]:
        raise ShapeError(f"concat_rows expects matching row counts, got {a.shape}, {b.shape}")
    out_data = np.concatenate([a.data, b.data], axis=1)
    needs = _needs_grad(a) or _needs_grad(b)
    out = Tensor(out_data, requires_grad=needs, _parents=(a, b))
    if out.requires_grad:
        split = a.shape[1]
        out._backward = lambda g: (g[:, :split], g[:, split:])
    return out
