"""A small reverse-mode automatic differentiation engine over NumPy.

This module is the computational substrate of the whole library.  The paper's
experiments were run on PyTorch; offline reproduction requires an equivalent
engine, so :class:`Tensor` provides exactly the subset of autodiff needed by

* GNN training (GCN / GAT / defender models), and
* attack-gradient computation w.r.t. a *dense* adjacency matrix and a dense
  feature matrix (PEEGA's scores ``S_t``/``S_f``, Metattack's meta-gradients,
  PGD's relaxed perturbation gradients).

Design notes
------------
* Tensors wrap ``numpy.ndarray`` values (``float64`` by default).  A tensor
  participates in the autodiff graph when ``requires_grad=True`` or when any
  of its parents does.
* Each operation records a backward closure on the output tensor.  Calling
  :meth:`Tensor.backward` runs a topological sweep and accumulates ``.grad``
  on every reachable leaf.
* Broadcasting is fully supported; gradients are summed back to the operand
  shape via :func:`_unbroadcast`.
* Sparse matrices participate only as *constants* (see
  :func:`repro.tensor.functional.sparse_matmul`), which is all GNN training
  needs: the adjacency is fixed during training, and when the adjacency itself
  must be differentiated (attacks), a dense tensor path is used instead.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..errors import ShapeError

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]


class _GradMode(threading.local):
    """Per-thread switch for gradient tracking (mimics ``torch.no_grad``).

    Thread-local, not process-wide: the experiment supervisor runs trials
    in worker threads (and abandons ones that miss their deadline), so one
    thread entering ``no_grad`` must never disable tracing for another.
    Every thread starts with tracking enabled.
    """

    enabled: bool = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager that disables graph construction inside its block.

    Example
    -------
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """

    def __enter__(self) -> "no_grad":
        self._previous = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        _grad_mode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations are currently being traced."""
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of floats.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple[Tensor, ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_not_scalar(self)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with copied data."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar outputs; required
            for non-scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"upstream gradient shape {grad.shape} does not match tensor "
                f"shape {self.data.shape}"
            )

        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in seen:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                node._push_parent_grads(node_grad, grads)

    def _push_parent_grads(
        self, upstream: np.ndarray, grads: dict[int, np.ndarray]
    ) -> None:
        assert self._backward is not None
        parent_grads = self._backward(upstream)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not _needs_grad(parent):
                continue
            pgrad = _unbroadcast(np.asarray(pgrad, dtype=np.float64), parent.shape)
            if id(parent) in grads:
                grads[id(parent)] = grads[id(parent)] + pgrad
            else:
                grads[id(parent)] = pgrad

    # ------------------------------------------------------------------
    # Operator overloads (implemented in terms of functional primitives)
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        return _binary(self, other, np.add, lambda g, a, b: (g, g))

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + self

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return _binary(self, other, np.subtract, lambda g, a, b: (g, -g))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return _binary(self, other, np.multiply, lambda g, a, b: (g * b, g * a))

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) * self

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return _binary(
            self, other, np.divide, lambda g, a, b: (g / b, -g * a / (b * b))
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        return _unary(self, np.negative, lambda g, a, out: -g)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)
        return _unary(
            self,
            lambda a: np.power(a, exponent),
            lambda g, a, out: g * exponent * np.power(a, exponent - 1.0),
        )

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def __getitem__(self, index: object) -> "Tensor":
        out = Tensor(
            self.data[index],
            requires_grad=_needs_grad(self),
            _parents=(self,),
        )
        if out.requires_grad:
            row_index = _as_row_index(index)
            if row_index is not None and self.data.ndim == 2:
                # Fast path for 2-D row gathers (the hot loop of PEEGA's
                # global view): scatter-add via a sparse selection matrix is
                # an order of magnitude faster than np.add.at.
                import scipy.sparse as sp

                n_rows = self.data.shape[0]
                scatter = sp.csr_matrix(
                    (
                        np.ones(len(row_index)),
                        (row_index, np.arange(len(row_index))),
                    ),
                    shape=(n_rows, len(row_index)),
                )

                def backward_rows(g: np.ndarray) -> tuple[np.ndarray]:
                    return (scatter @ g,)

                out._backward = backward_rows
            else:

                def backward(g: np.ndarray) -> tuple[np.ndarray]:
                    full = np.zeros_like(self.data)
                    np.add.at(full, index, g)
                    return (full,)

                out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Core math ops
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        if self.ndim != 2 or other_t.ndim != 2:
            raise ShapeError(
                f"matmul supports 2-D tensors only, got {self.shape} @ {other_t.shape}"
            )
        return _binary(
            self,
            other_t,
            np.matmul,
            lambda g, a, b: (g @ b.T, a.T @ g),
        )

    def transpose(self) -> "Tensor":
        return _unary(self, np.transpose, lambda g, a, out: g.T)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return _unary(
            self,
            lambda a: a.reshape(shape),
            lambda g, a, out: g.reshape(original),
        )

    def sum(
        self, axis: Optional[Union[int, tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        def forward(a: np.ndarray) -> np.ndarray:
            return a.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray, a: np.ndarray, out: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, a.shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, a.shape).copy()

        return _unary(self, forward, backward)

    def mean(
        self, axis: Optional[Union[int, tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        total = self.sum(axis=axis, keepdims=keepdims)
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[ax] for ax in np.atleast_1d(axis)]
        )
        return total * (1.0 / float(count))

    def abs(self) -> "Tensor":
        return _unary(self, np.abs, lambda g, a, out: g * np.sign(a))

    def exp(self) -> "Tensor":
        return _unary(self, np.exp, lambda g, a, out: g * out)

    def log(self) -> "Tensor":
        return _unary(self, np.log, lambda g, a, out: g / a)

    def sqrt(self) -> "Tensor":
        return _unary(self, np.sqrt, lambda g, a, out: g * 0.5 / out)

    def maximum(self, other: ArrayLike) -> "Tensor":
        return _binary(
            self,
            other,
            np.maximum,
            lambda g, a, b: (g * (a >= b), g * (b > a)),
        )

    def clip(self, low: float, high: float) -> "Tensor":
        return _unary(
            self,
            lambda a: np.clip(a, low, high),
            lambda g, a, out: g * ((a >= low) & (a <= high)),
        )

    def relu(self) -> "Tensor":
        return _unary(self, lambda a: np.maximum(a, 0.0), lambda g, a, out: g * (a > 0))


def _as_row_index(index: object) -> Optional[np.ndarray]:
    """Return the index as a 1-D integer row array if it selects whole rows."""
    if isinstance(index, np.ndarray) and index.ndim == 1 and index.dtype.kind in "iu":
        return index
    return None


def _raise_not_scalar(tensor: Tensor) -> float:
    raise ShapeError(f"item() requires a single-element tensor, got {tensor.shape}")


def _needs_grad(tensor: Tensor) -> bool:
    return tensor.requires_grad or tensor._backward is not None


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def _unary(
    x: Tensor,
    forward: Callable[[np.ndarray], np.ndarray],
    backward: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
) -> Tensor:
    out_data = forward(x.data)
    out = Tensor(out_data, requires_grad=_needs_grad(x), _parents=(x,))
    if out.requires_grad:
        out._backward = lambda g: (backward(g, x.data, out_data),)
    return out


def _binary(
    a: ArrayLike,
    b: ArrayLike,
    forward: Callable[[np.ndarray, np.ndarray], np.ndarray],
    backward: Callable[
        [np.ndarray, np.ndarray, np.ndarray],
        tuple[Optional[np.ndarray], Optional[np.ndarray]],
    ],
) -> Tensor:
    a_t, b_t = as_tensor(a), as_tensor(b)
    out_data = forward(a_t.data, b_t.data)
    needs = _needs_grad(a_t) or _needs_grad(b_t)
    out = Tensor(out_data, requires_grad=needs, _parents=(a_t, b_t))
    if out.requires_grad:  # False inside no_grad() even when needs is True
        out._backward = lambda g: backward(g, a_t.data, b_t.data)
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiably."""
    items = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in items], axis=axis)
    needs = any(_needs_grad(t) for t in items)
    out = Tensor(out_data, requires_grad=needs, _parents=tuple(items))
    if out.requires_grad:

        def backward(g: np.ndarray) -> tuple[np.ndarray, ...]:
            slices = np.split(g, len(items), axis=axis)
            return tuple(np.squeeze(s, axis=axis) for s in slices)

        out._backward = backward
    return out
