"""Reverse-mode autodiff substrate (NumPy-backed).

Public surface::

    from repro.tensor import Tensor, functional as F
    from repro.tensor.optim import Adam
"""

from . import functional
from .gradcheck import check_gradients, numeric_gradient
from .init import glorot_normal, glorot_uniform, uniform, zeros
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "stack",
    "functional",
    "Adam",
    "SGD",
    "Optimizer",
    "glorot_uniform",
    "glorot_normal",
    "zeros",
    "uniform",
    "check_gradients",
    "numeric_gradient",
]
