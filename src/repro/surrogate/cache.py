"""Incremental propagation cache for greedy structure attacks.

PEEGA's greedy loop (Alg. 1) evaluates the surrogate ``M = A_n^l X`` once per
flip.  The reference dense path rebuilds ``A_n = D^{-1/2}(A+I)D^{-1/2}`` from
scratch inside the autodiff graph for every evaluation — an O(n²) rebuild plus
an O(n²)-tensor tape, per flip.  :class:`PropagationCache` removes that cost:

* the normalized adjacency is built **once** (one normalization per attack
  run) and kept as a sparse CSR matrix;
* each edge flip is applied as a *rank-1-shaped delta*: only the two degree
  entries, the two scaling coefficients ``s_u, s_v``, and the incident
  rows/columns of ``A_n`` are recomputed — O(deg(u) + deg(v)) value updates;
* matrix powers ``A_n^k`` are memoized and derived from the stored ``A_n``
  (``A_n²`` is one sparse product away, never a renormalization), keyed on the
  perturbation log so a flip invalidates exactly the derived state;
* the cache fingerprints the adjacency of the graph it is bound to and
  raises :class:`~repro.errors.CacheError` instead of serving stale
  ``A_n^l X`` if the graph is mutated out of band.

Numerical contract: the scaling vector uses the *same* guarded formula as the
dense differentiable path (:func:`repro.graph.inv_sqrt_degrees`), so cached
values match the dense reference bit-for-bit at the clean state, and a flip
followed by its inverse restores every cached array bit-exactly (scaling
coefficients are recomputed from integral degrees, never rescaled in place).
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np
import scipy.sparse as sp

from ..errors import CacheError, ConfigError
from ..graph import EdgeFlip, FeatureFlip, Graph, PerturbationLog, inv_sqrt_degrees

__all__ = ["PropagationCache"]


def _adjacency_fingerprint(adjacency: sp.csr_matrix) -> tuple:
    """Cheap content hash of a CSR matrix (structure and values)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(adjacency.indptr.tobytes())
    digest.update(adjacency.indices.tobytes())
    digest.update(adjacency.data.tobytes())
    return (adjacency.shape, adjacency.nnz, digest.digest())


class PropagationCache:
    """Memoized ``A_n`` (and powers) under an evolving perturbation log.

    Parameters
    ----------
    graph:
        The clean graph the cache is bound to.  The cache never mutates it;
        flips are applied to the cache's own sparse state and recorded in
        :attr:`log`.

    Notes
    -----
    The cached matrix always carries the *current* perturbed topology, i.e.
    the clean adjacency with every logged edge flip applied.  Feature flips
    are recorded in the log (they are part of the perturbation identity) but
    do not touch the propagation matrix — ``X̂`` is an argument of
    :meth:`propagation_stack`, not cached state.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._fingerprint = _adjacency_fingerprint(graph.adjacency)
        self.log = PerturbationLog()
        self.normalization_count = 0
        self._powers: dict[int, sp.csr_matrix] = {}
        self._dirty_an_rows: set[int] = set()
        self._dirty_feature_rows: set[int] = set()
        self._normalize()

    # ------------------------------------------------------------------
    # Construction / invalidation
    # ------------------------------------------------------------------
    def _normalize(self) -> None:
        """Build ``A_n`` from scratch — called exactly once, at bind time."""
        n = self._graph.num_nodes
        structure = (self._graph.adjacency + sp.eye(n, format="csr")).tocsr()
        structure.sort_indices()
        self._loop_degrees = np.asarray(structure.sum(axis=1)).ravel()
        self._scaling = inv_sqrt_degrees(self._loop_degrees)
        row_index = np.repeat(np.arange(n), np.diff(structure.indptr))
        data = self._scaling[row_index] * self._scaling[structure.indices]
        self._an = sp.csr_matrix(
            (data, structure.indices.copy(), structure.indptr.copy()), shape=(n, n)
        )
        self.normalization_count += 1

    def check_binding(self) -> None:
        """Raise :class:`CacheError` if the bound graph changed out of band."""
        if _adjacency_fingerprint(self._graph.adjacency) != self._fingerprint:
            raise CacheError(
                "the graph bound to this PropagationCache was mutated out of "
                "band; rebuild the cache instead of serving stale A_n^l X"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The clean graph this cache is bound to."""
        return self._graph

    @property
    def version(self) -> int:
        """Number of logged perturbations (0 = clean state)."""
        return len(self.log)

    @property
    def key(self) -> tuple:
        """Hashable identity of the cached perturbed state."""
        return self.log.key

    @property
    def normalized(self) -> sp.csr_matrix:
        """``A_n`` for the current perturbed topology (verified fresh)."""
        self.check_binding()
        return self._an

    @property
    def scaling(self) -> np.ndarray:
        """The scaling vector ``s = (d + 1 + eps)^{-1/2}`` (view, do not mutate)."""
        return self._scaling

    @property
    def loop_degrees(self) -> np.ndarray:
        """Self-loop-augmented degrees ``rowsum(Â + I)`` (view, do not mutate)."""
        return self._loop_degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the *current perturbed* topology contains edge ``(u, v)``."""
        indptr, indices = self._an.indptr, self._an.indices
        row = indices[indptr[u] : indptr[u + 1]]
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def has_edges(self, uu: np.ndarray, vv: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`has_edge` over endpoint index arrays.

        ``A_n`` stores an explicit (positive) entry for every current edge
        plus the self-loops, so for ``u != v`` membership of ``(u, v)`` in
        its sparsity pattern is exactly edge existence.  This is the
        block-sampled attackers' candidate-direction lookup — O(|pairs| ·
        log deg), never materializing anything dense.
        """
        uu = np.asarray(uu, dtype=np.int64)
        vv = np.asarray(vv, dtype=np.int64)
        if len(uu) == 0:
            return np.zeros(0, dtype=bool)
        # scipy's compiled per-pair sampling; every stored value is a
        # positive product of scaling coefficients, so != 0 is membership.
        sampled = np.asarray(self._an[uu, vv]).ravel()
        return sampled != 0.0

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def power(self, layers: int) -> sp.csr_matrix:
        """``A_n^layers``, memoized; higher powers derive from stored ``A_n``."""
        if layers < 1:
            raise ConfigError(f"layers must be >= 1, got {layers}")
        self.check_binding()
        if 1 not in self._powers:
            self._powers[1] = self._an
        highest = max(self._powers)
        while highest < layers:
            nxt = (self._powers[highest] @ self._an).tocsr()
            nxt.sort_indices()
            highest += 1
            self._powers[highest] = nxt
        return self._powers[layers]

    def propagation_stack(
        self, features: np.ndarray, layers: int
    ) -> list[np.ndarray]:
        """All intermediate products ``[X̂, A_nX̂, …, A_n^lX̂]`` (length l+1)."""
        if layers < 1:
            raise ConfigError(f"layers must be >= 1, got {layers}")
        self.check_binding()
        out = [np.asarray(features, dtype=np.float64)]
        for _ in range(layers):
            out.append(self._an @ out[-1])
        return out

    def propagate(self, features: np.ndarray, layers: int) -> np.ndarray:
        """The surrogate representations ``A_n^layers X̂``."""
        return self.propagation_stack(features, layers)[-1]

    # ------------------------------------------------------------------
    # Delta updates
    # ------------------------------------------------------------------
    def apply(self, flip: Union[EdgeFlip, FeatureFlip]) -> None:
        """Apply one perturbation to the cached state and log it.

        Edge flips update ``A_n`` in place as a delta: degrees and scaling of
        the two endpoints are recomputed from the (integral) degree counters,
        the flipped entry is inserted/removed, and only the rows and columns
        incident to the endpoints have their values refreshed.  Applying the
        same flip twice restores the cached state bit-exactly.
        """
        self.check_binding()
        self._apply_unchecked(flip)

    def apply_batch(self, flips) -> None:
        """Apply a sequence of perturbations with one binding check.

        Bit-identical to calling :meth:`apply` per flip — the only
        difference is that the out-of-band mutation check (a full-adjacency
        hash, O(nnz)) runs once per batch instead of once per flip.  The
        block-sampled attackers re-round δ edges per epoch; hashing per
        flip would turn that into an O(δ · nnz) scan per epoch.
        """
        self.check_binding()
        for flip in flips:
            self._apply_unchecked(flip)

    def _apply_unchecked(self, flip: Union[EdgeFlip, FeatureFlip]) -> None:
        if isinstance(flip, FeatureFlip):
            self._dirty_feature_rows.add(int(flip.node))
            self.log.record(flip)
            return
        u, v = int(flip.u), int(flip.v)
        adding = not self.has_edge(u, v)
        self._toggle_structure(u, v, adding)
        delta = 1.0 if adding else -1.0
        self._loop_degrees[u] += delta
        self._loop_degrees[v] += delta
        self._scaling[[u, v]] = inv_sqrt_degrees(self._loop_degrees[[u, v]])
        self._refresh_incident_values(u, v)
        # Exactly the rows whose A_n values just changed: the endpoints plus
        # every neighbour row holding a mirrored (j, u) / (j, v) entry.
        indptr, indices = self._an.indptr, self._an.indices
        self._dirty_an_rows.add(u)
        self._dirty_an_rows.add(v)
        self._dirty_an_rows.update(
            int(j) for j in indices[indptr[u] : indptr[u + 1]]
        )
        self._dirty_an_rows.update(
            int(j) for j in indices[indptr[v] : indptr[v + 1]]
        )
        self._powers.clear()
        self.log.record(flip)

    def drain_dirty_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """Rows of ``A_n`` / rows of ``X̂`` changed since the last drain.

        Returns sorted index arrays ``(an_rows, feature_rows)`` and clears
        the accumulators.  This powers incremental consumers (the
        :class:`~repro.core.difference.IncrementalScorer`): only these rows
        — and their propagation fan-out — need re-materializing.  There
        must be a single draining consumer per cache.
        """
        an_rows = np.fromiter(
            self._dirty_an_rows, dtype=np.int64, count=len(self._dirty_an_rows)
        )
        feature_rows = np.fromiter(
            self._dirty_feature_rows,
            dtype=np.int64,
            count=len(self._dirty_feature_rows),
        )
        an_rows.sort()
        feature_rows.sort()
        self._dirty_an_rows.clear()
        self._dirty_feature_rows.clear()
        return an_rows, feature_rows

    def _toggle_structure(self, u: int, v: int, adding: bool) -> None:
        """Insert or remove the symmetric pair ``(u, v)``/``(v, u)`` in CSR form."""
        an = self._an
        indptr, indices, data = an.indptr, an.indices, an.data
        row_u = indices[indptr[u] : indptr[u + 1]]
        row_v = indices[indptr[v] : indptr[v + 1]]
        pos_u = int(indptr[u] + np.searchsorted(row_u, v))
        pos_v = int(indptr[v] + np.searchsorted(row_v, u))
        bump = np.zeros(len(indptr), dtype=indptr.dtype)
        if adding:
            # Values are placeholders; _refresh_incident_values rewrites both
            # rows immediately afterwards.
            order = np.argsort([pos_u, pos_v], kind="stable")
            positions = np.asarray([pos_u, pos_v])[order]
            values = np.asarray([v, u])[order]
            new_indices = np.insert(indices, positions, values)
            new_data = np.insert(data, positions, 0.0)
            bump[u + 1 :] += 1
            bump[v + 1 :] += 1
        else:
            if indices[pos_u] != v or indices[pos_v] != u:
                raise CacheError(
                    f"cached structure lost the edge ({u}, {v}) it is removing"
                )
            new_indices = np.delete(indices, [pos_u, pos_v])
            new_data = np.delete(data, [pos_u, pos_v])
            bump[u + 1 :] -= 1
            bump[v + 1 :] -= 1
        self._an = sp.csr_matrix(
            (new_data, new_indices, indptr + bump), shape=an.shape
        )

    def _refresh_incident_values(self, u: int, v: int) -> None:
        """Recompute ``A_n`` values in the rows and columns of ``u`` and ``v``."""
        an = self._an
        indptr, indices, data = an.indptr, an.indices, an.data
        s = self._scaling
        for node in (u, v):
            lo, hi = indptr[node], indptr[node + 1]
            cols = indices[lo:hi]
            data[lo:hi] = s[node] * s[cols]
            # Mirror the column ``node`` in every other incident row; rows u
            # and v themselves are (re)written wholesale above.
            for j in cols:
                if j == u or j == v:
                    continue
                lo_j = indptr[j]
                pos = lo_j + np.searchsorted(indices[lo_j : indptr[j + 1]], node)
                data[pos] = s[j] * s[node]
