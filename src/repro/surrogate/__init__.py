"""Linearized GNN surrogate used by black-box attackers."""

from .cache import PropagationCache
from .propagation import linear_propagation, propagation_matrix

__all__ = ["linear_propagation", "propagation_matrix", "PropagationCache"]
