"""The linearized propagation surrogate ``M = A_n^l X`` (paper Eq. 7).

PEEGA replaces the trained GNN with the parameter-free aggregation
``A_n^l X`` — "the most important step of GNNs" — which is model-agnostic and
label-free.  This module computes it on either code path:

* sparse constant adjacency (fast, for the unperturbed reference ``M``);
* dense tensor adjacency (differentiable, for the attack scores).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from ..graph import gcn_normalize, gcn_normalize_dense
from ..tensor import Tensor, as_tensor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .cache import PropagationCache

AdjacencyLike = Union[sp.spmatrix, Tensor, np.ndarray]

__all__ = ["linear_propagation", "propagation_matrix"]


def propagation_matrix(
    adjacency: AdjacencyLike,
    layers: int = 2,
    cache: Optional["PropagationCache"] = None,
) -> Union[sp.csr_matrix, Tensor]:
    """Return ``A_n^layers`` on the appropriate code path.

    Without a cache every call renormalizes the adjacency from scratch and
    multiplies the powers back up.  Passing a
    :class:`~repro.surrogate.PropagationCache` serves the memoized power
    instead: the normalized matrix is built once per cache lifetime and
    ``A_n^k`` derives from the stored ``A_n^{k-1}``, so repeated callers (a
    greedy attack loop, a parameter sweep) pay for exactly one normalization.
    """
    if layers < 1:
        raise ConfigError(f"layers must be >= 1, got {layers}")
    if cache is not None:
        return cache.power(layers)
    if sp.issparse(adjacency):
        normalized = gcn_normalize(adjacency)
        power = normalized
        for _ in range(layers - 1):
            power = power @ normalized
        return power.tocsr()
    normalized = gcn_normalize_dense(adjacency)
    power = normalized
    for _ in range(layers - 1):
        power = power.matmul(normalized)
    return power


def linear_propagation(
    adjacency: AdjacencyLike,
    features: Union[Tensor, np.ndarray],
    layers: int = 2,
) -> Union[np.ndarray, Tensor]:
    """Compute the surrogate representations ``M = A_n^layers X``.

    Returns a plain array when both inputs are constants (sparse adjacency,
    ndarray features) and a :class:`Tensor` otherwise.
    """
    if layers < 1:
        raise ConfigError(f"layers must be >= 1, got {layers}")
    if sp.issparse(adjacency) and not isinstance(features, Tensor):
        normalized = gcn_normalize(adjacency)
        out = np.asarray(features, dtype=np.float64)
        for _ in range(layers):
            out = normalized @ out
        return out
    if sp.issparse(adjacency):
        from ..tensor.functional import sparse_matmul

        normalized = gcn_normalize(adjacency)
        out_t = as_tensor(features)
        for _ in range(layers):
            out_t = sparse_matmul(normalized, out_t)
        return out_t
    normalized = gcn_normalize_dense(adjacency)
    out_t = as_tensor(features)
    for _ in range(layers):
        out_t = normalized.matmul(out_t)
    return out_t
