"""Structural graph properties used by the paper's analysis (Sec. IV-A, Fig 1).

Includes edge homophily (proportion of same-label edges), degree statistics,
and connectivity helpers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "edge_homophily",
    "degree_histogram",
    "largest_connected_component",
    "isolated_nodes",
]


def edge_homophily(graph: Graph) -> float:
    """Fraction of edges whose endpoints share a label (Fig 1's quantity).

    The paper reports this exceeds 70.43% on all evaluated datasets, which is
    the property PEEGA's global view (Dif2) exploits in place of labels.
    """
    if graph.labels is None:
        raise GraphError("edge_homophily requires node labels")
    edges = graph.edge_list()
    if len(edges) == 0:
        return 0.0
    same = graph.labels[edges[:, 0]] == graph.labels[edges[:, 1]]
    return float(same.mean())


def degree_histogram(graph: Graph) -> np.ndarray:
    """Counts of nodes per degree value, indexed by degree."""
    degrees = graph.degrees().astype(np.int64)
    return np.bincount(degrees)


def largest_connected_component(graph: Graph) -> np.ndarray:
    """Boolean mask of nodes inside the largest connected component.

    DeepRobust's loaders keep only the LCC of Cora/Citeseer/Polblogs; the
    synthetic generators use this to do the same.
    """
    n_components, labels = sp.csgraph.connected_components(graph.adjacency, directed=False)
    if n_components == 1:
        return np.ones(graph.num_nodes, dtype=bool)
    sizes = np.bincount(labels)
    return labels == int(np.argmax(sizes))


def isolated_nodes(graph: Graph) -> np.ndarray:
    """Indices of zero-degree nodes."""
    return np.flatnonzero(graph.degrees() == 0)
