"""Applying and measuring graph perturbations.

Implements the paper's modification model (Sec. II-B): topology modifications
flip entries of the symmetric adjacency matrix, feature perturbations flip
binary feature bits, and cost is measured in L0 units — one unit per
*undirected* edge change (the paper's ``||Â − A||_0`` with ``||A||_0`` equal to
the number of edges) and one unit per feature bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "EdgeFlip",
    "FeatureFlip",
    "Perturbation",
    "PerturbationLog",
    "apply_perturbations",
    "flip_edges",
    "flip_features",
    "structural_distance",
    "feature_distance",
]


@dataclass(frozen=True)
class EdgeFlip:
    """Toggle the undirected edge ``(u, v)``."""

    u: int
    v: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise GraphError(f"edge flips must not create self-loops (node {self.u})")

    @property
    def cost(self) -> float:
        return 1.0


@dataclass(frozen=True)
class FeatureFlip:
    """Toggle feature bit ``dim`` of ``node``."""

    node: int
    dim: int

    @property
    def cost(self) -> float:
        return 1.0


Perturbation = EdgeFlip | FeatureFlip


@dataclass
class PerturbationLog:
    """Ordered record of applied perturbations with total cost.

    The log doubles as a memoization key: :attr:`key` is a hashable tuple
    identifying the exact perturbed state reached from a clean graph, which
    :class:`repro.surrogate.PropagationCache` uses to tag the normalized
    adjacency and its cached powers.
    """

    items: list[Perturbation] = field(default_factory=list)

    @property
    def edge_flips(self) -> list[EdgeFlip]:
        return [p for p in self.items if isinstance(p, EdgeFlip)]

    @property
    def feature_flips(self) -> list[FeatureFlip]:
        return [p for p in self.items if isinstance(p, FeatureFlip)]

    @property
    def key(self) -> tuple[tuple[str, int, int], ...]:
        """Hashable identity of the perturbation sequence."""
        return tuple(
            ("edge", p.u, p.v) if isinstance(p, EdgeFlip) else ("feature", p.node, p.dim)
            for p in self.items
        )

    def total_cost(self, feature_cost: float = 1.0) -> float:
        """Budget units consumed by the logged perturbations."""
        return sum(
            feature_cost if isinstance(p, FeatureFlip) else p.cost for p in self.items
        )

    def record(self, perturbation: Perturbation) -> None:
        """Append one applied perturbation."""
        self.items.append(perturbation)

    def __len__(self) -> int:
        return len(self.items)


def flip_edges(adjacency: sp.spmatrix, flips: Iterable[EdgeFlip]) -> sp.csr_matrix:
    """Return a copy of ``adjacency`` with each undirected edge toggled."""
    matrix = adjacency.tolil(copy=True)
    for flip in flips:
        new_value = 0.0 if matrix[flip.u, flip.v] else 1.0
        matrix[flip.u, flip.v] = new_value
        matrix[flip.v, flip.u] = new_value
    result = matrix.tocsr()
    result.eliminate_zeros()
    return result


def flip_features(features: np.ndarray, flips: Iterable[FeatureFlip]) -> np.ndarray:
    """Return a copy of binary ``features`` with the given bits toggled."""
    result = np.asarray(features, dtype=np.float64).copy()
    for flip in flips:
        result[flip.node, flip.dim] = 1.0 - result[flip.node, flip.dim]
    return result


def apply_perturbations(graph: Graph, perturbations: Sequence[Perturbation]) -> Graph:
    """Apply a mixed sequence of edge and feature flips to ``graph``."""
    edge_flips = [p for p in perturbations if isinstance(p, EdgeFlip)]
    feature_flips = [p for p in perturbations if isinstance(p, FeatureFlip)]
    adjacency = flip_edges(graph.adjacency, edge_flips) if edge_flips else graph.adjacency
    features = flip_features(graph.features, feature_flips) if feature_flips else graph.features
    return graph.with_adjacency(adjacency).with_features(features)


def structural_distance(original: sp.spmatrix, modified: sp.spmatrix) -> int:
    """``||Â − A||_0`` in undirected-edge units (number of toggled edges)."""
    diff = (modified - original).tocoo()
    changed = np.abs(diff.data) > 1e-9
    return int(changed.sum()) // 2


def feature_distance(original: np.ndarray, modified: np.ndarray) -> int:
    """``||X̂ − X||_0``: number of changed feature entries."""
    return int(np.count_nonzero(~np.isclose(original, modified)))
