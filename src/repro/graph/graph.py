"""The :class:`Graph` container shared by datasets, attacks, and defenses.

Matches the paper's formalization ``G(V, A, X, Y)`` (Table II): an undirected
graph with a binary symmetric adjacency matrix ``A`` (no self-loops), binary
node features ``X``, optional integer labels ``Y``, and optional boolean
train/validation/test masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError

__all__ = ["Graph"]


def _as_csr(adjacency: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    if sp.issparse(adjacency):
        matrix = adjacency.tocsr().astype(np.float64)
    else:
        matrix = sp.csr_matrix(np.asarray(adjacency, dtype=np.float64))
    matrix.eliminate_zeros()
    matrix.sum_duplicates()
    return matrix


@dataclass(frozen=True)
class Graph:
    """An attributed undirected graph.

    Attributes
    ----------
    adjacency:
        ``(n, n)`` binary symmetric CSR matrix with a zero diagonal.
    features:
        ``(n, d)`` dense feature matrix (binary in the paper's setting).
    labels:
        Optional ``(n,)`` integer class labels.
    train_mask / val_mask / test_mask:
        Optional boolean node masks (mutually disjoint when all present).
    name:
        Human-readable dataset name.
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    labels: Optional[np.ndarray] = None
    train_mask: Optional[np.ndarray] = None
    val_mask: Optional[np.ndarray] = None
    test_mask: Optional[np.ndarray] = None
    name: str = "graph"
    validate: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "adjacency", _as_csr(self.adjacency))
        object.__setattr__(
            self, "features", np.ascontiguousarray(np.asarray(self.features, dtype=np.float64))
        )
        if self.labels is not None:
            object.__setattr__(self, "labels", np.asarray(self.labels, dtype=np.int64))
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, mask_name)
            if mask is not None:
                object.__setattr__(self, mask_name, np.asarray(mask, dtype=bool))
        if self.validate:
            self._check_invariants()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _check_invariants(self) -> None:
        n = self.adjacency.shape[0]
        if self.adjacency.shape != (n, n):
            raise GraphError(f"adjacency must be square, got {self.adjacency.shape}")
        if self.features.ndim != 2 or self.features.shape[0] != n:
            raise GraphError(
                f"features must be (n, d) with n={n}, got {self.features.shape}"
            )
        if self.adjacency.diagonal().any():
            raise GraphError("adjacency must have a zero diagonal (no self-loops)")
        diff = self.adjacency - self.adjacency.T
        if diff.nnz and np.abs(diff.data).max() > 1e-9:
            raise GraphError("adjacency must be symmetric")
        data = self.adjacency.data
        if data.size and not np.isin(np.unique(data), (0.0, 1.0)).all():
            raise GraphError("adjacency must be binary")
        if self.labels is not None and self.labels.shape != (n,):
            raise GraphError(f"labels must be (n,), got {self.labels.shape}")
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, mask_name)
            if mask is not None and mask.shape != (n,):
                raise GraphError(f"{mask_name} must be (n,), got {mask.shape}")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self.adjacency.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimensionality ``d_x``."""
        return self.features.shape[1]

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges (the paper's ``||A||_0``)."""
        return self.adjacency.nnz // 2

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (requires labels)."""
        if self.labels is None:
            raise GraphError("graph has no labels")
        return int(self.labels.max()) + 1

    def degrees(self) -> np.ndarray:
        """Node degrees as a 1-D float array."""
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def neighbors(self, node: int) -> np.ndarray:
        """Indices of nodes adjacent to ``node``."""
        return self.adjacency.indices[
            self.adjacency.indptr[node] : self.adjacency.indptr[node + 1]
        ]

    def edge_list(self) -> np.ndarray:
        """``(m, 2)`` array of undirected edges with ``u < v``."""
        coo = sp.triu(self.adjacency, k=1).tocoo()
        return np.column_stack([coo.row, coo.col]).astype(np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge connects ``u`` and ``v``."""
        return bool(self.adjacency[u, v] != 0)

    def dense_adjacency(self) -> np.ndarray:
        """Dense copy of the adjacency matrix."""
        return self.adjacency.toarray()

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_adjacency(self, adjacency: sp.spmatrix | np.ndarray, validate: bool = True) -> "Graph":
        """Return a copy of this graph carrying a new adjacency matrix."""
        return replace(self, adjacency=_as_csr(adjacency), validate=validate)

    def with_features(self, features: np.ndarray, validate: bool = True) -> "Graph":
        """Return a copy of this graph carrying a new feature matrix."""
        return replace(self, features=np.asarray(features, dtype=np.float64), validate=validate)

    def with_name(self, name: str) -> "Graph":
        """Return a copy of this graph with a new name."""
        return replace(self, name=name)

    def copy(self) -> "Graph":
        """Deep copy (adjacency and features are duplicated)."""
        return replace(
            self,
            adjacency=self.adjacency.copy(),
            features=self.features.copy(),
            labels=None if self.labels is None else self.labels.copy(),
        )

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a ``networkx.Graph`` with label node attributes."""
        import networkx as nx

        graph = nx.from_scipy_sparse_array(self.adjacency)
        if self.labels is not None:
            nx.set_node_attributes(
                graph, {i: int(label) for i, label in enumerate(self.labels)}, "label"
            )
        return graph

    def summary(self) -> str:
        """One-line statistics string (mirrors the paper's Table III rows)."""
        parts = [
            f"{self.name}",
            f"nodes={self.num_nodes}",
            f"edges={self.num_edges}",
            f"features={self.num_features}",
        ]
        if self.labels is not None:
            parts.append(f"classes={self.num_classes}")
        if self.train_mask is not None:
            parts.append(f"train={int(self.train_mask.sum())}")
        if self.val_mask is not None:
            parts.append(f"val={int(self.val_mask.sum())}")
        if self.test_mask is not None:
            parts.append(f"test={int(self.test_mask.sum())}")
        return " ".join(parts)
