"""GCN adjacency normalization.

Two code paths implement the same operator
``A_n = D^{-1/2} (A + I) D^{-1/2}`` (Kipf & Welling, 2017):

* :func:`gcn_normalize` — sparse, fast, used during GNN training where the
  adjacency is a constant;
* :func:`gcn_normalize_dense` — dense and differentiable through the autodiff
  engine, used by attackers (PEEGA, Metattack, PGD) that need
  ``∇_A L(A_n, ...)``.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..tensor import Tensor, as_tensor

__all__ = [
    "gcn_normalize",
    "gcn_normalize_dense",
    "add_self_loops",
    "inv_sqrt_degrees",
    "NORMALIZE_EPS",
]

# Guard added to the (self-loop-augmented) degrees before the inverse square
# root.  Shared by the dense differentiable path and the incremental
# :class:`repro.surrogate.PropagationCache` so both produce bit-identical
# scaling vectors — the cached attack path must reproduce the dense reference
# gradients exactly.
NORMALIZE_EPS = 1e-12


def inv_sqrt_degrees(degrees: np.ndarray) -> np.ndarray:
    """``(degrees + eps)^{-1/2}`` — the scaling vector of ``D^{-1/2}(A+I)D^{-1/2}``.

    ``degrees`` must already include the self-loop contribution.  Non-positive
    degrees map to a scaling of exactly 0 (the zero-row convention for
    isolated nodes), never to the ``eps^{-1/2} ≈ 1e6`` blow-up the bare guard
    would produce — pruning defenses that isolate nodes must degrade
    gracefully, not inject huge scalings into downstream propagation.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    out = np.zeros_like(degrees)
    positive = degrees > 0
    out[positive] = (degrees[positive] + NORMALIZE_EPS) ** -0.5
    return out


def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` as CSR."""
    n = adjacency.shape[0]
    return (adjacency + weight * sp.eye(n, format="csr")).tocsr()


def gcn_normalize(adjacency: sp.spmatrix, add_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalization of a sparse adjacency matrix.

    Isolated nodes (zero degree even after self-loops are disabled) receive a
    zero row rather than NaNs.  The scaling vector uses the same
    eps-guarded :func:`inv_sqrt_degrees` as the dense differentiable path
    and :class:`repro.surrogate.PropagationCache`, so all three produce
    bit-identical normalized matrices on binary adjacencies.
    """
    matrix = adjacency.tocsr().astype(np.float64)
    if add_loops:
        matrix = add_self_loops(matrix)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    scaling = sp.diags(inv_sqrt_degrees(degrees))
    return (scaling @ matrix @ scaling).tocsr()


def gcn_normalize_dense(adjacency: Union[Tensor, np.ndarray], add_loops: bool = True) -> Tensor:
    """Differentiable symmetric GCN normalization of a dense adjacency tensor.

    The gradient flows through the degree terms as well, so attack scores
    account for how adding/removing an edge rescales every incident entry of
    ``A_n`` — the same behaviour as normalizing inside a PyTorch graph.
    """
    adj = as_tensor(adjacency)
    n = adj.shape[0]
    if add_loops:
        adj = adj + Tensor(np.eye(n))
    degrees = adj.sum(axis=1)
    inv_sqrt = (degrees + NORMALIZE_EPS) ** -0.5
    # Zero-row convention for isolated nodes (matching inv_sqrt_degrees):
    # the mask is a constant gate, so no gradient flows through a row the
    # sparse path would zero out entirely.
    zero_mask = np.asarray(degrees.data) > 0
    if not zero_mask.all():
        inv_sqrt = inv_sqrt * Tensor(zero_mask.astype(np.float64))
    # Row scaling then column scaling via broadcasting.
    row = inv_sqrt.reshape(n, 1)
    col = inv_sqrt.reshape(1, n)
    return adj * row * col
