"""Graph contract validation: check, repair, or reject degenerate graphs.

The paper's pipeline leans on implicit data contracts — a symmetric binary
adjacency with a zero diagonal, finite features, labels inside the class
range, disjoint masks, a well-formed CSR — and violations flow silently into
training and attacks when the data boundary is unguarded (a bit-flipped
cache, a pruning defense that strips every edge of a node, a hand-built
graph).  This module makes the contracts explicit:

:func:`check_graph`
    Runs every contract check and returns structured
    :class:`ContractViolation` records (empty list = clean).

:func:`repair_graph`
    Applies the canonical repair for each repairable violation —
    symmetrize, clip weights to binary, drop self-loops, zero non-finite
    feature rows, re-disjoint masks — each one reported.

:func:`validate_graph`
    The policy wrapper the rest of the library calls: ``strict`` raises
    :class:`~repro.errors.GraphContractError`, ``repair`` fixes what it can
    (warning per repair) and raises only on unrepairable violations,
    ``off`` trusts the input.

Isolated nodes are *not* violations: pruning defenses (SVD / Jaccard /
GNAT) produce them legitimately, and normalization gives them a zero row
(see :func:`repro.graph.inv_sqrt_degrees`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import ContractWarning, GraphContractError
from .graph import Graph

__all__ = [
    "VALIDATION_POLICIES",
    "ContractViolation",
    "check_graph",
    "repair_graph",
    "validate_graph",
]

VALIDATION_POLICIES = ("strict", "repair", "off")

_MASK_NAMES = ("train_mask", "val_mask", "test_mask")


@dataclass(frozen=True)
class ContractViolation:
    """One violated graph contract.

    ``check`` names the contract (``symmetry``, ``binary_weights``,
    ``self_loops``, ``finite_features``, ``label_range``, ``mask_shape``,
    ``mask_overlap``, ``csr_form``), ``count`` how many entries/nodes are
    affected, and ``repairable`` whether :func:`repair_graph` has a
    canonical fix.
    """

    check: str
    message: str
    repairable: bool = True
    count: int = 0

    def __str__(self) -> str:
        return f"{self.check}: {self.message}"


def _check_csr(adjacency: sp.csr_matrix, n: int) -> list[ContractViolation]:
    """Structural well-formedness of the CSR arrays themselves."""
    violations = []
    indptr, indices = adjacency.indptr, adjacency.indices
    if len(indptr) != n + 1 or indptr[0] != 0 or int(indptr[-1]) != len(indices):
        violations.append(
            ContractViolation(
                "csr_form",
                f"indptr is malformed (len {len(indptr)}, first "
                f"{indptr[0] if len(indptr) else 'n/a'}, last "
                f"{indptr[-1] if len(indptr) else 'n/a'}, nnz {len(indices)})",
                repairable=False,
            )
        )
        return violations  # further indexing would be unsafe
    if len(indptr) > 1 and (np.diff(indptr) < 0).any():
        violations.append(
            ContractViolation(
                "csr_form", "indptr is not monotonically non-decreasing", repairable=False
            )
        )
        return violations
    if len(indices) and (indices.min() < 0 or indices.max() >= n):
        violations.append(
            ContractViolation(
                "csr_form",
                f"column indices fall outside [0, {n})",
                repairable=False,
                count=int(((indices < 0) | (indices >= n)).sum()),
            )
        )
    return violations


def check_graph(graph: Graph) -> list[ContractViolation]:
    """Run every contract check; return the violations (empty = clean)."""
    violations: list[ContractViolation] = []
    adjacency = graph.adjacency
    n = adjacency.shape[0]

    csr_violations = _check_csr(adjacency, n)
    violations.extend(csr_violations)
    if any(v.check == "csr_form" for v in csr_violations):
        return violations  # value-level checks need a sound structure

    diagonal = adjacency.diagonal()
    if diagonal.any():
        violations.append(
            ContractViolation(
                "self_loops",
                f"{int(np.count_nonzero(diagonal))} diagonal entries are non-zero",
                count=int(np.count_nonzero(diagonal)),
            )
        )
    asym = abs(adjacency - adjacency.T)
    if asym.nnz and asym.data.max() > 1e-9:
        violations.append(
            ContractViolation(
                "symmetry",
                f"{asym.nnz} entries differ between A and A^T",
                count=int(asym.nnz),
            )
        )
    data = adjacency.data
    nonbinary = data[~np.isin(data, (0.0, 1.0))] if data.size else np.empty(0)
    if nonbinary.size:
        violations.append(
            ContractViolation(
                "binary_weights",
                f"{nonbinary.size} edge weights are not in {{0, 1}} "
                f"(e.g. {nonbinary[0]:g})",
                count=int(nonbinary.size),
            )
        )

    finite_rows = np.isfinite(graph.features).all(axis=1)
    if not finite_rows.all():
        bad = int((~finite_rows).sum())
        violations.append(
            ContractViolation(
                "finite_features",
                f"{bad} feature rows contain NaN/Inf",
                count=bad,
            )
        )

    if graph.labels is not None:
        labels = graph.labels
        if labels.shape != (n,):
            violations.append(
                ContractViolation(
                    "label_range",
                    f"labels must be ({n},), got {labels.shape}",
                    repairable=False,
                )
            )
        elif labels.size and (labels.min() < 0 or labels.max() >= n):
            violations.append(
                ContractViolation(
                    "label_range",
                    f"labels must lie in [0, {n}), got range "
                    f"[{labels.min()}, {labels.max()}]",
                    repairable=False,
                )
            )

    for mask_name in _MASK_NAMES:
        mask = getattr(graph, mask_name)
        if mask is not None and mask.shape != (n,):
            violations.append(
                ContractViolation(
                    "mask_shape",
                    f"{mask_name} must be ({n},), got {mask.shape}",
                    repairable=False,
                )
            )
    masks = [
        (name, getattr(graph, name))
        for name in _MASK_NAMES
        if getattr(graph, name) is not None and getattr(graph, name).shape == (n,)
    ]
    for i, (name_a, mask_a) in enumerate(masks):
        for name_b, mask_b in masks[i + 1 :]:
            overlap = int((mask_a & mask_b).sum())
            if overlap:
                violations.append(
                    ContractViolation(
                        "mask_overlap",
                        f"{name_a} and {name_b} share {overlap} nodes",
                        count=overlap,
                    )
                )
    return violations


def repair_graph(
    graph: Graph, violations: Optional[Sequence[ContractViolation]] = None
) -> tuple[Graph, list[ContractViolation]]:
    """Apply the canonical repair for each repairable violation.

    Returns the repaired graph and the violations that were actually
    repaired.  Unrepairable violations are left in place — callers decide
    whether that is fatal (:func:`validate_graph` raises).
    """
    if violations is None:
        violations = check_graph(graph)
    checks = {v.check for v in violations if v.repairable}
    repaired = [v for v in violations if v.repairable]
    if not checks:
        return graph, []

    adjacency = graph.adjacency
    if "self_loops" in checks:
        adjacency = adjacency.tolil(copy=True)
        adjacency.setdiag(0.0)
        adjacency = adjacency.tocsr()
    if "symmetry" in checks:
        adjacency = adjacency.maximum(adjacency.T).tocsr()
    if "binary_weights" in checks:
        adjacency = adjacency.copy()
        adjacency.data = np.clip(np.rint(np.clip(adjacency.data, 0.0, 1.0)), 0.0, 1.0)
    adjacency.eliminate_zeros()

    features = graph.features
    if "finite_features" in checks:
        features = features.copy()
        features[~np.isfinite(features).all(axis=1)] = 0.0

    kwargs: dict = {}
    if "mask_overlap" in checks:
        # Earlier masks win: val loses nodes already in train, test loses
        # nodes already in train or val — mirrors split precedence.
        train = graph.train_mask
        val = graph.val_mask
        test = graph.test_mask
        if val is not None and train is not None:
            val = val & ~train
        if test is not None:
            claimed = np.zeros(graph.num_nodes, dtype=bool)
            if train is not None:
                claimed |= train
            if val is not None:
                claimed |= val
            test = test & ~claimed
        kwargs = {"val_mask": val, "test_mask": test}

    fixed = replace(
        graph, adjacency=adjacency, features=features, validate=False, **kwargs
    )
    return fixed, repaired


def validate_graph(
    graph: Graph, policy: str = "strict", context: Optional[str] = None
) -> Graph:
    """Enforce the graph contracts under ``policy``.

    ``strict`` raises :class:`~repro.errors.GraphContractError` on any
    violation; ``repair`` fixes repairable violations (one
    :class:`~repro.errors.ContractWarning` per repair) and raises only when
    a violation has no canonical fix; ``off`` returns the graph untouched.
    ``context`` names the data source in errors/warnings (a file, a
    defense, a dataset).
    """
    if policy not in VALIDATION_POLICIES:
        raise GraphContractError(
            f"unknown validation policy {policy!r}; choose from {VALIDATION_POLICIES}"
        )
    if policy == "off":
        return graph
    violations = check_graph(graph)
    if not violations:
        return graph
    label = context or graph.name

    if policy == "strict":
        details = "; ".join(str(v) for v in violations)
        raise GraphContractError(
            f"graph contract violated ({label}): {details}", violations=violations
        )

    fixed, repaired = repair_graph(graph, violations)
    for violation in repaired:
        warnings.warn(
            f"repaired graph contract violation ({label}): {violation}",
            ContractWarning,
            stacklevel=2,
        )
    remaining = [v for v in violations if not v.repairable]
    if remaining:
        details = "; ".join(str(v) for v in remaining)
        raise GraphContractError(
            f"unrepairable graph contract violation ({label}): {details}",
            violations=remaining,
        )
    return fixed
