"""Process-wide cache for derived view operators (kNN / k-hop graphs).

GNAT rebuilds its feature view (an O(n²) cosine top-k) and topology view
(k-hop sparse powers) on *every* fit, and a Table IV-style sweep fits GNAT
for every (attacker, rate, seed) cell — but structure-only attacks never
touch the features, and many cells share the same poisoned adjacency.  This
module memoizes those derived operators the same way :class:`repro.nn.SGC`
memoizes ``A_n^k X``: keyed purely by *content fingerprint* (blake2b of the
underlying arrays), so a mutated feature matrix or adjacency can never hit
a stale entry — mutation changes the key, which IS the invalidation.

The cache is deliberately ambient (module-level, thread-safe):

* the serial executor and the trial supervisor's worker threads share one
  cache inside the parent process;
* each ``--jobs N`` pool worker owns a private copy in its own process and
  warms it with its first trial — no cross-process plumbing needed, and
  because every entry is content-addressed and every build deterministic,
  hits and misses produce byte-identical operators.  Journals therefore
  stay bit-identical across ``--jobs 1`` / ``--jobs N`` and across
  cold/warm caches.

Storage lives in a :class:`~repro.utils.keystore.KeyedArtifactStore`, so
entries are byte-accounted, LRU-evicted past the entry capacity, and count
against the process-wide ``--cache-bytes`` budget shared with the SGC
propagation memo and the runner's poison cache.

Entries are returned as *copies* so callers can mutate their operator (GNAT
normalizes views in place of fresh objects) without poisoning the cache.
Set ``REPRO_VIEW_CACHE=0`` to disable caching entirely.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..utils.keystore import KeyedArtifactStore

__all__ = [
    "cached_operator",
    "array_fingerprint",
    "csr_fingerprint",
    "view_cache_stats",
    "clear_view_cache",
    "set_view_cache_capacity",
]

_DEFAULT_CAPACITY = 32

_store = KeyedArtifactStore("view-operators", max_entries=_DEFAULT_CAPACITY)


def _enabled() -> bool:
    return os.environ.get("REPRO_VIEW_CACHE", "1") != "0"


def array_fingerprint(array: np.ndarray) -> tuple:
    """Content fingerprint of a dense array (shape, dtype, blake2b)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(array.tobytes())
    return (array.shape, str(array.dtype), digest.digest())


def csr_fingerprint(matrix: sp.spmatrix) -> tuple:
    """Content fingerprint of a sparse matrix (structure and values)."""
    matrix = matrix.tocsr()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(matrix.indptr.tobytes())
    digest.update(matrix.indices.tobytes())
    digest.update(matrix.data.tobytes())
    return (matrix.shape, matrix.nnz, digest.digest())


def cached_operator(
    kind: str, fingerprint: tuple, build: Callable[[], sp.spmatrix]
) -> sp.csr_matrix:
    """Return ``build()`` memoized under ``(kind, fingerprint)``.

    ``build`` must be deterministic in the fingerprinted inputs; the result
    is stored once and copied out on every hit, so callers own their matrix.
    """
    if not _enabled():
        return build().tocsr()
    key = (kind, fingerprint)
    cached = _store.get(key)
    if cached is not None:
        return cached.copy()
    value = build().tocsr()
    _store.put(key, value)
    return value.copy()


def view_cache_stats() -> dict:
    """Hit/miss/eviction counters, entry count, and byte footprint."""
    stats = _store.stats()
    return {
        "hits": stats["hits"],
        "misses": stats["misses"],
        "evictions": stats["evictions"],
        "entries": stats["entries"],
        "capacity": stats["max_entries"],
        "bytes": stats["bytes"],
    }


def clear_view_cache() -> None:
    """Drop every entry and reset the counters (used by tests/benchmarks)."""
    _store.clear()


def set_view_cache_capacity(capacity: int) -> None:
    """Bound the number of cached operators (LRU eviction beyond it)."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    _store.resize(max_entries=int(capacity))
