"""Graph substrate: container, normalization, perturbation, properties."""

from .graph import Graph
from .normalize import (
    NORMALIZE_EPS,
    add_self_loops,
    gcn_normalize,
    gcn_normalize_dense,
    inv_sqrt_degrees,
)
from .perturb import (
    EdgeFlip,
    FeatureFlip,
    Perturbation,
    PerturbationLog,
    apply_perturbations,
    feature_distance,
    flip_edges,
    flip_features,
    structural_distance,
)
from .properties import (
    degree_histogram,
    edge_homophily,
    isolated_nodes,
    largest_connected_component,
)
from .validate import (
    VALIDATION_POLICIES,
    ContractViolation,
    check_graph,
    repair_graph,
    validate_graph,
)

__all__ = [
    "Graph",
    "gcn_normalize",
    "gcn_normalize_dense",
    "add_self_loops",
    "inv_sqrt_degrees",
    "NORMALIZE_EPS",
    "EdgeFlip",
    "FeatureFlip",
    "Perturbation",
    "PerturbationLog",
    "apply_perturbations",
    "flip_edges",
    "flip_features",
    "structural_distance",
    "feature_distance",
    "edge_homophily",
    "degree_histogram",
    "largest_connected_component",
    "isolated_nodes",
    "VALIDATION_POLICIES",
    "ContractViolation",
    "check_graph",
    "repair_graph",
    "validate_graph",
]
