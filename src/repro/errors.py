"""Exception hierarchy for the repro library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array or tensor had an incompatible shape."""


class GraphError(ReproError, ValueError):
    """A graph object violated a structural invariant."""


class BudgetError(ReproError, ValueError):
    """An attack budget was invalid or exhausted incorrectly."""


class ConfigError(ReproError, ValueError):
    """An experiment or model configuration was invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge."""


class DatasetError(ReproError, ValueError):
    """A dataset name or specification was invalid."""


class CacheError(ReproError, RuntimeError):
    """A memoized computation was asked to serve stale or foreign state."""
