"""Exception hierarchy for the repro library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ReproWarning(UserWarning):
    """Base class for all warnings emitted by the repro library."""


class IntegrityWarning(ReproWarning):
    """Data-integrity event: legacy unverified archive, quarantined artifact,
    or corrupt journal record skipped during resume."""


class ContractWarning(ReproWarning):
    """A graph contract violation was repaired under the ``repair`` policy."""


class BudgetWarning(ReproWarning):
    """An attack budget was clamped to the number of feasible flips."""


class CapacityWarning(ReproWarning):
    """A resource request was clamped to the machine's actual capacity
    (e.g. ``--jobs`` above the available core count)."""


class DegradedWarning(ReproWarning):
    """Work was retried at a reduced resource footprint (fewer BLAS
    threads, smaller candidate blocks, autodiff fallback) after a
    resource-exhaustion failure."""


class ShapeError(ReproError, ValueError):
    """An array or tensor had an incompatible shape."""


class GraphError(ReproError, ValueError):
    """A graph object violated a structural invariant."""


class GraphContractError(GraphError):
    """A graph violated one of the paper's data contracts under ``strict``
    validation (see :mod:`repro.graph.validate`).

    Carries the individual
    :class:`~repro.graph.validate.ContractViolation` records in
    ``violations``.
    """

    def __init__(self, message: str, *, violations: tuple = ()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class BudgetError(ReproError, ValueError):
    """An attack budget was invalid or exhausted incorrectly."""


class ConfigError(ReproError, ValueError):
    """An experiment or model configuration was invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure failed to converge."""


class DatasetError(ReproError, ValueError):
    """A dataset name or specification was invalid."""


class CacheError(ReproError, RuntimeError):
    """A memoized computation was asked to serve stale or foreign state."""


class DivergenceError(ReproError, RuntimeError):
    """Training produced a non-finite loss (NaN or ±inf).

    Attributes
    ----------
    epoch:
        Zero-based epoch at which the non-finite loss appeared.
    loss:
        The offending loss value.
    recovered:
        True when early stopping had a best-validation checkpoint and the
        model's weights were restored to it before raising.
    best_val_accuracy:
        Validation accuracy of the restored checkpoint (-1.0 when none).
    """

    def __init__(
        self,
        message: str,
        *,
        epoch: int = -1,
        loss: float = float("nan"),
        recovered: bool = False,
        best_val_accuracy: float = -1.0,
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.loss = loss
        self.recovered = recovered
        self.best_val_accuracy = best_val_accuracy


class ResourceError(ReproError, RuntimeError):
    """A resource budget (memory or disk) cannot accommodate an operation.

    Raised by the preflight checks in :mod:`repro.utils.resources` instead
    of letting an allocation fail halfway through (torn writes, OOM kills).

    Attributes
    ----------
    resource:
        ``"memory"`` or ``"disk"``.
    path:
        Filesystem path involved (disk preflights; ``None`` for memory).
    needed_bytes / available_bytes:
        The request and what the environment could actually supply.
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str = "memory",
        path: object = None,
        needed_bytes: int = 0,
        available_bytes: int = 0,
    ) -> None:
        super().__init__(message)
        self.resource = resource
        self.path = path
        self.needed_bytes = int(needed_bytes)
        self.available_bytes = int(available_bytes)


class TrialError(ReproError, RuntimeError):
    """A supervised experiment trial failed after exhausting its retries.

    Attributes
    ----------
    key:
        The :class:`~repro.experiments.supervisor.TrialKey` of the trial
        (``None`` when raised outside the supervisor).
    attempts:
        Number of attempts made before giving up.
    elapsed_seconds:
        Total wall-clock time spent across all attempts.
    """

    def __init__(
        self,
        message: str,
        *,
        key: object = None,
        attempts: int = 0,
        elapsed_seconds: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.key = key
        self.attempts = attempts
        self.elapsed_seconds = elapsed_seconds


class DeadlineError(TrialError):
    """A trial attempt exceeded its wall-clock deadline and was abandoned.

    Carries the deadline that was missed in ``deadline_seconds``.
    """

    def __init__(
        self,
        message: str,
        *,
        deadline_seconds: float = 0.0,
        key: object = None,
        attempts: int = 0,
        elapsed_seconds: float = 0.0,
    ) -> None:
        super().__init__(
            message, key=key, attempts=attempts, elapsed_seconds=elapsed_seconds
        )
        self.deadline_seconds = deadline_seconds
