"""Command-line interface.

Drives the typical pipeline without writing Python::

    python -m repro dataset cora --scale 0.15 --out cora.npz
    python -m repro attack PEEGA --graph cora.npz --rate 0.1 --out poison.npz
    python -m repro analyze --attack poison.npz
    python -m repro defend GNAT --attack poison.npz --seeds 3
    python -m repro table cora --rate 0.1
    python -m repro table cora --checkpoint-dir ckpt/ --resume
    python -m repro info --graph cora.npz

Attackers/defenders are instantiated through the per-dataset presets in
:mod:`repro.experiments.config`, i.e. the same configurations the paper's
tables use.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import signal
import sys
from typing import Optional, Sequence

import numpy as np

from .analysis import edge_difference, edge_homophily
from .datasets import dataset_names, load_dataset
from .errors import ReproError
from .utils import cancellation
from .experiments import (
    ATTACKER_NAMES,
    DEFENDER_NAMES,
    ExperimentRunner,
    ExperimentScale,
    defender_names_for,
    format_accuracy_table,
    make_attacker,
    make_defender,
)
from .graph import VALIDATION_POLICIES
from .io import load_attack_result, load_graph, save_attack_result, save_graph
from .nn.fastpath import ENGINE_ENV_VAR, ENGINES
from .utils.keystore import CACHE_BYTES_ENV_VAR, set_cache_bytes
from .utils.resources import (
    MEMORY_BUDGET_ENV_VAR,
    budget_from_env,
    install_budget,
    parse_bytes,
)

__all__ = ["main", "build_parser", "EXIT_INTERRUPTED"]

# Exit code for a sweep stopped by SIGINT/SIGTERM after a graceful
# shutdown (journal flushed, in-flight trials snapshotted): distinct from
# 2 (structured error) and 3 (completed with trial failures).
EXIT_INTERRUPTED = 4


@contextlib.contextmanager
def _graceful_shutdown_signals():
    """Route SIGINT/SIGTERM through cooperative cancellation for a sweep.

    The first signal flips the process-global shutdown flag: poll sites
    raise, in-flight trials snapshot, the executor terminates its workers,
    and the journal is left crash-consistent for ``--resume``.  A repeated
    signal force-exits immediately (the operator really means it).
    """
    previous = {}

    def handler(signum, frame):
        name = signal.Signals(signum).name
        if not cancellation.request_shutdown(f"received {name}"):
            os._exit(130 if signum == signal.SIGINT else 143)
        print(
            f"{name}: shutting down gracefully — snapshotting in-flight "
            "trials (repeat the signal to force-quit)",
            file=sys.stderr,
        )

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except ValueError:  # not the main thread (embedded use)
            pass
    try:
        yield
    finally:
        for signum, prev in previous.items():
            signal.signal(signum, prev)
        cancellation.reset_shutdown()


def _add_validate_flag(parser: argparse.ArgumentParser, default: str = "strict") -> None:
    parser.add_argument(
        "--validate",
        choices=VALIDATION_POLICIES,
        default=default,
        help="graph contract validation policy: strict rejects degenerate "
        "graphs, repair fixes what it can (symmetrize, binarize, drop "
        f"self-loops...) with a warning per fix, off trusts the input "
        f"(default {default})",
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="training engine: auto (default) fuses eligible fits "
        "(GCN/SGC/GNAT/GAT/RGCN/SimPGCN) into closed-form kernels with "
        "bit-identical results, fused requires fusion (the error names the "
        "ineligible component), autodiff forces the traced path; also "
        f"settable via ${ENGINE_ENV_VAR}",
    )


def _apply_engine_flag(args: argparse.Namespace) -> None:
    """Export --engine so every trainer (incl. --jobs pool workers) sees it."""
    if getattr(args, "engine", None):
        os.environ[ENGINE_ENV_VAR] = args.engine


def _add_resource_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="soft RSS ceiling per process, e.g. 8G or 500M (default: "
        "unlimited); crossing it raises a structured ResourceError that the "
        "retry ladder turns into a degraded re-run; also settable via "
        f"${MEMORY_BUDGET_ENV_VAR}",
    )
    parser.add_argument(
        "--cache-bytes",
        default=None,
        metavar="BYTES",
        help="global byte budget shared by all in-memory artifact caches "
        "(view operators, SGC propagations, poison store), e.g. 2G "
        "(default: unlimited); oldest entries evict first; also settable "
        f"via ${CACHE_BYTES_ENV_VAR}",
    )


def _apply_resource_flags(args: argparse.Namespace) -> None:
    """Export resource flags via env so --jobs pool workers inherit them,
    and arm the budget/caches in this process."""
    if getattr(args, "memory_budget", None):
        parse_bytes(args.memory_budget)  # validate before exporting
        os.environ[MEMORY_BUDGET_ENV_VAR] = args.memory_budget
        install_budget(budget_from_env())
    if getattr(args, "cache_bytes", None):
        total = parse_bytes(args.cache_bytes)
        os.environ[CACHE_BYTES_ENV_VAR] = args.cache_bytes
        set_cache_bytes(total)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Black-box GNN attack (PEEGA) and defense (GNAT) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dataset = sub.add_parser("dataset", help="generate a synthetic dataset")
    p_dataset.add_argument("name", choices=dataset_names())
    p_dataset.add_argument("--scale", type=float, default=0.15)
    p_dataset.add_argument("--seed", type=int, default=0)
    p_dataset.add_argument("--out", required=True, help="output .npz path")
    _add_validate_flag(p_dataset)

    p_attack = sub.add_parser("attack", help="poison a graph")
    p_attack.add_argument("attacker", choices=ATTACKER_NAMES)
    p_attack.add_argument("--graph", help=".npz graph from `repro dataset`")
    p_attack.add_argument("--dataset", choices=dataset_names(), help="generate instead")
    p_attack.add_argument("--scale", type=float, default=0.15)
    p_attack.add_argument("--rate", type=float, default=0.1)
    p_attack.add_argument("--seed", type=int, default=0)
    p_attack.add_argument("--out", required=True, help="output .npz attack archive")
    _add_validate_flag(p_attack)
    _add_resource_flags(p_attack)

    p_defend = sub.add_parser("defend", help="train a defender and report accuracy")
    p_defend.add_argument("defender", choices=DEFENDER_NAMES)
    p_defend.add_argument("--graph", help=".npz graph to train on")
    p_defend.add_argument("--attack", help=".npz attack archive (trains on its poison)")
    p_defend.add_argument("--dataset", default="cora", choices=dataset_names(),
                          help="dataset name for the preset hyper-parameters")
    p_defend.add_argument("--seeds", type=int, default=3)
    _add_validate_flag(p_defend, default="repair")
    _add_engine_flag(p_defend)
    _add_resource_flags(p_defend)

    p_table = sub.add_parser("table", help="regenerate a Table IV/V/VI-style grid")
    p_table.add_argument("dataset", choices=dataset_names())
    p_table.add_argument("--scale", type=float, default=0.15)
    p_table.add_argument("--seeds", type=int, default=3)
    p_table.add_argument("--rate", type=float, default=0.1)
    p_table.add_argument("--attackers", nargs="*", choices=ATTACKER_NAMES)
    p_table.add_argument("--defenders", nargs="*")
    p_table.add_argument(
        "--compare",
        action="store_true",
        help="render measured-vs-paper markdown with the shape-claim scorecard",
    )
    p_table.add_argument(
        "--checkpoint-dir",
        help="journal completed cells and poison graphs here (written after "
        "every cell, so an interrupted sweep loses at most one cell)",
    )
    p_table.add_argument(
        "--resume",
        action="store_true",
        help="resume from an existing --checkpoint-dir journal instead of "
        "starting fresh",
    )
    p_table.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = in-process); "
        "parallel output is bit-identical to serial",
    )
    p_table.add_argument(
        "--blas-threads",
        type=int,
        default=None,
        help="BLAS/OpenMP threads per worker (default: cores // jobs, so "
        "jobs x threads never oversubscribes)",
    )
    p_table.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="retries per trial before it is recorded as a failure (default 2)",
    )
    p_table.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-trial wall-clock deadline in seconds (default: none); "
        "deadline-cancelled trials snapshot and resume mid-flight on retry",
    )
    p_table.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="with --jobs >= 2: workers beat a liveness beacon at every "
        "poll site; a worker silent for 2x this interval is terminated and "
        "its trial requeued (default: no liveness monitoring)",
    )
    _add_validate_flag(p_table)
    _add_engine_flag(p_table)
    _add_resource_flags(p_table)

    p_analyze = sub.add_parser("analyze", help="attack-pattern analysis (Fig 1/2)")
    p_analyze.add_argument("--attack", required=True, help=".npz attack archive")

    p_info = sub.add_parser("info", help="print graph statistics")
    p_info.add_argument("--graph", required=True)
    _add_validate_flag(p_info)

    return parser


def _load_input_graph(args: argparse.Namespace):
    validate = getattr(args, "validate", "strict")
    if args.graph and args.dataset and args.command == "attack":
        raise SystemExit("give either --graph or --dataset, not both")
    if args.graph:
        return load_graph(args.graph, validate=validate)
    if getattr(args, "dataset", None):
        return load_dataset(
            args.dataset, scale=args.scale, seed=args.seed, validate=validate
        )
    raise SystemExit("one of --graph / --dataset is required")


def _cmd_dataset(args: argparse.Namespace) -> int:
    graph = load_dataset(
        args.name, scale=args.scale, seed=args.seed, validate=args.validate
    )
    save_graph(graph, args.out)
    print(graph.summary())
    print(f"saved to {args.out}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    _apply_resource_flags(args)
    graph = _load_input_graph(args)
    attacker = make_attacker(args.attacker, graph.name, seed=args.seed)
    result = attacker.attack(
        graph, perturbation_rate=args.rate, validate=args.validate
    )
    save_attack_result(result, args.out)
    print(
        f"{attacker.name}: {len(result.edge_flips)} edge flips, "
        f"{len(result.feature_flips)} feature flips in "
        f"{result.runtime_seconds:.1f}s"
    )
    print(f"saved to {args.out}")
    return 0


def _cmd_defend(args: argparse.Namespace) -> int:
    if bool(args.graph) == bool(args.attack):
        raise SystemExit("give exactly one of --graph / --attack")
    _apply_engine_flag(args)
    _apply_resource_flags(args)
    if args.graph:
        graph = load_graph(args.graph, validate=args.validate)
    else:
        graph = load_attack_result(args.attack).poisoned
    dataset = graph.name if graph.name in dataset_names() else args.dataset
    accuracies = [
        make_defender(args.defender, dataset, seed=seed)
        .fit(graph, validate=args.validate)
        .test_accuracy
        for seed in range(args.seeds)
    ]
    print(
        f"{args.defender} on {graph.name}: "
        f"{100 * np.mean(accuracies):.2f}±{100 * np.std(accuracies):.2f} "
        f"({args.seeds} seeds)"
    )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .experiments import (
        SweepCheckpoint,
        TrialPolicy,
        TrialSupervisor,
        make_executor,
    )
    from .utils import faults

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    _apply_engine_flag(args)
    _apply_resource_flags(args)
    config = ExperimentScale(scale=args.scale, seeds=args.seeds, rate=args.rate)
    supervisor = TrialSupervisor(
        TrialPolicy(max_attempts=args.max_attempts, deadline_seconds=args.deadline)
    )
    checkpoint = (
        SweepCheckpoint(args.checkpoint_dir, resume=args.resume)
        if args.checkpoint_dir
        else None
    )
    executor = make_executor(
        args.jobs,
        blas_threads=args.blas_threads,
        heartbeat_interval=args.heartbeat_interval,
    )
    runner = ExperimentRunner(
        config,
        supervisor=supervisor,
        checkpoint=checkpoint,
        executor=executor,
        validate=args.validate,
    )
    try:
        # REPRO_FAULTS lets operators chaos-test a real sweep end to end.
        with _graceful_shutdown_signals(), faults.active(
            faults.FaultInjector.from_env()
        ):
            table = runner.accuracy_table(
                args.dataset,
                attackers=args.attackers or None,
                defenders=args.defenders or None,
            )
    except cancellation.CancelledError as error:
        hint = (
            "re-run with --resume to finish the sweep"
            if args.checkpoint_dir
            else "use --checkpoint-dir to make interrupted sweeps resumable"
        )
        print(f"sweep interrupted ({error}); {hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    if args.jobs > 1 and executor.timings is not None:
        print(executor.timings.summary(), file=sys.stderr)
    if args.compare:
        from .experiments import render_comparison

        print(render_comparison(table))
    else:
        print(
            format_accuracy_table(
                table,
                title=f"{args.dataset} @ rate {args.rate} (scale {args.scale}, "
                f"{args.seeds} seeds)",
            )
        )
    if table.failures:
        from .experiments import render_failure_appendix

        print(render_failure_appendix(table.failures), file=sys.stderr)
        return 3
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    result = load_attack_result(args.attack)
    diff = edge_difference(result.original, result.poisoned)
    print(f"graph: {result.original.summary()}")
    print(f"homophily: clean={edge_homophily(result.original):.4f} "
          f"poisoned={edge_homophily(result.poisoned):.4f}")
    print(f"edge modifications: {diff}")
    proportions = diff.proportions()
    for kind, value in proportions.items():
        print(f"  {kind}: {value:.1%}")
    print(f"feature flips: {len(result.feature_flips)}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, validate=args.validate)
    print(graph.summary())
    if graph.labels is not None:
        print(f"homophily: {edge_homophily(graph):.4f}")
        counts = np.bincount(graph.labels)
        print(f"class sizes: {list(counts)}")
    degrees = graph.degrees()
    print(
        f"degrees: min={degrees.min():.0f} median={np.median(degrees):.0f} "
        f"max={degrees.max():.0f} mean={degrees.mean():.2f}"
    )
    return 0


_COMMANDS = {
    "dataset": _cmd_dataset,
    "attack": _cmd_attack,
    "defend": _cmd_defend,
    "table": _cmd_table,
    "analyze": _cmd_analyze,
    "info": _cmd_info,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
