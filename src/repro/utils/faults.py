"""Deterministic fault injection for chaos-testing the experiment harness.

The supervisor/retry/checkpoint machinery in :mod:`repro.experiments` only
earns trust if its failure paths are exercised deterministically.  This
module provides that: a :class:`FaultInjector` holds a list of
:class:`FaultSpec` rules and is installed process-wide (via
:func:`install` / :func:`active`).  Instrumented sites — the experiment
runner around each attacker/defender trial and the training loop around each
epoch's loss — call the module-level :func:`perturb` / :func:`corrupt`
hooks, which are no-ops unless an injector is installed.

Fault actions:

``throw``
    Raise :class:`InjectedFault` (an ordinary ``RuntimeError``); with
    ``times=N`` the fault disarms after N triggers, modelling a transient
    failure that retries can ride out.
``hang``
    Sleep for ``seconds`` — used to exercise trial deadlines.
``kill``
    Raise :class:`InjectedKill`, which derives from ``BaseException`` (like
    ``KeyboardInterrupt``), simulating an operator interrupt or OOM kill.
    The supervisor deliberately does *not* absorb it, so checkpoint/resume
    paths are exercised end to end.
``nan``
    Make :func:`corrupt` return ``nan`` instead of the real value — used to
    drive the trainer's divergence detection.
``bitflip``
    Make :func:`damage` return ``True`` at a persistence site
    (``"poison_archive"``, ``"journal"``): the checkpoint layer then flips a
    byte of the artifact it just wrote, exercising digest verification and
    quarantine-and-regenerate recovery end to end.
``oom``
    Raise ``MemoryError`` — drives the degradation ladders (supervisor
    retries at a reduced footprint, block attackers shrink their candidate
    block) without needing to actually exhaust RAM.
``oomkill``
    Call ``os._exit(137)``, the exit status the kernel OOM killer leaves
    behind.  Inside a ``--jobs`` pool worker this breaks the process pool,
    exercising the parent's dead-worker detection and requeue ladder; in
    the parent it models a real OOM kill of the sweep (resume covers it).
    ``times`` defaults to 1 so a requeued trial does not re-fire forever
    (the scheduler ships the prior kill count to the replacement worker).
``sigterm``
    Send ``SIGTERM`` to the current process and *continue*.  The process's
    shutdown handler (pool workers install one; the CLI installs one in the
    parent) cancels every active
    :class:`~repro.utils.cancellation.CancelToken`, so the very next
    ``cancellation.checkpoint`` poll site writes a final mid-trial snapshot
    and raises ``CancelledError(cause="shutdown")`` — a deterministic
    stand-in for an operator or scheduler terminating the process
    mid-trial.  ``times`` defaults to 1 so a resumed trial does not
    re-fire.
``disk_full``
    Make :func:`exhausted` return ``True`` at a disk-preflight site
    (``"journal_disk"``, ``"poison_disk"`` — distinct from the ``bitflip``
    persistence sites, so injected exhaustion never shifts their
    per-record ordinals): the preflight in
    :func:`repro.utils.resources.require_free_disk` then reports 0 free
    bytes and raises a structured ``ResourceError``, exercising the
    ENOSPC recovery paths without filling a disk.

Rules match on the call ``site`` (``"attacker"``, ``"defender"``,
``"trainer"``), optionally on the per-site invocation index (``at=``), and
on arbitrary context fields (``match={"defender": "GNAT"}``).  All matching
is counter-based and seeded by nothing — the same experiment run always
faults at the same trial, which is what makes resume-equivalence assertions
possible.

Operators can enable injection without code via the ``REPRO_FAULTS``
environment variable (see :meth:`FaultInjector.from_env`)::

    REPRO_FAULTS="defender:throw:times=2;attacker:hang:seconds=30" \
        python -m repro table cora --deadline 10
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..errors import ConfigError

__all__ = [
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "InjectedFault",
    "InjectedKill",
    "install",
    "uninstall",
    "active",
    "current",
    "perturb",
    "corrupt",
    "damage",
    "exhausted",
]

ENV_VAR = "REPRO_FAULTS"

_PERTURB_ACTIONS = ("throw", "hang", "kill", "oom", "oomkill", "sigterm")
_CORRUPT_ACTIONS = ("nan",)
_DAMAGE_ACTIONS = ("bitflip",)
_EXHAUST_ACTIONS = ("disk_full",)
_ACTIONS = _PERTURB_ACTIONS + _CORRUPT_ACTIONS + _DAMAGE_ACTIONS + _EXHAUST_ACTIONS


class InjectedFault(RuntimeError):
    """A deliberate, injected failure (retriable)."""


class InjectedKill(BaseException):
    """A deliberate, injected process kill (NOT retriable).

    Derives from ``BaseException`` so supervisors treat it like
    ``KeyboardInterrupt``: it aborts the sweep instead of being absorbed
    into a :class:`~repro.experiments.supervisor.TrialFailure`.
    """


@dataclass
class FaultSpec:
    """One fault rule.

    Parameters
    ----------
    site:
        Instrumented call site to target (``attacker``/``defender``/``trainer``).
    action:
        One of ``throw``, ``hang``, ``kill``, ``nan``.
    times:
        Trigger at most this many times (``None`` = permanent).
    at:
        Only trigger on this zero-based invocation index of the site.
    seconds:
        Sleep duration for ``hang``.
    match:
        Context fields that must all match (compared as strings, so
        ``{"seed": "1"}`` matches ``seed=1``).
    """

    site: str
    action: str
    times: Optional[int] = None
    at: Optional[int] = None
    seconds: float = 30.0
    match: dict[str, str] = field(default_factory=dict)
    fired: int = 0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigError(
                f"unknown fault action {self.action!r}; choose from {_ACTIONS}"
            )
        if self.action in ("oomkill", "sigterm") and self.times is None:
            # A process kill erases the injector that fired it; the
            # replacement worker gets a fresh spec with the prior kill
            # count pre-fired, which only disarms a bounded rule.
            self.times = 1

    def matches(self, index: int, context: dict) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.at is not None and self.at != index:
            return False
        return all(str(context.get(k)) == v for k, v in self.match.items())


@dataclass(frozen=True)
class FaultEvent:
    """Record of one triggered fault (for test assertions)."""

    site: str
    action: str
    index: int
    context: tuple[tuple[str, str], ...]


class FaultInjector:
    """Deterministic fault scheduler; install with :func:`active`."""

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs = list(specs)
        self.events: list[FaultEvent] = []
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> Optional["FaultInjector"]:
        """Build an injector from ``REPRO_FAULTS``, or ``None`` when unset.

        Grammar: ``spec(;spec)*`` with ``spec = site:action(:key=value)*``.
        Recognized keys are ``times`` (int), ``at`` (int) and ``seconds``
        (float); any other key becomes a context ``match`` entry.  The
        values ``"1"``/``"true"`` enable the injection plumbing with no
        faults (useful for CI smoke runs); ``""``/``"0"`` disable it.
        """
        raw = (env if env is not None else os.environ).get(ENV_VAR, "").strip()
        if not raw or raw == "0":
            return None
        if raw.lower() in ("1", "true"):
            return cls()
        return cls(cls.parse(raw))

    @staticmethod
    def parse(text: str) -> list[FaultSpec]:
        """Parse the ``REPRO_FAULTS`` spec grammar into :class:`FaultSpec` s."""
        specs = []
        for chunk in filter(None, (part.strip() for part in text.split(";"))):
            fields = chunk.split(":")
            if len(fields) < 2:
                raise ConfigError(
                    f"bad fault spec {chunk!r}: expected site:action[:key=value...]"
                )
            site, action, *params = fields
            kwargs: dict = {"site": site, "action": action, "match": {}}
            for param in params:
                key, sep, value = param.partition("=")
                if not sep:
                    raise ConfigError(f"bad fault parameter {param!r} in {chunk!r}")
                if key == "times":
                    kwargs["times"] = int(value)
                elif key == "at":
                    kwargs["at"] = int(value)
                elif key == "seconds":
                    kwargs["seconds"] = float(value)
                else:
                    kwargs["match"][key] = value
            specs.append(FaultSpec(**kwargs))
        return specs

    def seed_counters(self, counters: dict[str, int]) -> None:
        """Preset per-site invocation counters (cross-process accounting).

        A pool worker runs one trial of a sweep, not the whole sweep, so its
        injector would start every site counter at zero and ``at=N`` rules
        would match the wrong trial.  The parallel scheduler ships each task
        its *canonical* per-site ordinal (the index the trial's first
        invocation would have in a serial, single-attempt pass) and seeds
        the worker's injector with it, so trial-index accounting survives
        process boundaries.
        """
        with self._lock:
            for site, index in counters.items():
                self._counters[site] = int(index)

    # -- triggering -----------------------------------------------------
    def _next_index(self, site: str) -> int:
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
            return index

    def _trigger(
        self, site: str, context: dict, actions: tuple[str, ...]
    ) -> Optional[FaultSpec]:
        index = self._next_index(site)
        with self._lock:
            for spec in self.specs:
                if spec.site != site or spec.action not in actions:
                    continue
                if not spec.matches(index, context):
                    continue
                spec.fired += 1
                self.events.append(
                    FaultEvent(
                        site=site,
                        action=spec.action,
                        index=index,
                        context=tuple(sorted((k, str(v)) for k, v in context.items())),
                    )
                )
                return spec
        return None

    def perturb(self, site: str, **context) -> None:
        """Raise/hang/exit if a throw/hang/kill/oom/oomkill rule matches."""
        spec = self._trigger(site, context, _PERTURB_ACTIONS)
        if spec is None:
            return
        if spec.action == "throw":
            raise InjectedFault(f"injected fault at {site} {context}")
        if spec.action == "kill":
            raise InjectedKill(f"injected kill at {site} {context}")
        if spec.action == "oom":
            raise MemoryError(f"injected OOM at {site} {context}")
        if spec.action == "oomkill":
            # The kernel OOM killer sends SIGKILL: no cleanup, no excepthook.
            # os._exit(137) is the closest faithful, portable stand-in.
            os._exit(137)
        if spec.action == "sigterm":
            # Deliver a real SIGTERM to ourselves and return: the process's
            # shutdown handler cancels the active tokens and the next
            # cancellation poll site turns that into a snapshot + exit.
            os.kill(os.getpid(), signal.SIGTERM)
            return
        time.sleep(spec.seconds)

    def corrupt(self, site: str, value: float, **context) -> float:
        """Return ``nan`` instead of ``value`` if a nan rule matches."""
        spec = self._trigger(site, context, _CORRUPT_ACTIONS)
        return float("nan") if spec is not None else value

    def damage(self, site: str, **context) -> bool:
        """True when a ``bitflip`` rule matches this invocation.

        Callers that just persisted an artifact (a poison archive, a journal
        record) consult this hook and, when it fires, deliberately corrupt
        the bytes on disk — exercising the integrity-verification and
        quarantine-and-regenerate paths deterministically.
        """
        return self._trigger(site, context, _DAMAGE_ACTIONS) is not None

    def exhausted(self, site: str, **context) -> bool:
        """True when a ``disk_full`` rule matches this invocation.

        The disk preflight (:func:`repro.utils.resources.require_free_disk`)
        consults this hook and, when it fires, reports 0 free bytes —
        raising the same structured ``ResourceError`` a genuinely full
        disk would, deterministically.
        """
        return self._trigger(site, context, _EXHAUST_ACTIONS) is not None


# ---------------------------------------------------------------------------
# Process-wide installation.  The hooks below are called from hot-ish loops
# (one per training epoch), so the uninstalled path is a single global read.

_ACTIVE: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    """Deactivate fault injection."""
    global _ACTIVE
    _ACTIVE = None


def current() -> Optional[FaultInjector]:
    """The active injector, or ``None``."""
    return _ACTIVE


@contextmanager
def active(injector: Optional[FaultInjector]) -> Iterator[Optional[FaultInjector]]:
    """Context manager installing ``injector`` (no-op for ``None``)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def perturb(site: str, **context) -> None:
    """Module-level hook: no-op unless an injector is installed."""
    if _ACTIVE is not None:
        _ACTIVE.perturb(site, **context)


def corrupt(site: str, value: float, **context) -> float:
    """Module-level hook: identity unless an injector is installed."""
    if _ACTIVE is not None:
        return _ACTIVE.corrupt(site, value, **context)
    return value


def damage(site: str, **context) -> bool:
    """Module-level hook: False unless an installed bitflip rule matches."""
    if _ACTIVE is not None:
        return _ACTIVE.damage(site, **context)
    return False


def exhausted(site: str, **context) -> bool:
    """Module-level hook: False unless an installed disk_full rule matches."""
    if _ACTIVE is not None:
        return _ACTIVE.exhausted(site, **context)
    return False
