"""BLAS/OpenMP thread governance for parallel sweeps.

Every trial of a sweep runs NumPy/SciPy kernels backed by a threaded BLAS
(OpenBLAS, MKL, Accelerate, …).  When the experiment scheduler fans trials
out to ``jobs`` worker processes, each worker's BLAS would still try to grab
*every* core, so ``jobs × blas_threads`` threads fight over ``cores`` cores
and the "parallel" sweep runs slower than the serial one.  This module
computes and applies a per-worker thread budget so the product never
oversubscribes the machine.

The only portable lever without extra dependencies is the family of
``*_NUM_THREADS`` environment variables, which BLAS implementations read
when they initialize.  They are authoritative for ``spawn``-started workers
(a fresh interpreter imports NumPy after the variables are set) and for any
library loaded lazily after :func:`limit_blas_threads` runs.  A ``fork``
-started worker inherits a BLAS that was already initialized in the parent,
so for strict governance either export the variables before launching
Python or select the ``spawn`` start method (see
``docs/parallel_sweeps.md``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import ConfigError

__all__ = [
    "BLAS_ENV_VARS",
    "cpu_count",
    "plan_worker_threads",
    "limit_blas_threads",
    "blas_thread_budget",
]

#: Thread-count knobs honoured by the common BLAS/OpenMP runtimes.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def cpu_count() -> int:
    """Usable core count (scheduler-affinity aware where supported)."""
    try:
        affinity = os.sched_getaffinity(0)  # type: ignore[attr-defined]
    except AttributeError:  # macOS / Windows
        return os.cpu_count() or 1
    return max(1, len(affinity))


def plan_worker_threads(jobs: int, total_cores: Optional[int] = None) -> int:
    """BLAS threads each of ``jobs`` workers may use without oversubscribing.

    The plan is the largest ``t`` with ``jobs × t ≤ cores`` (floored at 1, so
    more jobs than cores degrades to single-threaded BLAS rather than
    refusing to run).
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    total = cpu_count() if total_cores is None else int(total_cores)
    if total < 1:
        raise ConfigError(f"total_cores must be >= 1, got {total_cores}")
    return max(1, total // jobs)


def limit_blas_threads(threads: int) -> dict[str, Optional[str]]:
    """Pin every BLAS/OpenMP runtime to ``threads`` via environment variables.

    Returns the previous values (``None`` = unset) so callers can restore
    them; :func:`blas_thread_budget` does that automatically.
    """
    if threads < 1:
        raise ConfigError(f"threads must be >= 1, got {threads}")
    previous: dict[str, Optional[str]] = {}
    for var in BLAS_ENV_VARS:
        previous[var] = os.environ.get(var)
        os.environ[var] = str(int(threads))
    return previous


def _restore(previous: dict[str, Optional[str]]) -> None:
    for var, value in previous.items():
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value


@contextmanager
def blas_thread_budget(threads: int) -> Iterator[int]:
    """Context manager applying (then restoring) a BLAS thread budget."""
    previous = limit_blas_threads(threads)
    try:
        yield threads
    finally:
        _restore(previous)
