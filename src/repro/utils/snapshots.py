"""Mid-trial snapshots: throttled state capture and deterministic resume.

A *trial* (one attack or one defense evaluation) is a deterministic
sequence of *units* — each attacker ``_run`` and each
``train_node_classifier`` fit registers itself as one unit via
:func:`begin_unit`.  The ambient :class:`TrialSnapshotter` (installed
through :func:`repro.utils.cancellation.trial_scope`) assigns units
deterministic ordinals in call order and persists at most one snapshot
per trial: the state of the unit that was running when the trial was
interrupted, serialized through :func:`repro.io.save_snapshot`'s
checksummed archives.

On a resumed attempt the same trial code runs again: units *before* the
snapshotted ordinal re-execute deterministically (cheap — they consume
their RNG streams and rebuild in-memory state but never write snapshots),
the matching unit restores its loop state mid-flight, and everything
after proceeds live.  Because every unit captures its complete loop state
(RNG bit-generator states included), the resumed trajectory — flip
sequences, weight updates, journal records — is bit-identical to an
uninterrupted run.

State builders return ``(arrays, meta)``: a dict of ndarrays and a
JSON-serializable dict.  Include a monotone ``"step"`` in ``meta`` — the
parallel scheduler reads it (:func:`snapshot_progress`) to judge whether
a killed worker made forward progress since its last kill.
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from ..errors import IntegrityWarning
from . import cancellation

__all__ = [
    "TrialSnapshotter",
    "SnapshotUnit",
    "begin_unit",
    "snapshot_progress",
    "generator_state",
    "restore_generator",
    "pack_list",
    "unpack_list",
]

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Small serialization helpers shared by the state builders.


def generator_state(gen: np.random.Generator) -> dict:
    """JSON-serializable bit-generator state of a NumPy ``Generator``."""
    return gen.bit_generator.state


def restore_generator(gen: np.random.Generator, state: dict) -> None:
    """Restore a state captured by :func:`generator_state` (bit-exact)."""
    gen.bit_generator.state = state


def pack_list(arrays: dict, prefix: str, items) -> None:
    """Pack an ordered list of ndarrays into ``arrays`` under ``prefix``."""
    for index, item in enumerate(items):
        arrays[f"{prefix}{index:05d}"] = np.asarray(item)


def unpack_list(data: dict, prefix: str) -> list[np.ndarray]:
    """Recover a list packed by :func:`pack_list` (in original order)."""
    keys = sorted(key for key in data if key.startswith(prefix))
    return [data[key] for key in keys]


# ---------------------------------------------------------------------------
# The sink.


class SnapshotUnit:
    """Handle for one resumable unit of a trial.

    ``resume_state()`` yields the ``(arrays, meta)`` this unit should
    restore from (or ``None`` for a fresh start); ``offer()`` is called
    from poll sites with a state builder.  A *muted* unit (one that
    completed before the interruption) ignores offers so its re-execution
    cannot clobber the snapshot of the unit actually being resumed.
    """

    def __init__(
        self,
        sink: Optional["TrialSnapshotter"],
        ordinal: int,
        kind: str,
        resume: Optional[tuple[dict, dict]] = None,
        muted: bool = False,
    ) -> None:
        self._sink = sink
        self.ordinal = ordinal
        self.kind = kind
        self._resume = resume
        self._muted = muted

    def resume_state(self) -> Optional[tuple[dict, dict]]:
        return self._resume

    def offer(self, builder: Callable[[], tuple], final: bool = False) -> None:
        if self._sink is None or self._muted:
            return
        self._sink._write(self.ordinal, self.kind, builder, final)


_NULL_UNIT = SnapshotUnit(None, -1, "null")


def begin_unit(kind: str) -> SnapshotUnit:
    """Register the next unit of the ambient trial (no-op handle if none).

    Call exactly once per resumable loop, *before* consuming any RNG, and
    pass the returned handle to every ``cancellation.checkpoint`` in that
    loop.  Unit ordinals are assigned in call order, so the trial's unit
    sequence must be deterministic — which it is, because trials are.
    """
    sink = cancellation.current_sink()
    if sink is None:
        return _NULL_UNIT
    return sink.begin_unit(kind)


class TrialSnapshotter:
    """Per-trial snapshot store bound to one archive path.

    ``interval`` throttles periodic snapshot writes (seconds between
    writes; ``0`` writes at every offer — used by tests).  Final offers
    (made by a poll site that just observed cancellation) always write.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        interval: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.interval = float(interval)
        self._clock = clock
        self._last_write: Optional[float] = None
        self._attempt = 0
        self._counter = 0
        self._resume: Optional[tuple[dict, dict]] = None
        self._resume_meta: Optional[dict] = None

    # -- attempt lifecycle ---------------------------------------------
    def start_attempt(self, default_attempt: int) -> int:
        """Begin a trial attempt; returns the attempt ordinal to run as.

        When a resumable snapshot exists on disk, the attempt it was
        written under is returned instead of ``default_attempt`` so the
        resumed run re-derives the *same* seeds — resuming under a fresh
        reseed would splice two unrelated trajectories.
        """
        self._counter = 0
        self._resume = None
        self._resume_meta = None
        if self.path.exists():
            from .. import io

            try:
                arrays, state = io.load_snapshot(self.path)
            except Exception as error:  # noqa: BLE001 — damaged snapshot
                warnings.warn(
                    f"{self.path}: discarding unreadable mid-trial snapshot "
                    f"({type(error).__name__}: {error})",
                    IntegrityWarning,
                    stacklevel=2,
                )
                self.discard()
            else:
                self._resume = (arrays, state.get("data", {}))
                self._resume_meta = state
        if self._resume_meta is not None:
            self._attempt = int(self._resume_meta.get("attempt", default_attempt))
        else:
            self._attempt = int(default_attempt)
        return self._attempt

    def resuming(self) -> bool:
        return self._resume_meta is not None

    # -- unit registration ---------------------------------------------
    def begin_unit(self, kind: str) -> SnapshotUnit:
        ordinal = self._counter
        self._counter += 1
        if self._resume_meta is not None:
            target = int(self._resume_meta.get("unit", -1))
            target_kind = self._resume_meta.get("kind")
            if ordinal < target:
                return SnapshotUnit(self, ordinal, kind, muted=True)
            resume = self._resume
            # Hand the payload to exactly one unit, then forget it.
            self._resume = None
            self._resume_meta = None
            if ordinal == target and kind == target_kind:
                return SnapshotUnit(self, ordinal, kind, resume=resume)
            # Ordinal or kind drifted from the snapshot (e.g. a degraded
            # retry changed the trial's structure): restart this unit
            # fresh rather than restoring mismatched state.
        return SnapshotUnit(self, ordinal, kind)

    # -- persistence ----------------------------------------------------
    def _write(
        self, ordinal: int, kind: str, builder: Callable[[], tuple], final: bool
    ) -> None:
        now = self._clock()
        if (
            not final
            and self._last_write is not None
            and now - self._last_write < self.interval
        ):
            return
        from .. import io

        arrays, meta = builder()
        state = {
            "unit": int(ordinal),
            "kind": kind,
            "attempt": int(self._attempt),
            "step": int(meta.get("step", 0)),
            "data": meta,
        }
        try:
            io.save_snapshot(self.path, arrays, state)
        except OSError as error:
            # A failed snapshot write must not take down the trial it
            # protects; the trial just resumes from an older snapshot (or
            # from scratch) if it is interrupted later.
            warnings.warn(
                f"{self.path}: mid-trial snapshot write failed ({error})",
                IntegrityWarning,
                stacklevel=2,
            )
            return
        self._last_write = now

    def discard(self) -> None:
        """Remove the snapshot (trial finished, or failed and will reseed)."""
        self._resume = None
        self._resume_meta = None
        self.path.unlink(missing_ok=True)


def snapshot_progress(path: PathLike) -> Optional[tuple[int, int]]:
    """``(unit, step)`` progress recorded in a snapshot, or ``None``.

    Best-effort and cheap (meta record only, no array verification): the
    parallel scheduler compares successive values for a repeatedly-killed
    task — forward progress means the mid-trial resume is working and the
    requeue can keep the task's current footprint.
    """
    from .. import io

    state = io.peek_snapshot_meta(path)
    if state is None:
        return None
    return int(state.get("unit", 0)), int(state.get("step", 0))
