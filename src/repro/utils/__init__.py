"""Shared utilities: seeding, timing, fault injection, validation."""

from . import faults
from .faults import FaultInjector, FaultSpec, InjectedFault, InjectedKill
from .rng import ensure_rng, spawn_rngs
from .timer import Timer

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "faults",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedKill",
]
