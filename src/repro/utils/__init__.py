"""Shared utilities: seeding, timing, validation."""

from .rng import ensure_rng, spawn_rngs
from .timer import Timer

__all__ = ["ensure_rng", "spawn_rngs", "Timer"]
