"""Shared utilities: seeding, timing, fault injection, thread governance."""

from . import blas, faults
from .blas import blas_thread_budget, cpu_count, limit_blas_threads, plan_worker_threads
from .faults import FaultInjector, FaultSpec, InjectedFault, InjectedKill
from .rng import ensure_rng, spawn_rngs
from .timer import Timer

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "blas",
    "blas_thread_budget",
    "cpu_count",
    "limit_blas_threads",
    "plan_worker_threads",
    "faults",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedKill",
]
