"""Shared utilities: seeding, timing, fault injection, thread and
resource governance, capacity-bounded artifact caching."""

from . import blas, faults, keystore, resources
from .blas import blas_thread_budget, cpu_count, limit_blas_threads, plan_worker_threads
from .faults import FaultInjector, FaultSpec, InjectedFault, InjectedKill
from .keystore import KeyedArtifactStore, estimate_nbytes, set_cache_bytes
from .resources import (
    MemoryBudget,
    budget_check,
    degraded_footprint,
    free_disk_bytes,
    parse_bytes,
    require_free_disk,
    rss_bytes,
)
from .rng import ensure_rng, spawn_rngs
from .timer import Timer

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "blas",
    "blas_thread_budget",
    "cpu_count",
    "limit_blas_threads",
    "plan_worker_threads",
    "faults",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedKill",
    "keystore",
    "KeyedArtifactStore",
    "estimate_nbytes",
    "set_cache_bytes",
    "resources",
    "MemoryBudget",
    "budget_check",
    "degraded_footprint",
    "free_disk_bytes",
    "parse_bytes",
    "require_free_disk",
    "rss_bytes",
]
