"""One capacity-governed store behind every content-fingerprint cache.

Three memoization layers grew up independently — the SGC ``A_n^k X`` memo,
the view-operator cache (:mod:`repro.graph.viewcache`), and the experiment
runner's poison cache — each keyed by content fingerprints, each with its
own (or no) eviction policy, and none of them byte-accounted.  A 1M-node
sweep can pin gigabytes in "caches" that nothing ever measures.  This
module closes ROADMAP item 5's refactor rider: a single
:class:`KeyedArtifactStore` primitive that every cache layers on, with

* **byte-accounted LRU eviction** — every entry carries its payload size
  (``estimate_nbytes`` when the caller does not know better) and a global
  monotonic access tick; eviction always removes the globally
  least-recently-used *evictable* entry, across stores, until the
  configured budget is met;
* **one shared byte budget** — :func:`set_cache_bytes` (CLI
  ``--cache-bytes``, env ``REPRO_CACHE_BYTES``) caps the *sum* of all
  registered stores, which is exactly the single eviction/capacity policy
  the always-on service layer (ROADMAP item 3) needs;
* **optional spill-to-disk** — a store constructed with ``spill_dir`` +
  ``dump``/``load`` callbacks writes evicted payloads to disk and reloads
  them on the next hit instead of recomputing;
* **pinning** — entries whose only copy lives in memory (a poison graph
  with no checkpoint archive behind it) are never evicted.

Memory pressure integrates through :mod:`repro.utils.resources`: install a
:class:`~repro.utils.resources.MemoryBudget` with an 80% watermark calling
:func:`evict_fraction` and the caches shrink *before* the kernel's OOM
killer gets a vote.

Thread-safety: one module-level lock covers every store (operations are
dict moves and counter bumps — contention is irrelevant next to the
matmuls being cached), which makes cross-store global eviction trivially
deadlock-free.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import sys
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Hashable, Optional, Union

from ..errors import ConfigError

__all__ = [
    "CACHE_BYTES_ENV_VAR",
    "KeyedArtifactStore",
    "estimate_nbytes",
    "set_cache_bytes",
    "cache_bytes_budget",
    "total_cache_bytes",
    "evict_fraction",
    "cache_report",
    "clear_all_stores",
]

CACHE_BYTES_ENV_VAR = "REPRO_CACHE_BYTES"

_lock = threading.RLock()
_tick = itertools.count(1)
_stores: "list[weakref.ref[KeyedArtifactStore]]" = []
_budget_bytes: Optional[int] = None
_budget_from_env = False


def estimate_nbytes(value: Any) -> int:
    """Best-effort payload size in bytes for cache accounting.

    Understands numpy arrays, scipy sparse matrices, the repro ``Tensor``
    (any object exposing a ``data`` ndarray), ``Graph`` (adjacency +
    features + labels + masks), ``AttackResult`` (both carried graphs +
    flip lists), and containers of those; anything else falls back to
    ``sys.getsizeof``.  Estimates are for *accounting*, not allocation:
    being a few percent off just moves an eviction threshold.
    """
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, (int, float)):  # numpy arrays and scalars
        return int(nbytes)
    if hasattr(value, "indptr") and hasattr(value, "indices"):  # CSR/CSC
        return int(
            value.data.nbytes + value.indices.nbytes + value.indptr.nbytes
        )
    if hasattr(value, "tocsr") and hasattr(value, "nnz"):  # other sparse
        return estimate_nbytes(value.tocsr())
    if hasattr(value, "adjacency") and hasattr(value, "features"):  # Graph
        total = estimate_nbytes(value.adjacency) + estimate_nbytes(value.features)
        for name in ("labels", "train_mask", "val_mask", "test_mask"):
            extra = getattr(value, name, None)
            if extra is not None:
                total += estimate_nbytes(extra)
        return total
    if hasattr(value, "original") and hasattr(value, "poisoned"):  # AttackResult
        return (
            estimate_nbytes(value.original)
            + estimate_nbytes(value.poisoned)
            + 16 * (len(value.edge_flips) + len(value.feature_flips))
            + 8 * len(value.objective_trace)
        )
    data = getattr(value, "data", None)
    if data is not None and hasattr(data, "nbytes"):  # Tensor
        return int(data.nbytes)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value) + sum(estimate_nbytes(item) for item in value)
    if isinstance(value, dict):
        return sys.getsizeof(value) + sum(
            estimate_nbytes(k) + estimate_nbytes(v) for k, v in value.items()
        )
    return sys.getsizeof(value)


@dataclass
class _Entry:
    value: Any
    nbytes: int
    tick: int
    pinned: bool = False


@dataclass
class StoreStats:
    """Counters one store exposes (see :meth:`KeyedArtifactStore.stats`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spills: int = 0
    spill_hits: int = 0
    rejected_pins: int = 0
    entries: int = 0
    bytes: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class KeyedArtifactStore:
    """Byte-accounted, LRU-evicted, optionally disk-spilling keyed store.

    Parameters
    ----------
    name:
        Label for :func:`cache_report` and spill filenames.
    capacity_bytes / max_entries:
        Per-store ceilings (``None`` = only the global budget applies).
    spill_dir, dump, load:
        When all three are given, evicted payloads are written via
        ``dump(value, path)`` and transparently reloaded with
        ``load(path)`` on the next :meth:`get` — a spill hit re-admits the
        entry (which may evict something else).  Spill files are removed
        on :meth:`clear` and on re-admission.
    """

    def __init__(
        self,
        name: str,
        capacity_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        dump: Optional[Callable[[Any, Path], None]] = None,
        load: Optional[Callable[[Path], Any]] = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ConfigError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if max_entries is not None and max_entries < 1:
            raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
        if (spill_dir is not None) and (dump is None or load is None):
            raise ConfigError("spill_dir requires both dump and load callbacks")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.max_entries = max_entries
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._dump = dump
        self._load = load
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._spilled: dict[Hashable, Path] = {}
        self._stats = StoreStats()
        self.total_bytes = 0
        with _lock:
            _stores.append(weakref.ref(self))

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, reloaded from spill if needed, else ``default``."""
        with _lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.tick = next(_tick)
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return entry.value
            path = self._spilled.get(key)
            if path is None:
                self._stats.misses += 1
                return default
        # Load outside the lock (disk I/O), re-admit under it.
        try:
            value = self._load(path)  # type: ignore[misc]
        except Exception:
            # A vanished or corrupt spill file is just a cache miss.
            with _lock:
                self._spilled.pop(key, None)
                self._stats.misses += 1
            return default
        with _lock:
            self._spilled.pop(key, None)
        path.unlink(missing_ok=True)
        self._stats.spill_hits += 1
        self.put(key, value)
        return value

    def put(
        self,
        key: Hashable,
        value: Any,
        nbytes: Optional[int] = None,
        pinned: bool = False,
    ) -> Any:
        """Insert (or refresh) ``key`` and enforce every byte ceiling."""
        size = int(nbytes) if nbytes is not None else estimate_nbytes(value)
        with _lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.total_bytes -= previous.nbytes
            self._entries[key] = _Entry(
                value=value, nbytes=size, tick=next(_tick), pinned=pinned
            )
            self.total_bytes += size
            self._enforce_local()
            _enforce_global()
        return value

    def resize(
        self,
        capacity_bytes: Any = ...,
        max_entries: Any = ...,
    ) -> None:
        """Change a ceiling (``None`` lifts it) and enforce it immediately."""
        with _lock:
            if capacity_bytes is not ...:
                if capacity_bytes is not None and capacity_bytes < 0:
                    raise ConfigError(
                        f"capacity_bytes must be >= 0, got {capacity_bytes}"
                    )
                self.capacity_bytes = capacity_bytes
            if max_entries is not ...:
                if max_entries is not None and max_entries < 1:
                    raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
                self.max_entries = max_entries
            self._enforce_local()
            _enforce_global()

    def unpin(self, key: Hashable) -> None:
        """Make a previously pinned entry evictable (e.g. once a disk copy
        of the payload exists)."""
        with _lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.pinned = False

    def discard(self, key: Hashable) -> None:
        """Drop ``key`` (memory and spill) if present."""
        with _lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self.total_bytes -= entry.nbytes
            path = self._spilled.pop(key, None)
        if path is not None:
            path.unlink(missing_ok=True)

    def clear(self) -> None:
        """Drop every entry and spill file; reset the counters."""
        with _lock:
            self._entries.clear()
            self.total_bytes = 0
            spilled = list(self._spilled.values())
            self._spilled.clear()
            self._stats = StoreStats()
        for path in spilled:
            path.unlink(missing_ok=True)

    def __len__(self) -> int:
        with _lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with _lock:
            return key in self._entries or key in self._spilled

    def keys(self) -> list:
        with _lock:
            return list(self._entries)

    def stats(self) -> dict:
        with _lock:
            stats = self._stats.as_dict()
            stats["entries"] = len(self._entries)
            stats["bytes"] = self.total_bytes
            stats["capacity_bytes"] = self.capacity_bytes
            stats["max_entries"] = self.max_entries
            stats["spilled"] = len(self._spilled)
            return stats

    # ------------------------------------------------------------------
    def _lru_evictable(self) -> Optional[Hashable]:
        for key, entry in self._entries.items():  # OrderedDict: LRU first
            if not entry.pinned:
                return key
        return None

    def _evict_one(self, key: Hashable) -> None:
        """Remove ``key``, spilling its payload first when configured.

        Caller holds the lock.  The dump itself happens while holding it
        too — spills are rare (eviction-only) and the alternative invites
        a torn store under concurrent eviction.
        """
        entry = self._entries.pop(key)
        self.total_bytes -= entry.nbytes
        self._stats.evictions += 1
        if self.spill_dir is not None:
            digest = hashlib.blake2b(
                repr(key).encode(), digest_size=12
            ).hexdigest()
            path = self.spill_dir / f"{self.name}-{digest}.spill"
            try:
                self.spill_dir.mkdir(parents=True, exist_ok=True)
                self._dump(entry.value, path)  # type: ignore[misc]
            except Exception:
                path.unlink(missing_ok=True)  # spill is best-effort
            else:
                self._spilled[key] = path
                self._stats.spills += 1

    def _enforce_local(self) -> None:
        """Evict (globally-oldest-first is irrelevant within one store —
        OrderedDict order IS this store's LRU) until local ceilings hold."""
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            key = self._lru_evictable()
            if key is None:
                self._stats.rejected_pins += 1
                break
            self._evict_one(key)
        while (
            self.capacity_bytes is not None and self.total_bytes > self.capacity_bytes
        ):
            key = self._lru_evictable()
            if key is None:
                self._stats.rejected_pins += 1
                break
            self._evict_one(key)


# ---------------------------------------------------------------------------
# Global budget across every registered store


def _live_stores() -> list[KeyedArtifactStore]:
    alive: list[KeyedArtifactStore] = []
    dead = False
    for ref in _stores:
        store = ref()
        if store is None:
            dead = True
        else:
            alive.append(store)
    if dead:
        _stores[:] = [ref for ref in _stores if ref() is not None]
    return alive


def _resolved_budget() -> Optional[int]:
    global _budget_bytes, _budget_from_env
    if _budget_bytes is None and not _budget_from_env:
        raw = os.environ.get(CACHE_BYTES_ENV_VAR, "").strip()
        _budget_from_env = True
        if raw and raw != "0":
            from .resources import parse_bytes

            _budget_bytes = parse_bytes(raw)
    return _budget_bytes


def _enforce_global() -> None:
    """Caller holds the lock: evict the globally least-recently-used
    evictable entry (across stores) until the shared budget holds."""
    budget = _resolved_budget()
    if budget is None:
        return
    stores = _live_stores()
    while sum(s.total_bytes for s in stores) > budget:
        oldest_store: Optional[KeyedArtifactStore] = None
        oldest_key: Optional[Hashable] = None
        oldest_tick = None
        for store in stores:
            key = store._lru_evictable()
            if key is None:
                continue
            tick = store._entries[key].tick
            if oldest_tick is None or tick < oldest_tick:
                oldest_store, oldest_key, oldest_tick = store, key, tick
        if oldest_store is None:
            break  # everything left is pinned
        oldest_store._evict_one(oldest_key)


def set_cache_bytes(total: Optional[int]) -> None:
    """Set (or, with ``None``, lift) the shared byte budget over all stores.

    Takes effect immediately: excess entries are evicted globally-LRU-first.
    """
    global _budget_bytes, _budget_from_env
    if total is not None and total < 0:
        raise ConfigError(f"cache byte budget must be >= 0, got {total}")
    with _lock:
        _budget_bytes = int(total) if total is not None else None
        _budget_from_env = True  # explicit call overrides the env default
        _enforce_global()


def cache_bytes_budget() -> Optional[int]:
    """The shared byte budget (``None`` = unlimited)."""
    with _lock:
        return _resolved_budget()


def total_cache_bytes() -> int:
    """Bytes currently held across every registered store."""
    with _lock:
        return sum(store.total_bytes for store in _live_stores())


def evict_fraction(fraction: float = 0.5) -> int:
    """Evict globally-LRU entries until ``fraction`` of current cache bytes
    are released; returns the bytes freed.  This is the callback the memory
    watermark installs — under RSS pressure the caches shrink first.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    with _lock:
        stores = _live_stores()
        before = sum(s.total_bytes for s in stores)
        target = int(before * (1.0 - fraction))
        while sum(s.total_bytes for s in stores) > target:
            oldest_store: Optional[KeyedArtifactStore] = None
            oldest_key: Optional[Hashable] = None
            oldest_tick = None
            for store in stores:
                key = store._lru_evictable()
                if key is None:
                    continue
                tick = store._entries[key].tick
                if oldest_tick is None or tick < oldest_tick:
                    oldest_store, oldest_key, oldest_tick = store, key, tick
            if oldest_store is None:
                break
            oldest_store._evict_one(oldest_key)
        return before - sum(s.total_bytes for s in stores)


def cache_report() -> dict:
    """Per-store stats plus the shared totals (for tests and diagnostics)."""
    with _lock:
        stores = {store.name: store.stats() for store in _live_stores()}
        return {
            "budget_bytes": _resolved_budget(),
            "total_bytes": sum(s["bytes"] for s in stores.values()),
            "stores": stores,
        }


def clear_all_stores() -> None:
    """Drop every entry in every registered store (tests/benchmarks)."""
    for store in list(_live_stores()):
        store.clear()
