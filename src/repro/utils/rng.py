"""Deterministic random-number helpers.

Every stochastic component in the library (dataset generation, weight init,
dropout, attack tie-breaking) takes either an integer seed or a
``numpy.random.Generator``; these helpers normalize between the two so runs
are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(seed)
    return [np.random.default_rng(s) for s in parent.integers(0, 2**63 - 1, size=count)]
