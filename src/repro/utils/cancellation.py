"""Cooperative cancellation, liveness beacons, and the trial-scope context.

Every long-running loop in the system (training epochs, greedy attack
iterations, block-sampled attack epochs) calls :func:`checkpoint` once per
iteration.  That single poll site does triple duty:

* **liveness** — if the ambient :class:`trial_scope` carries a
  :class:`Beacon`, the poll emits a heartbeat so a parent process can tell
  a slow worker from a hung one;
* **snapshots** — if the caller passes a snapshot unit and a state builder,
  the poll offers the current loop state to the ambient snapshot sink
  (throttled by the sink; see :mod:`repro.utils.snapshots`);
* **cancellation** — if the ambient :class:`CancelToken` (or the
  process-wide shutdown token) has been cancelled, or its deadline has
  expired, the poll writes a *final* snapshot and raises
  :class:`CancelledError` carrying the structured cause.

The contract for new attackers/defenders is exactly one line per loop
iteration::

    cancellation.checkpoint("my-site", unit=unit, state=build_state, epoch=epoch)

where ``unit`` comes from :func:`repro.utils.snapshots.begin_unit` and
``build_state`` is a zero-argument callable returning ``(arrays, meta)``.
Code that never snapshots may call ``checkpoint("my-site")`` bare; the
uninstalled path is a couple of attribute reads.

:class:`CancelledError` derives from ``BaseException`` (like
``KeyboardInterrupt`` and the fault injector's ``InjectedKill``) so a
trial's ordinary ``except Exception`` recovery blocks can never absorb a
cancellation.  The supervisor converts ``cause="deadline"`` into its
retriable :class:`~repro.errors.DeadlineError` flow; ``"shutdown"`` and
``"kill"`` propagate and abort.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = [
    "CAUSE_DEADLINE",
    "CAUSE_SHUTDOWN",
    "CAUSE_KILL",
    "CancelledError",
    "CancelToken",
    "Beacon",
    "read_beacon",
    "trial_scope",
    "current_scope",
    "current_token",
    "current_sink",
    "checkpoint",
    "request_shutdown",
    "shutdown_requested",
    "reset_shutdown",
]

#: Structured cancellation causes carried by :class:`CancelledError`.
CAUSE_DEADLINE = "deadline"
CAUSE_SHUTDOWN = "shutdown"
CAUSE_KILL = "kill"

_CAUSES = (CAUSE_DEADLINE, CAUSE_SHUTDOWN, CAUSE_KILL)


class CancelledError(BaseException):
    """A trial observed a cancelled token at a poll site.

    ``cause`` is one of :data:`CAUSE_DEADLINE` (the token's deadline
    expired), :data:`CAUSE_SHUTDOWN` (SIGINT/SIGTERM-driven process
    shutdown), or :data:`CAUSE_KILL` (a supervisor explicitly killed the
    trial).  ``site`` names the poll site that observed it.
    """

    def __init__(self, cause: str, message: str = "", site: Optional[str] = None):
        self.cause = cause
        self.site = site
        where = f" at {site}" if site else ""
        super().__init__(message or f"trial cancelled ({cause}){where}")


class CancelToken:
    """A cancellation flag with an optional deadline and parent link.

    Cancelling is one-way and idempotent: the first cause wins.  A token
    is *observed* cancelled when it was cancelled directly, when its
    deadline (measured on the monotonic clock) has expired, or when any
    token on its parent chain is cancelled — parent-linking lets a
    supervisor hand a trial a deadline-scoped child of the process-wide
    shutdown token, so one SIGTERM fans out to every running trial.
    """

    def __init__(
        self,
        *,
        deadline_seconds: Optional[float] = None,
        parent: Optional["CancelToken"] = None,
        name: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.parent = parent
        self._clock = clock
        self._lock = threading.Lock()
        self._cause: Optional[str] = None
        self._message = ""
        self._deadline: Optional[float] = None
        if deadline_seconds is not None:
            self._deadline = clock() + float(deadline_seconds)

    def cancel(self, cause: str = CAUSE_KILL, message: str = "") -> bool:
        """Cancel the token; returns True only for the winning (first) call."""
        if cause not in _CAUSES:
            raise ValueError(f"unknown cancel cause {cause!r}; choose from {_CAUSES}")
        with self._lock:
            if self._cause is None:
                self._cause = cause
                self._message = message
                return True
        return False

    def _own_cause(self) -> Optional[str]:
        with self._lock:
            if self._cause is not None:
                return self._cause
            if self._deadline is not None and self._clock() >= self._deadline:
                self._cause = CAUSE_DEADLINE
                return self._cause
        return None

    @property
    def cause(self) -> Optional[str]:
        """The effective cause (walking the parent chain), or ``None``."""
        token: Optional[CancelToken] = self
        while token is not None:
            cause = token._own_cause()
            if cause is not None:
                return cause
            token = token.parent
        return None

    @property
    def cancelled(self) -> bool:
        return self.cause is not None

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` if no deadline is set)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def raise_if_cancelled(self, site: Optional[str] = None) -> None:
        cause = self.cause
        if cause is not None:
            raise CancelledError(cause, message=self._message, site=site)


# ---------------------------------------------------------------------------
# Process-wide shutdown token.  Signal handlers cancel this one token; every
# trial token is (directly or via checkpoint()) observed against it.

_SHUTDOWN_LOCK = threading.Lock()
_SHUTDOWN = CancelToken(name="process-shutdown")


def request_shutdown(message: str = "", cause: str = CAUSE_SHUTDOWN) -> bool:
    """Cancel the process-wide shutdown token (signal-handler safe).

    Returns ``True`` on the first request, ``False`` if shutdown was
    already requested — callers use the second request as the cue to stop
    being graceful (``os._exit``).
    """
    already = _SHUTDOWN.cancelled
    _SHUTDOWN.cancel(cause, message)
    return not already


def shutdown_requested() -> Optional[str]:
    """The shutdown cause if a process-wide shutdown is pending, else ``None``."""
    return _SHUTDOWN.cause


def reset_shutdown() -> None:
    """Replace the process shutdown token (tests and pool-worker re-use)."""
    global _SHUTDOWN
    with _SHUTDOWN_LOCK:
        _SHUTDOWN = CancelToken(name="process-shutdown")


def shutdown_token() -> CancelToken:
    """The current process-wide shutdown token (parent for trial tokens)."""
    return _SHUTDOWN


# ---------------------------------------------------------------------------
# Heartbeat beacons.  A worker writes a tiny JSON file at poll sites
# (throttled); the parent reads it to distinguish slow from hung.


class Beacon:
    """Progress beacon written at poll sites, throttled to ``interval/4``.

    The beacon file is atomically replaced so the parent never reads a
    torn write.  ``incarnation`` identifies the worker generation for a
    requeued task: beats from a killed predecessor carry a lower
    incarnation and are ignored by the monitor.
    """

    def __init__(
        self,
        path: str,
        *,
        task_index: int,
        incarnation: int = 0,
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = path
        self.task_index = int(task_index)
        self.incarnation = int(incarnation)
        self._clock = clock
        self._min_gap = max(interval, 1e-6) / 4.0
        self._last: Optional[float] = None
        self._count = 0

    def beat(self, site: str = "") -> None:
        now = self._clock()
        if self._last is not None and now - self._last < self._min_gap:
            return
        self._last = now
        self._count += 1
        payload = {
            "task": self.task_index,
            "incarnation": self.incarnation,
            "pid": os.getpid(),
            "count": self._count,
            "site": site,
            "time": now,
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            # Liveness reporting must never take down the trial it reports
            # on; a missed beat at worst looks like a brief stall.
            try:
                os.unlink(tmp)
            except OSError:
                pass


def read_beacon(path: str) -> Optional[dict]:
    """Parse a beacon file; ``None`` when absent or unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Ambient trial scope (thread-local): token + beacon + snapshot sink.


class _Scope:
    __slots__ = ("token", "beacon", "sink")

    def __init__(self, token=None, beacon=None, sink=None):
        self.token = token
        self.beacon = beacon
        self.sink = sink


_TLS = threading.local()


def current_scope() -> Optional[_Scope]:
    """The innermost ambient trial scope on this thread, or ``None``."""
    return getattr(_TLS, "scope", None)


def current_token() -> Optional[CancelToken]:
    scope = current_scope()
    return scope.token if scope is not None else None


def current_sink():
    """The ambient snapshot sink (duck-typed; see ``utils.snapshots``)."""
    scope = current_scope()
    return scope.sink if scope is not None else None


@contextmanager
def trial_scope(
    token: Optional[CancelToken] = None,
    beacon: Optional[Beacon] = None,
    sink=None,
    inherit: Optional[_Scope] = None,
) -> Iterator[_Scope]:
    """Install an ambient trial scope on the current thread.

    Unspecified fields are inherited from ``inherit`` (an explicit scope
    captured on another thread — how the supervisor's deadline worker
    thread keeps the spawning thread's beacon and sink) or, failing that,
    from the current thread's innermost scope.
    """
    base = inherit if inherit is not None else current_scope()
    scope = _Scope(
        token=token if token is not None else (base.token if base else None),
        beacon=beacon if beacon is not None else (base.beacon if base else None),
        sink=sink if sink is not None else (base.sink if base else None),
    )
    previous = current_scope()
    _TLS.scope = scope
    try:
        yield scope
    finally:
        _TLS.scope = previous


def checkpoint(
    site: str,
    unit=None,
    state: Optional[Callable[[], tuple]] = None,
    **context,
) -> None:
    """Poll site: heartbeat, snapshot offer, then cancellation check.

    ``unit`` is a snapshot unit handle (``utils.snapshots.begin_unit``)
    and ``state`` a zero-argument callable returning ``(arrays, meta)``;
    both may be omitted for loops that do not checkpoint state.  On an
    observed cancellation the state builder is invoked one final time so
    the trial resumes from the exact iteration it was cancelled at.
    """
    scope = current_scope()
    beacon = scope.beacon if scope is not None else None
    if beacon is not None:
        beacon.beat(site)
    if unit is not None and state is not None:
        unit.offer(state)
    cause = _SHUTDOWN.cause
    token = scope.token if scope is not None else None
    if cause is None and token is not None:
        cause = token.cause
    if cause is None:
        return
    if unit is not None and state is not None:
        unit.offer(state, final=True)
    raise CancelledError(cause, site=site)
