"""Resource governance: memory budgets, disk preflights, degradation ladders.

PR 6 pushed attacks to the 100k–1M-node tiers, where the binding constraint
stops being wall-time and becomes *capacity*: a PRBCD candidate block that
does not fit in RAM, a pool worker the kernel OOM-kills with exitcode −9,
unbounded cache growth across a sweep, and torn writes when the disk fills
mid-archive.  This module is the shared vocabulary the rest of the harness
uses to detect those conditions early and degrade gracefully instead of
dying:

:class:`MemoryBudget`
    Tracks the process RSS (read from ``/proc/self/status`` — no new
    dependencies) against a byte ceiling, with *watermark callbacks*: a
    callback registered at fraction ``f`` fires once each time RSS crosses
    ``f × limit`` upward and re-arms when it falls back below.  The cache
    layer registers an eviction callback at 80% so memory pressure shrinks
    the :mod:`repro.utils.keystore` stores before the kernel gets involved.

:func:`require_free_disk`
    Preflight for archive/journal writes: raises a structured
    :class:`~repro.errors.ResourceError` naming the path and the bytes
    needed instead of letting the filesystem tear the write halfway.
    Consult-able fault injection (``disk_full`` rules, see
    :mod:`repro.utils.faults`) makes the ENOSPC path chaos-testable.

:func:`degraded_footprint`
    The degradation ladder: a context manager applying rung ``level`` of
    :data:`DEGRADATION_LADDER` (fewer BLAS threads, halved
    ``REPRO_BLOCK_SIZE``, fused→autodiff engine fallback) around a retried
    trial.  The supervisor climbs one rung per ``MemoryError`` attempt and
    the parallel scheduler climbs one rung per pool-worker death, so a
    trial that OOMs is re-run smaller, not verbatim.

Budgets install ambiently (like :mod:`repro.utils.faults`): the CLI's
``--memory-budget`` exports ``REPRO_MEMORY_BUDGET`` so ``--jobs`` pool
workers govern themselves with the same ceiling.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from ..errors import ConfigError, ResourceError
from . import faults

__all__ = [
    "MEMORY_BUDGET_ENV_VAR",
    "DEGRADATION_LADDER",
    "MAX_DEGRADE_LEVEL",
    "MemoryBudget",
    "Watermark",
    "parse_bytes",
    "format_bytes",
    "rss_bytes",
    "free_disk_bytes",
    "require_free_disk",
    "with_disk_retry",
    "degraded_footprint",
    "install_budget",
    "current_budget",
    "active_budget",
    "budget_from_env",
    "budget_check",
]

MEMORY_BUDGET_ENV_VAR = "REPRO_MEMORY_BUDGET"

_UNITS = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_bytes(text: Union[str, int, float]) -> int:
    """Parse a byte count with optional ``K``/``M``/``G``/``T`` suffix.

    Accepts ``"512M"``, ``"2G"``, ``"1048576"``, or a plain number; the
    ``B`` suffix (``"2GB"``) is tolerated.  Returns plain bytes.
    """
    if isinstance(text, (int, float)):
        value = float(text)
        unit = ""
    else:
        raw = text.strip().lower().removesuffix("b")
        unit = raw[-1] if raw and raw[-1] in _UNITS else ""
        number = raw[: len(raw) - len(unit)] if unit else raw
        try:
            value = float(number)
        except ValueError as error:
            raise ConfigError(f"cannot parse byte count {text!r}") from error
    if value < 0:
        raise ConfigError(f"byte count must be non-negative, got {text!r}")
    return int(value * _UNITS[unit])


def format_bytes(count: float) -> str:
    """Human-readable byte count (``"1.5 GiB"``)."""
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(count) < 1024.0 or unit == "TiB":
            return f"{count:.0f} {unit}" if unit == "B" else f"{count:.1f} {unit}"
        count /= 1024.0
    return f"{count:.1f} TiB"  # pragma: no cover - unreachable


# ---------------------------------------------------------------------------
# Memory


def rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Linux: ``VmRSS`` from ``/proc/self/status`` (no dependencies, ~µs).
    Elsewhere: ``ru_maxrss`` from :mod:`resource` — the *peak*, not the
    current value, which is still a safe (conservative) budget signal.
    Returns 0 when neither source exists, disabling enforcement rather
    than crashing on an exotic platform.
    """
    try:
        with open("/proc/self/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource as _resource

        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes; both only matter here
        # when /proc is unavailable, i.e. macOS.
        return int(peak) if peak > 1 << 40 else int(peak) * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


@dataclass
class Watermark:
    """One registered watermark: fires crossing up, re-arms crossing down."""

    fraction: float
    callback: Callable[[int, int], None]  # (rss_bytes, limit_bytes)
    fired: bool = False


@dataclass
class MemoryBudget:
    """RSS budget with watermark callbacks and a hard-ceiling check.

    ``limit_bytes`` is the governed ceiling.  :meth:`check` reads the
    current RSS, fires any watermark whose threshold was crossed upward
    since the last check (each re-arms when RSS drops back below it), and
    — only when ``enforce`` is set — raises :class:`ResourceError` above
    the ceiling.  Enforcement is opt-in because the natural consumers
    (supervised trials, block attacks) prefer the degradation ladders to
    a hard failure; watermark-driven cache eviction is the default
    response to pressure.

    ``reader`` is injectable so tests can script RSS trajectories.
    """

    limit_bytes: int
    enforce: bool = False
    reader: Callable[[], int] = rss_bytes
    watermarks: list[Watermark] = field(default_factory=list)
    peak_bytes: int = 0

    def __post_init__(self) -> None:
        self.limit_bytes = int(self.limit_bytes)
        if self.limit_bytes <= 0:
            raise ConfigError(
                f"memory budget must be positive, got {self.limit_bytes}"
            )

    def add_watermark(
        self, fraction: float, callback: Callable[[int, int], None]
    ) -> None:
        """Register ``callback(rss, limit)`` to fire when RSS crosses
        ``fraction × limit`` upward (re-armed on the way back down)."""
        if not 0.0 < fraction:
            raise ConfigError(f"watermark fraction must be positive, got {fraction}")
        self.watermarks.append(Watermark(float(fraction), callback))

    def check(self, context: str = "") -> int:
        """Sample RSS, fire crossed watermarks, and return the reading.

        Raises :class:`ResourceError` above the ceiling when ``enforce``
        is set (after giving every watermark — e.g. cache eviction — one
        chance to bring RSS back down).
        """
        rss = self._sample()
        if self.enforce and rss > self.limit_bytes:
            rss = self._sample()  # watermarks may have released memory
            if rss > self.limit_bytes:
                label = f" during {context}" if context else ""
                raise ResourceError(
                    f"RSS {format_bytes(rss)} exceeds the "
                    f"{format_bytes(self.limit_bytes)} memory budget{label}",
                    resource="memory",
                    needed_bytes=rss,
                    available_bytes=self.limit_bytes,
                )
        return rss

    def _sample(self) -> int:
        rss = int(self.reader())
        self.peak_bytes = max(self.peak_bytes, rss)
        for mark in self.watermarks:
            threshold = mark.fraction * self.limit_bytes
            if not mark.fired and rss >= threshold:
                mark.fired = True
                mark.callback(rss, self.limit_bytes)
            elif mark.fired and rss < threshold:
                mark.fired = False
        return rss

    def headroom_bytes(self) -> int:
        """Bytes left under the ceiling at the current RSS (floored at 0)."""
        return max(0, self.limit_bytes - self.reader())


_BUDGET: Optional[MemoryBudget] = None


def install_budget(budget: Optional[MemoryBudget]) -> None:
    """Install (or, with ``None``, remove) the process-wide memory budget."""
    global _BUDGET
    _BUDGET = budget


def current_budget() -> Optional[MemoryBudget]:
    """The ambient :class:`MemoryBudget`, or ``None`` when ungoverned."""
    return _BUDGET


@contextmanager
def active_budget(budget: Optional[MemoryBudget]) -> Iterator[Optional[MemoryBudget]]:
    """Context manager installing ``budget`` (no-op for ``None``)."""
    global _BUDGET
    previous = _BUDGET
    _BUDGET = budget
    try:
        yield budget
    finally:
        _BUDGET = previous


def budget_from_env(env: Optional[dict] = None) -> Optional[MemoryBudget]:
    """Build a budget from ``REPRO_MEMORY_BUDGET`` (unset/empty/0 → None).

    This is how ``--jobs`` pool workers inherit the parent's ceiling: the
    CLI exports the variable, the worker initializer calls this.
    """
    raw = (env if env is not None else os.environ).get(
        MEMORY_BUDGET_ENV_VAR, ""
    ).strip()
    if not raw or raw == "0":
        return None
    return MemoryBudget(parse_bytes(raw))


def budget_check(context: str = "") -> Optional[int]:
    """Sample the ambient budget at an instrumented site (no-op unmanaged)."""
    if _BUDGET is None:
        return None
    return _BUDGET.check(context)


# ---------------------------------------------------------------------------
# Disk


def free_disk_bytes(path: Union[str, Path]) -> int:
    """Free bytes on the filesystem holding ``path`` (or its first existing
    ancestor, so preflights work before the target file exists)."""
    path = Path(path)
    probe = path if path.exists() else path.parent
    while not probe.exists() and probe != probe.parent:
        probe = probe.parent
    usage = os.statvfs(probe)
    return usage.f_bavail * usage.f_frsize


def require_free_disk(
    path: Union[str, Path],
    needed_bytes: int,
    site: str = "disk",
    **context,
) -> None:
    """Raise :class:`ResourceError` unless the filesystem can hold the write.

    ``site`` doubles as the fault-injection site: a matching ``disk_full``
    rule (:mod:`repro.utils.faults`) makes the preflight behave as if the
    disk had 0 free bytes, so every ENOSPC recovery path is chaos-testable
    without actually filling a disk.
    """
    path = Path(path)
    needed = int(needed_bytes)
    if faults.exhausted(site, path=str(path), **context):
        available = 0
    else:
        available = free_disk_bytes(path)
    if available < needed:
        raise ResourceError(
            f"{path}: not enough free disk space for {site} write "
            f"(need {format_bytes(needed)}, have {format_bytes(available)})",
            resource="disk",
            path=str(path),
            needed_bytes=needed,
            available_bytes=available,
        )


def with_disk_retry(
    fn: Callable[[], object],
    *,
    attempts: int = 3,
    backoff_seconds: float = 0.02,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run a disk write with bounded retries on :class:`ResourceError`.

    Disk pressure is frequently transient (a sibling process rotating its
    own artifacts, a quota catching up), and parent-side writes — journal
    records, poison archives stored at merge time — have no supervising
    retry loop above them.  Exponential backoff, last error re-raised.
    """
    if attempts < 1:
        raise ConfigError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(attempts):
        try:
            return fn()
        except ResourceError:
            if attempt + 1 == attempts:
                raise
            sleep(backoff_seconds * 2**attempt)
    raise AssertionError("unreachable")  # pragma: no cover


# ---------------------------------------------------------------------------
# Degradation ladder

#: Rung ``level`` of the ladder is the *cumulative* footprint reduction a
#: retry runs under after ``level`` resource failures.  Each entry names the
#: environment adjustments applied (and restored) by
#: :func:`degraded_footprint`; ``block_divisor`` halves again per rung so
#: the sampled-block attackers shrink geometrically.
DEGRADATION_LADDER: tuple[dict, ...] = (
    {},  # level 0: full footprint
    {"blas_threads": 1, "block_divisor": 2},
    {"blas_threads": 1, "block_divisor": 4, "engine": "autodiff"},
    {"blas_threads": 1, "block_divisor": 8, "engine": "autodiff"},
)

MAX_DEGRADE_LEVEL = len(DEGRADATION_LADDER) - 1


@contextmanager
def degraded_footprint(level: int) -> Iterator[int]:
    """Apply rung ``level`` of :data:`DEGRADATION_LADDER` via environment.

    Level 0 (or anything falsy) is a no-op.  Higher levels pin BLAS to one
    thread, divide ``REPRO_BLOCK_SIZE``, and force the autodiff training
    engine — all through the same environment knobs the components already
    read, so no callee needs to know it is running degraded.  Previous
    values are restored on exit.

    Determinism caveat (documented in ``docs/resource_governance.md``):
    results are bit-identical under degradation whenever the block covers
    the candidate space (all non-``sbm`` datasets) and the engine fallback
    is the already-bit-identical autodiff path; a *sampled* block that
    shrinks necessarily scores fewer candidates, trading fidelity for
    survival.
    """
    level = max(0, min(int(level), MAX_DEGRADE_LEVEL))
    if level == 0:
        yield 0
        return
    rung = DEGRADATION_LADDER[level]
    from .blas import limit_blas_threads

    saved: dict[str, Optional[str]] = {}

    def set_env(var: str, value: str) -> None:
        saved[var] = os.environ.get(var)
        os.environ[var] = value

    previous_blas: Optional[dict] = None
    try:
        if "blas_threads" in rung:
            previous_blas = limit_blas_threads(rung["blas_threads"])
        if "block_divisor" in rung:
            base = int(os.environ.get("REPRO_BLOCK_SIZE", 200_000))
            set_env(
                "REPRO_BLOCK_SIZE", str(max(1, base // int(rung["block_divisor"])))
            )
        if "engine" in rung:
            set_env("REPRO_ENGINE", rung["engine"])
        yield level
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
        if previous_blas is not None:
            for var, value in previous_blas.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
