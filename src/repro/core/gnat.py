"""GNAT: the paper's GNN defender based on graph augmeNtATions (Sec. IV-B).

Insight (Sec. IV-A): effective attackers mostly *add edges between nodes
with different labels*, blurring each node's context.  GNAT counteracts by
training one shared GCN over three augmented views whose extra edges mostly
connect nodes of the *same* label (Theorem 1), making contexts
distinguishable again:

* **topology graph** ``Â^t``: connect every node to its ``k_t``-hop
  neighborhood (``Â^{k_t}[v][u] ≠ 0``) — same-label nodes share neighbors;
* **feature graph** ``Â^f``: connect every node to its top-``k_f``
  cosine-most-similar nodes — features are rarely attacked (Fig 5a), so
  they remain trustworthy;
* **ego graph** ``Â^e = Â + k_e·I``: emphasize each node's own features.

The three views are fed through the *same* GCN and the logits are averaged:
``Z = (Z^t + Z^f + Z^e)/3`` (training on merged-edge unions instead is the
Table IX "merged" ablation, reproducibly worse).

GNAT is black-box compatible: it needs no attack knowledge, no extra labels,
and no victim parameters.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..defenses.base import Defender, validate_pruned_graph
from ..defenses.simpgcn import knn_graph
from ..errors import ConfigError
from ..graph import Graph, add_self_loops, gcn_normalize
from ..graph.viewcache import cached_operator, csr_fingerprint
from ..nn import GCN, MultiViewForward, TrainConfig, train_node_classifier
from ..tensor import Tensor
from ..utils.rng import SeedLike

__all__ = ["GNAT", "topology_graph", "feature_graph", "ego_graph"]


def _topology_reach(base: sp.csr_matrix, k_hops: int) -> sp.csr_matrix:
    reach = base.copy()
    power = base.copy()
    for _ in range(k_hops - 1):
        power = (power @ base).tocsr()
        reach = reach + power
    reach = reach.tocsr()
    reach.data = np.ones_like(reach.data)
    reach.setdiag(0.0)
    reach.eliminate_zeros()
    return reach


def topology_graph(adjacency: sp.spmatrix, k_hops: int) -> sp.csr_matrix:
    """``Â^t``: binary reachability within ``k_hops`` (no self-loops).

    ``k_hops <= 1`` returns the original adjacency unchanged.  The k-hop
    reachability is memoized process-wide by adjacency content fingerprint
    (see :mod:`repro.graph.viewcache`): sweep cells sharing a poisoned
    graph build the view once.
    """
    base = adjacency.tocsr().astype(np.float64)
    if k_hops <= 1:
        return base
    return cached_operator(
        "topology",
        csr_fingerprint(base) + (int(k_hops),),
        lambda: _topology_reach(base, k_hops),
    )


def feature_graph(features: np.ndarray, k_similar: int) -> sp.csr_matrix:
    """``Â^f``: symmetric top-``k_similar`` cosine-similarity graph."""
    if k_similar < 1:
        raise ConfigError(f"k_similar must be >= 1, got {k_similar}")
    return knn_graph(features, k_similar)


def ego_graph(adjacency: sp.spmatrix, k_ego: float) -> sp.csr_matrix:
    """``Â^e = Â + k_e·I``: self-loop-weighted adjacency."""
    if k_ego < 0:
        raise ConfigError(f"k_ego must be non-negative, got {k_ego}")
    return add_self_loops(adjacency.tocsr().astype(np.float64), weight=float(k_ego))


def _normalize_weighted(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """GCN normalization that tolerates weighted entries (ego graph)."""
    matrix = add_self_loops(adjacency.tocsr())
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
    scaling = sp.diags(inv_sqrt)
    return (scaling @ matrix @ scaling).tocsr()


def _features_degenerate(features: np.ndarray) -> bool:
    n, d = features.shape
    return n == d and np.allclose(features.sum(axis=1), 1.0) and np.allclose(
        features.sum(axis=0), 1.0
    )


class GNAT(Defender):
    """Graph-augmentation defender (the paper's contribution #2).

    Parameters
    ----------
    views:
        Which augmented graphs to use, as a string over {'t', 'f', 'e'}
        (default "tfe" = all three).  Single letters give the Table IX
        single-view variants.
    merge_views:
        If True, union the selected views' edges into ONE graph and train on
        it (Table IX's "merged" variants, e.g. GNAT-tfe) instead of
        averaging per-view logits (the multi-view default, e.g. GNAT-t+f+e).
    k_t / k_f / k_e:
        Augmentation strengths (Fig 9 sweeps; paper default {2, 15, 10}).
    prune_threshold:
        Optional *edge-removal* step (the paper's stated future work:
        "leveraging the knowledge of adding and removing").  Before
        building the views, edges whose endpoints' cosine feature
        similarity falls below this threshold are removed from the base
        adjacency — attacks overwhelmingly add *dissimilar* pairs (Fig 2),
        so removal targets exactly the adversarial additions the
        augmentations otherwise only have to out-vote.  ``None`` (default)
        reproduces the published GNAT.  Not applicable to identity
        features.
    engine:
        Training engine passed through to
        :func:`~repro.nn.train_node_classifier` (``None`` defers to
        ``$REPRO_ENGINE``; see ``docs/fast_training.md``).
    """

    name = "GNAT"

    def __init__(
        self,
        views: str = "tfe",
        merge_views: bool = False,
        k_t: int = 2,
        k_f: int = 15,
        k_e: float = 10.0,
        prune_threshold: Optional[float] = None,
        hidden_dim: int = 16,
        dropout: float = 0.5,
        train_config: Optional[TrainConfig] = None,
        engine: Optional[str] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        views = views.lower()
        if not views or any(v not in "tfe" for v in views) or len(set(views)) != len(views):
            raise ConfigError(f"views must be a subset of 'tfe', got {views!r}")
        if prune_threshold is not None and not 0.0 <= prune_threshold <= 1.0:
            raise ConfigError(
                f"prune_threshold must lie in [0, 1], got {prune_threshold}"
            )
        self.views = views
        self.merge_views = bool(merge_views)
        self.k_t = int(k_t)
        self.k_f = int(k_f)
        self.k_e = float(k_e)
        self.prune_threshold = prune_threshold
        self.hidden_dim = int(hidden_dim)
        self.dropout = float(dropout)
        self.train_config = train_config or TrainConfig()
        self.engine = engine  # None → $REPRO_ENGINE → "auto"

    # ------------------------------------------------------------------
    def prune_graph(self, graph: Graph) -> Graph:
        """Remove low-feature-similarity edges (the future-work extension)."""
        if self.prune_threshold is None:
            return graph
        if _features_degenerate(graph.features):
            raise ConfigError(
                "edge pruning needs informative features; identity features "
                "carry no similarity signal"
            )
        # One sparse pass over the undirected edge list: endpoint dot
        # products via CSR row gathers — bag-of-words features are ~1%
        # dense, so this touches kilobytes where a dense gather would
        # stream the whole feature matrix per edge set — normalized per
        # edge with the per-edge loop's exact formula, then a sparse
        # mask-out of both directions of every dropped edge (no per-edge
        # Python loop).
        features = graph.features
        mask = features != 0
        counts = mask.sum(axis=1)
        indptr = np.zeros(features.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        sparse_feats = sp.csr_matrix(
            (features[mask], np.nonzero(mask)[1], indptr), shape=features.shape
        )
        squares = np.asarray(
            sparse_feats.multiply(sparse_feats).sum(axis=1)
        ).ravel()
        norms = np.sqrt(squares)
        norms[norms == 0] = 1.0
        edges = graph.edge_list()
        heads, tails = edges[:, 0], edges[:, 1]
        products = np.asarray(
            sparse_feats[heads].multiply(sparse_feats[tails]).sum(axis=1)
        ).ravel()
        cosines = products / (norms[heads] * norms[tails])
        drop = cosines < self.prune_threshold
        removed = int(np.count_nonzero(drop))
        adjacency = graph.adjacency.tocsr()
        if removed:
            drop_heads, drop_tails = heads[drop], tails[drop]
            drop_mask = sp.coo_matrix(
                (
                    np.ones(2 * removed),
                    (
                        np.concatenate([drop_heads, drop_tails]),
                        np.concatenate([drop_tails, drop_heads]),
                    ),
                ),
                shape=adjacency.shape,
            ).tocsr()
            adjacency = (adjacency - adjacency.multiply(drop_mask)).tocsr()
            adjacency.eliminate_zeros()
        else:
            adjacency = adjacency.copy()
        pruned = graph.with_adjacency(adjacency)
        pruned = validate_pruned_graph(pruned, self.name)
        self._last_pruned_edges = removed
        return pruned

    # ------------------------------------------------------------------
    def build_views(self, graph: Graph) -> list[sp.csr_matrix]:
        """Raw (unnormalized) augmented adjacencies for the selected views."""
        built: list[sp.csr_matrix] = []
        for view in self.views:
            if view == "t":
                built.append(topology_graph(graph.adjacency, self.k_t))
            elif view == "f":
                if _features_degenerate(graph.features):
                    raise ConfigError(
                        "the feature view is not applicable to identity features "
                        "(Polblogs); use views without 'f' (Table VI footnote)"
                    )
                k = min(self.k_f, graph.num_nodes - 1)
                built.append(feature_graph(graph.features, max(1, k)))
            else:
                built.append(ego_graph(graph.adjacency, self.k_e))
        return built

    def _fit(self, graph: Graph) -> tuple[float, float, dict]:
        self._last_pruned_edges = 0
        graph = self.prune_graph(graph)
        views = self.build_views(graph)
        if self.merge_views:
            merged = views[0].copy()
            for other in views[1:]:
                merged = merged + other
            merged = merged.tocsr()
            # Union semantics for t/f edges; ego self-loop weights survive on
            # the diagonal (capped so a double-counted loop is harmless).
            diagonal = merged.diagonal()
            merged.data = np.ones_like(merged.data)
            merged = merged.tolil()
            merged.setdiag(np.minimum(diagonal, max(self.k_e, 1.0)))
            operators = [_normalize_weighted(merged.tocsr())]
        else:
            operators = [_normalize_weighted(view) for view in views]

        model = GCN(
            graph.num_features,
            graph.num_classes,
            hidden_dim=self.hidden_dim,
            dropout=self.dropout,
            seed=self._model_seed(),
        )

        # MultiViewForward averages the per-view label probabilities
        # Z = (Z^t + Z^f + Z^e)/3 (Sec. IV-B) and, being a recognizable
        # callable rather than a closure, lets the trainer dispatch to the
        # fused multi-view kernel (engine="auto") with a bit-identical
        # weight trajectory.
        result = train_node_classifier(
            model,
            graph,
            self.train_config,
            adjacency=operators[0],
            forward=MultiViewForward(model, operators),
            engine=self.engine,
        )
        return (
            result.test_accuracy,
            result.best_val_accuracy,
            {
                "views": self.views,
                "merged": self.merge_views,
                "pruned_edges": self._last_pruned_edges,
            },
        )

    @property
    def variant_name(self) -> str:
        """Table IX naming: GNAT-t+f+e (multi-view) or GNAT-tfe (merged)."""
        joined = self.views if self.merge_views else "+".join(self.views)
        return f"GNAT-{joined}"
