"""PEEGA: the paper's Practical, Effective, and Efficient GNN Attacker.

A *pure black-box* untargeted attacker (Sec. III): it reads only the graph
topology ``A`` and node features ``X`` — no labels, no GNN parameters, no
model predictions — and greedily flips the adjacency entry or feature bit
whose gradient score most increases the representation-difference objective
(Alg. 1):

1. candidate directions ``A_t = −2Â + 1`` and ``X_f = −2X̂ + 1`` (Def. 4);
2. scores ``S_t = ∇_Â L ⊙ A_t`` and ``S_f = ∇_X̂ L ⊙ X_f`` (Eq. 9);
3. apply the single highest-scoring flip; repeat until the budget ``δ`` is
   spent.

The discrete gradients use the standard continuous relaxation (as in
Metattack): ``Â``/``X̂`` are treated as dense real tensors and the objective
is differentiated through the GCN normalization.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..attacks.base import AttackBudget, Attacker, AttackResult
from ..attacks.constraints import AttackerNodes
from ..errors import ConfigError
from ..graph import EdgeFlip, FeatureFlip, Graph, apply_perturbations
from ..tensor import Tensor
from ..utils.rng import SeedLike
from .difference import DifferenceObjective

__all__ = ["PEEGA"]


class PEEGA(Attacker):
    """Black-box greedy attacker over topology and features.

    Parameters
    ----------
    lam:
        Trade-off ``λ`` between the self view and the global view (Fig 8a;
        paper tunes over {0, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03}).
    p:
        Row-distance norm (Fig 8b; {1, 2, 3}; 2 is best on citation graphs,
        1 on Polblogs).
    layers:
        Surrogate depth ``l`` of ``A_n^l X`` (Fig 7b; 2 is the paper's
        default and best).
    attack_topology / attack_features:
        Enable the TM / FP attack types (Fig 5a ablates TM, FP, TM+FP).
    attacker_nodes:
        Optional accessibility constraint (Fig 7a).
    focus_training_nodes:
        Compute the objective over the graph's training nodes when a train
        mask is present ("Following [24]" in Sec. V-A3).  Requires no label
        access — only knowledge of which nodes are labelled.
    flips_per_step:
        Number of flips applied per gradient evaluation.  1 reproduces
        Alg. 1 exactly; larger values trade a little fidelity for a
        proportional speedup (a documented extension, see DESIGN.md §5).
    seed:
        Random tie-breaking seed.
    """

    name = "PEEGA"
    requires_labels = False
    requires_model = False
    requires_predictions = False

    def __init__(
        self,
        lam: float = 0.01,
        p: Union[int, float] = 1,
        layers: int = 2,
        attack_topology: bool = True,
        attack_features: bool = True,
        attacker_nodes: Optional[AttackerNodes] = None,
        focus_training_nodes: bool = True,
        flips_per_step: int = 1,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if not attack_topology and not attack_features:
            raise ConfigError("enable at least one of attack_topology/attack_features")
        if flips_per_step < 1:
            raise ConfigError(f"flips_per_step must be >= 1, got {flips_per_step}")
        self.lam = float(lam)
        self.p = p
        self.layers = int(layers)
        self.attack_topology = attack_topology
        self.attack_features = attack_features
        self.attacker_nodes = attacker_nodes
        self.focus_training_nodes = bool(focus_training_nodes)
        self.flips_per_step = int(flips_per_step)

    # ------------------------------------------------------------------
    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        node_mask = (
            graph.train_mask
            if self.focus_training_nodes and graph.train_mask is not None
            else None
        )
        objective = DifferenceObjective(
            graph, layers=self.layers, p=self.p, lam=self.lam, node_mask=node_mask
        )
        n, d = graph.num_nodes, graph.num_features

        adj_hat = graph.dense_adjacency()
        feat_hat = graph.features.copy()

        # Static candidate masks.
        if self.attacker_nodes is not None:
            edge_allowed = self.attacker_nodes.edge_mask(n)
            feat_allowed = self.attacker_nodes.feature_mask(n, d)
        else:
            edge_allowed = ~np.eye(n, dtype=bool)
            feat_allowed = np.ones((n, d), dtype=bool)
        # Only the upper triangle represents distinct undirected edges.
        edge_allowed = edge_allowed & np.triu(np.ones((n, n), dtype=bool), k=1)

        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        spent = 0.0
        min_cost = min(
            [1.0] * self.attack_topology + [budget.feature_cost] * self.attack_features
        )

        while spent + min_cost <= budget.total + 1e-12:
            score_t, score_f, loss_value = self._scores(objective, adj_hat, feat_hat)
            result.objective_trace.append(loss_value)

            # Singleton protection (the Nettack convention): never delete a
            # node's *last* feature bit — on identity-feature graphs
            # (Polblogs) an unconstrained greedy would otherwise simply zero
            # the entire feature matrix within budget.
            last_bit = (feat_hat.sum(axis=1, keepdims=True) <= 1.0) & (feat_hat == 1.0)
            candidates = self._rank_candidates(
                score_t, score_f, edge_allowed, feat_allowed & ~last_bit, budget
            )
            if not candidates:
                break

            applied_any = False
            for kind, u, v, cost in candidates[: self.flips_per_step]:
                if spent + cost > budget.total + 1e-12:
                    continue
                if kind == "edge":
                    new_value = 0.0 if adj_hat[u, v] else 1.0
                    adj_hat[u, v] = new_value
                    adj_hat[v, u] = new_value
                    edge_allowed[u, v] = False
                    result.edge_flips.append(EdgeFlip(int(u), int(v)))
                else:
                    feat_hat[u, v] = 1.0 - feat_hat[u, v]
                    feat_allowed[u, v] = False
                    result.feature_flips.append(FeatureFlip(int(u), int(v)))
                spent += cost
                applied_any = True
            if not applied_any:
                break

        poisoned = apply_perturbations(graph, result.edge_flips + result.feature_flips)
        result.poisoned = poisoned
        return result

    # ------------------------------------------------------------------
    def _scores(
        self,
        objective: DifferenceObjective,
        adj_hat: np.ndarray,
        feat_hat: np.ndarray,
    ) -> tuple[Optional[np.ndarray], Optional[np.ndarray], float]:
        """Gradient scores ``S_t``/``S_f`` for the current poisoned state."""
        adj_t = Tensor(adj_hat, requires_grad=self.attack_topology)
        feat_t = Tensor(feat_hat, requires_grad=self.attack_features)
        if self.attack_topology:
            loss = objective(adj_t, feat_t)
        else:
            # Feature-only attack: keep the adjacency on the sparse fast path.
            import scipy.sparse as sp

            loss = objective(sp.csr_matrix(adj_hat), feat_t)
        loss.backward()

        score_t = None
        if self.attack_topology and adj_t.grad is not None:
            direction_t = -2.0 * adj_hat + 1.0
            grad_sym = adj_t.grad + adj_t.grad.T  # undirected flip hits both entries
            score_t = grad_sym * direction_t
        score_f = None
        if self.attack_features and feat_t.grad is not None:
            direction_f = -2.0 * feat_hat + 1.0
            score_f = feat_t.grad * direction_f
        return score_t, score_f, float(loss.item())

    def _rank_candidates(
        self,
        score_t: Optional[np.ndarray],
        score_f: Optional[np.ndarray],
        edge_allowed: np.ndarray,
        feat_allowed: np.ndarray,
        budget: AttackBudget,
    ) -> list[tuple[str, int, int, float]]:
        """Top candidates across both attack types, best first.

        Feature scores are normalized by their cost (``S_f / β``, Sec. V-D1)
        so the comparison in Alg. 1 line 9 is cost-aware.
        """
        k = self.flips_per_step
        entries: list[tuple[float, str, int, int, float]] = []

        if score_t is not None:
            masked = np.where(edge_allowed, score_t, -np.inf)
            flat = np.argpartition(-masked.ravel(), min(k, masked.size - 1))[: k + 1]
            for idx in flat:
                u, v = divmod(int(idx), masked.shape[1])
                if np.isfinite(masked[u, v]):
                    entries.append((float(masked[u, v]), "edge", u, v, 1.0))

        if score_f is not None:
            masked = np.where(feat_allowed, score_f, -np.inf) / budget.feature_cost
            flat = np.argpartition(-masked.ravel(), min(k, masked.size - 1))[: k + 1]
            for idx in flat:
                u, dim = divmod(int(idx), masked.shape[1])
                if np.isfinite(masked[u, dim]):
                    entries.append(
                        (float(masked[u, dim]), "feature", u, dim, budget.feature_cost)
                    )

        entries.sort(key=lambda e: e[0], reverse=True)
        return [(kind, u, v, cost) for _, kind, u, v, cost in entries]
