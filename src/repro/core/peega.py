"""PEEGA: the paper's Practical, Effective, and Efficient GNN Attacker.

A *pure black-box* untargeted attacker (Sec. III): it reads only the graph
topology ``A`` and node features ``X`` — no labels, no GNN parameters, no
model predictions — and greedily flips the adjacency entry or feature bit
whose gradient score most increases the representation-difference objective
(Alg. 1):

1. candidate directions ``A_t = −2Â + 1`` and ``X_f = −2X̂ + 1`` (Def. 4);
2. scores ``S_t = ∇_Â L ⊙ A_t`` and ``S_f = ∇_X̂ L ⊙ X_f`` (Eq. 9);
3. apply the single highest-scoring flip; repeat until the budget ``δ`` is
   spent.

The discrete gradients use the standard continuous relaxation (as in
Metattack): ``Â``/``X̂`` are treated as dense real tensors and the objective
is differentiated through the GCN normalization.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..attacks.base import AttackBudget, Attacker, AttackResult
from ..attacks.constraints import AttackerNodes
from ..errors import ConfigError
from ..graph import EdgeFlip, FeatureFlip, Graph, apply_perturbations
from ..surrogate import PropagationCache
from ..tensor import Tensor
from ..utils import cancellation, faults, snapshots
from ..utils.rng import SeedLike
from .difference import DifferenceObjective, IncrementalScorer

__all__ = ["PEEGA"]


class PEEGA(Attacker):
    """Black-box greedy attacker over topology and features.

    Parameters
    ----------
    lam:
        Trade-off ``λ`` between the self view and the global view (Fig 8a;
        paper tunes over {0, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03}).
    p:
        Row-distance norm (Fig 8b; {1, 2, 3}; 2 is best on citation graphs,
        1 on Polblogs).
    layers:
        Surrogate depth ``l`` of ``A_n^l X`` (Fig 7b; 2 is the paper's
        default and best).
    attack_topology / attack_features:
        Enable the TM / FP attack types (Fig 5a ablates TM, FP, TM+FP).
    attacker_nodes:
        Optional accessibility constraint (Fig 7a).
    focus_training_nodes:
        Compute the objective over the graph's training nodes when a train
        mask is present ("Following [24]" in Sec. V-A3).  Requires no label
        access — only knowledge of which nodes are labelled.
    flips_per_step:
        Number of flips applied per gradient evaluation.  1 reproduces
        Alg. 1 exactly; larger values trade a little fidelity for a
        proportional speedup (a documented extension, see DESIGN.md §5).
    use_cache:
        Select the incremental sparse scoring engine (default).  A
        :class:`~repro.surrogate.PropagationCache` keeps ``A_n`` sparse,
        applies each flip as a delta update, and the attack gradients are
        assembled in closed form (see
        :func:`repro.core.difference.sparse_attack_gradients`) instead of
        re-differentiating a dense ``(n, n)`` autodiff graph per flip.  The
        two paths pick the same flips up to floating-point ties;
        ``use_cache=False`` keeps the dense reference path as the oracle.
    seed:
        Random tie-breaking seed.
    """

    name = "PEEGA"
    requires_labels = False
    requires_model = False
    requires_predictions = False

    def __init__(
        self,
        lam: float = 0.01,
        p: Union[int, float] = 1,
        layers: int = 2,
        attack_topology: bool = True,
        attack_features: bool = True,
        attacker_nodes: Optional[AttackerNodes] = None,
        focus_training_nodes: bool = True,
        flips_per_step: int = 1,
        use_cache: bool = True,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(seed)
        if not attack_topology and not attack_features:
            raise ConfigError("enable at least one of attack_topology/attack_features")
        if flips_per_step < 1:
            raise ConfigError(f"flips_per_step must be >= 1, got {flips_per_step}")
        self.lam = float(lam)
        self.p = p
        self.layers = int(layers)
        self.attack_topology = attack_topology
        self.attack_features = attack_features
        self.attacker_nodes = attacker_nodes
        self.focus_training_nodes = bool(focus_training_nodes)
        self.flips_per_step = int(flips_per_step)
        self.use_cache = bool(use_cache)

    # ------------------------------------------------------------------
    def _run(self, graph: Graph, budget: AttackBudget) -> AttackResult:
        node_mask = (
            graph.train_mask
            if self.focus_training_nodes and graph.train_mask is not None
            else None
        )
        cache = PropagationCache(graph) if self.use_cache else None
        objective = DifferenceObjective(
            graph,
            layers=self.layers,
            p=self.p,
            lam=self.lam,
            node_mask=node_mask,
            cache=cache,
            # The dense oracle scores topology flips through the dense
            # normalization chain; matching M to that chain keeps the p-norm
            # kink at an exact zero (as the cached path has by construction).
            dense_reference=cache is None and self.attack_topology,
        )
        n, d = graph.num_nodes, graph.num_features

        adj_hat = graph.dense_adjacency()
        feat_hat = graph.features.copy()

        # Static candidate masks.
        if self.attacker_nodes is not None:
            edge_allowed = self.attacker_nodes.edge_mask(n)
            feat_allowed = self.attacker_nodes.feature_mask(n, d)
        else:
            edge_allowed = ~np.eye(n, dtype=bool)
            feat_allowed = np.ones((n, d), dtype=bool)
        # Only the upper triangle represents distinct undirected edges.
        edge_allowed = edge_allowed & np.triu(np.ones((n, n), dtype=bool), k=1)

        # Candidate frontier for the sparse engine: every allowed edge has an
        # accessible endpoint, and attack scores are symmetric, so only the
        # accessible *rows* of the topology gradient are ever inspected —
        # the incremental path materializes just those (Fig 7a settings).
        frontier: Optional[np.ndarray] = None
        if (
            cache is not None
            and self.attack_topology
            and self.attacker_nodes is not None
        ):
            accessible = np.flatnonzero(self.attacker_nodes.node_mask(n))
            if len(accessible) < n:
                frontier = accessible

        scorer = IncrementalScorer(objective, cache) if cache is not None else None

        # Candidate directions (Def. 4) are ±1-valued; the incremental path
        # keeps them as persistent arrays and negates the flipped entry in
        # place — exact, and avoids an O(n²)/O(nd) rebuild per iteration.
        direction_t = direction_f = None
        if scorer is not None:
            if self.attack_topology:
                direction_t = -2.0 * adj_hat + 1.0
            if self.attack_features:
                direction_f = -2.0 * feat_hat + 1.0
        # Per-row feature bit counts, maintained exactly (integral +-1 steps)
        # so the singleton-protection mask never re-reduces the full matrix.
        feat_row_sums = feat_hat.sum(axis=1) if self.attack_features else None

        result = AttackResult(original=graph, poisoned=graph, budget=budget)
        spent = 0.0
        min_cost = min(
            [1.0] * self.attack_topology + [budget.feature_cost] * self.attack_features
        )

        # Flip application is shared by the live greedy loop and the
        # snapshot-resume replay below: replaying the recorded flips through
        # the exact same updates (cache deltas included — A_n values are
        # pure functions of the integral degrees, so replay is bit-exact)
        # reconstructs every derived array mid-attack.
        flip_log: list[tuple[int, int, int]] = []

        def apply_edge_flip(u: int, v: int) -> EdgeFlip:
            new_value = 0.0 if adj_hat[u, v] else 1.0
            adj_hat[u, v] = new_value
            adj_hat[v, u] = new_value
            if direction_t is not None:
                direction_t[u, v] = -direction_t[u, v]
                direction_t[v, u] = -direction_t[v, u]
            edge_allowed[u, v] = False
            flip = EdgeFlip(int(u), int(v))
            result.edge_flips.append(flip)
            flip_log.append((0, int(u), int(v)))
            return flip

        def apply_feature_flip(u: int, dim: int) -> FeatureFlip:
            feat_hat[u, dim] = 1.0 - feat_hat[u, dim]
            feat_row_sums[u] += 1.0 if feat_hat[u, dim] else -1.0
            if direction_f is not None:
                direction_f[u, dim] = -direction_f[u, dim]
            feat_allowed[u, dim] = False
            flip = FeatureFlip(int(u), int(dim))
            result.feature_flips.append(flip)
            flip_log.append((1, int(u), int(dim)))
            return flip

        unit = snapshots.begin_unit(f"attack:{self.name}")
        resumed = unit.resume_state()
        if resumed is not None:
            arrays, meta = resumed
            for kind, (u, v) in zip(arrays["flip_kinds"], arrays["flip_uv"]):
                flip = (
                    apply_edge_flip(int(u), int(v))
                    if int(kind) == 0
                    else apply_feature_flip(int(u), int(v))
                )
                if cache is not None:
                    cache.apply(flip)
            result.objective_trace = [float(x) for x in arrays["objective_trace"]]
            spent = float(meta["spent"])
            snapshots.restore_generator(self._rng, meta["rng"])

        def attack_state() -> tuple[dict, dict]:
            return (
                {
                    "flip_kinds": np.asarray(
                        [kind for kind, _, _ in flip_log], dtype=np.int8
                    ),
                    "flip_uv": np.asarray(
                        [(u, v) for _, u, v in flip_log], dtype=np.int64
                    ).reshape(-1, 2),
                    "objective_trace": np.asarray(
                        result.objective_trace, dtype=np.float64
                    ),
                },
                {
                    "step": len(result.objective_trace),
                    "spent": spent,
                    "rng": snapshots.generator_state(self._rng),
                },
            )

        while spent + min_cost <= budget.total + 1e-12:
            iteration = len(result.objective_trace)
            faults.perturb("peega", attacker=self.name, iteration=iteration)
            cancellation.checkpoint(
                "peega", unit=unit, state=attack_state, iteration=iteration
            )
            if scorer is not None:
                score_t, score_f, loss_value = self._scores_cached(
                    scorer, feat_hat, direction_t, direction_f, frontier
                )
            else:
                score_t, score_f, loss_value = self._scores(
                    objective, adj_hat, feat_hat
                )
            result.objective_trace.append(loss_value)

            # Singleton protection (the Nettack convention): never delete a
            # node's *last* feature bit — on identity-feature graphs
            # (Polblogs) an unconstrained greedy would otherwise simply zero
            # the entire feature matrix within budget.  Only rows whose bit
            # count has dropped to <= 1 can host a protected bit, so the
            # dense (n, d) mask is patched just on those rows.
            if self.attack_features:
                feat_mask = feat_allowed.copy()
                risky = np.flatnonzero(feat_row_sums <= 1.0)
                if len(risky):
                    feat_mask[risky] &= feat_hat[risky] != 1.0
            else:
                feat_mask = feat_allowed
            candidates = self._rank_candidates(
                score_t,
                score_f,
                edge_allowed,
                feat_mask,
                budget,
                row_index=frontier,
            )
            if not candidates:
                break

            applied_any = False
            for kind, u, v, cost in candidates[: self.flips_per_step]:
                if spent + cost > budget.total + 1e-12:
                    continue
                if kind == "edge":
                    flip = apply_edge_flip(u, v)
                else:
                    flip = apply_feature_flip(u, v)
                if cache is not None:
                    cache.apply(flip)
                spent += cost
                applied_any = True
            if not applied_any:
                break

        poisoned = apply_perturbations(graph, result.edge_flips + result.feature_flips)
        result.poisoned = poisoned
        return result

    # ------------------------------------------------------------------
    def _scores(
        self,
        objective: DifferenceObjective,
        adj_hat: np.ndarray,
        feat_hat: np.ndarray,
    ) -> tuple[Optional[np.ndarray], Optional[np.ndarray], float]:
        """Gradient scores ``S_t``/``S_f`` for the current poisoned state."""
        adj_t = Tensor(adj_hat, requires_grad=self.attack_topology)
        feat_t = Tensor(feat_hat, requires_grad=self.attack_features)
        if self.attack_topology:
            loss = objective(adj_t, feat_t)
        else:
            # Feature-only attack: keep the adjacency on the sparse fast path.
            import scipy.sparse as sp

            loss = objective(sp.csr_matrix(adj_hat), feat_t)
        loss.backward()

        score_t = None
        if self.attack_topology and adj_t.grad is not None:
            direction_t = -2.0 * adj_hat + 1.0
            grad_sym = adj_t.grad + adj_t.grad.T  # undirected flip hits both entries
            score_t = grad_sym * direction_t
        score_f = None
        if self.attack_features and feat_t.grad is not None:
            direction_f = -2.0 * feat_hat + 1.0
            score_f = feat_t.grad * direction_f
        return score_t, score_f, float(loss.item())

    def _scores_cached(
        self,
        scorer: IncrementalScorer,
        feat_hat: np.ndarray,
        direction_t: Optional[np.ndarray],
        direction_f: Optional[np.ndarray],
        frontier: Optional[np.ndarray],
    ) -> tuple[Optional[np.ndarray], Optional[np.ndarray], float]:
        """Incremental-path scores: closed-form gradients off the sparse cache.

        The scorer drains the cache's dirty-row log and re-materializes only
        the propagation/loss rows the applied flips touched.  When
        ``frontier`` is given, ``score_t`` holds only those gradient rows
        (shape ``(|frontier|, n)``); otherwise it is the full matrix.
        """
        grads = scorer.gradients(
            feat_hat,
            rows=frontier,
            need_topology=self.attack_topology,
            need_features=self.attack_features,
        )
        score_t = None
        if self.attack_topology and grads.grad_topology is not None:
            direction = direction_t if frontier is None else direction_t[frontier]
            # grad_topology is the scorer's per-call scratch; scoring in
            # place avoids another (n, n) allocation per flip.
            score_t = np.multiply(
                grads.grad_topology, direction, out=grads.grad_topology
            )
        score_f = None
        if self.attack_features and grads.grad_features is not None:
            score_f = grads.grad_features * direction_f
        return score_t, score_f, grads.loss

    def _rank_candidates(
        self,
        score_t: Optional[np.ndarray],
        score_f: Optional[np.ndarray],
        edge_allowed: np.ndarray,
        feat_allowed: np.ndarray,
        budget: AttackBudget,
        row_index: Optional[np.ndarray] = None,
    ) -> list[tuple[str, int, int, float]]:
        """Top candidates across both attack types, best first.

        Feature scores are normalized by their cost (``S_f / β``, Sec. V-D1)
        so the comparison in Alg. 1 line 9 is cost-aware.  With ``row_index``
        the topology scores are row-sliced (the frontier of the incremental
        path); scores are symmetric, so each undirected candidate is
        recovered from whichever accessible endpoint hosts its row.
        """
        k = self.flips_per_step
        entries: list[tuple[float, str, int, int, float]] = []

        if score_t is not None and row_index is not None:
            # Row-sliced frontier: candidate (u, v) appears at (row u, col v)
            # and, when both endpoints are accessible, at (row v, col u) with
            # an identical score — deduplicate on the canonical pair.
            allowed = edge_allowed[row_index] | edge_allowed.T[row_index]
            masked = np.where(allowed, score_t, -np.inf)
            take = min(2 * k + 2, masked.size - 1)
            flat = np.argpartition(-masked.ravel(), take)[: take + 1]
            flat = flat[np.argsort(-masked.ravel()[flat], kind="stable")]
            seen: set[tuple[int, int]] = set()
            for idx in flat:
                local, col = divmod(int(idx), masked.shape[1])
                if not np.isfinite(masked[local, col]):
                    continue
                u, v = int(row_index[local]), int(col)
                pair = (min(u, v), max(u, v))
                if pair in seen:
                    continue
                seen.add(pair)
                entries.append((float(masked[local, col]), "edge", *pair, 1.0))
                if len(seen) > k:
                    break
        elif score_t is not None:
            # Negate in place and select the *smallest* entries: equivalent to
            # argpartition(-masked) without materializing a second (n, n)
            # temporary per iteration.
            masked = np.where(edge_allowed, score_t, -np.inf)
            np.negative(masked, out=masked)
            flat = np.argpartition(masked.ravel(), min(k, masked.size - 1))[: k + 1]
            for idx in flat:
                u, v = divmod(int(idx), masked.shape[1])
                if np.isfinite(masked[u, v]):
                    entries.append((float(-masked[u, v]), "edge", u, v, 1.0))

        if score_f is not None:
            masked = np.where(feat_allowed, score_f, -np.inf)
            np.negative(masked, out=masked)
            flat = np.argpartition(masked.ravel(), min(k, masked.size - 1))[: k + 1]
            # The cost-aware score S_f / beta (Sec. V-D1) is applied to the
            # selected handful only — division by a positive constant never
            # reorders the per-type top-k selection.
            for idx in flat:
                u, dim = divmod(int(idx), masked.shape[1])
                if np.isfinite(masked[u, dim]):
                    score = float(-masked[u, dim])
                    if budget.feature_cost != 1.0:
                        score /= budget.feature_cost
                    entries.append((score, "feature", u, dim, budget.feature_cost))

        entries.sort(key=lambda e: e[0], reverse=True)
        return [(kind, u, v, cost) for _, kind, u, v, cost in entries]
