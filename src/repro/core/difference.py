"""Representation-difference measurement (paper Sec. III-A, Eqs. 5–8).

PEEGA scores an attack by how far it moves the surrogate node
representations ``M = A_n^l X``:

* **Self view** (Eq. 5): ``Dif1 = Σ_v ||M̂[v] − M[v]||_p`` — a node whose
  representation moves far from its original one tends to be misclassified.
* **Global view** (Eq. 6): ``Dif2 = Σ_v Σ_{u∈N_v} ||M̂[v] − M[u]||_p`` —
  neighbors mostly share labels (homophily, Fig 1), so pushing a node away
  from its *original* neighbors' representations pushes it away from its
  class without needing labels.

The combined objective (Eq. 8) is ``Dif1 + λ·Dif2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..errors import CacheError, ConfigError
from ..graph import NORMALIZE_EPS, Graph
from ..surrogate import PropagationCache, linear_propagation
from ..tensor import Tensor, as_tensor
from ..tensor.functional import row_pnorm, sparse_matmul_grad_matrix

__all__ = [
    "DifferenceObjective",
    "IncrementalScorer",
    "SparseAttackGradients",
    "PairAttackGradients",
    "self_view_difference",
    "global_view_difference",
    "sparse_attack_gradients",
    "pairwise_gemm_dots",
]


def self_view_difference(
    m_hat: Tensor, m_orig: np.ndarray, p: Union[int, float] = 2
) -> Tensor:
    """Eq. 5: total row-wise Lp distance between perturbed and original reps."""
    return row_pnorm(as_tensor(m_hat) - Tensor(m_orig), p).sum()


def global_view_difference(
    m_hat: Tensor,
    m_orig: np.ndarray,
    edge_index: np.ndarray,
    p: Union[int, float] = 2,
) -> Tensor:
    """Eq. 6: distance between each node's perturbed rep and its original
    neighbors' original reps.

    ``edge_index`` is a ``(2, e)`` array of *directed* pairs ``(v, u)`` with
    ``u ∈ N_v`` taken from the original topology.
    """
    if edge_index.shape[0] != 2:
        raise ConfigError(f"edge_index must be (2, e), got {edge_index.shape}")
    src, dst = edge_index
    diffs = as_tensor(m_hat)[src] - Tensor(m_orig[dst])
    return row_pnorm(diffs, p).sum()


@dataclass
class DifferenceObjective:
    """Callable objective ``L(Â, X̂) = Dif1 + λ·Dif2`` bound to a clean graph.

    Precomputes the original representations ``M`` and the directed neighbor
    pairs once; each call evaluates the objective for candidate ``(Â, X̂)``
    tensors, differentiably.

    Parameters
    ----------
    graph:
        The clean graph ``G(V, A, X)`` (labels unused — black-box setting).
    layers:
        Surrogate depth ``l`` in ``A_n^l X`` (paper default 2; Fig 7b sweeps
        1–4).
    p:
        Norm order of the row distance (Fig 8b sweeps {1, 2, 3}).
    lam:
        Trade-off ``λ`` between self and global views (Fig 8a).
    node_mask:
        Optional boolean mask restricting both sums to a node subset.  The
        paper computes the objective on the training nodes ("Following [24]",
        Sec. V-A3); the mask contains no label information, only *which*
        nodes the attack focuses on.
    cache:
        Optional :class:`~repro.surrogate.PropagationCache` bound to the same
        clean graph.  When given, the original representations ``M`` are
        served from the cache's stored ``A_n`` instead of renormalizing the
        adjacency — together with the sparse score path this keeps a whole
        attack run at one normalization.  The cache must still be at the
        clean state (version 0).
    dense_reference:
        Compute ``M`` through the *dense* normalization/matmul chain — the
        exact floating-point operations the differentiable dense path applies
        to ``M̂``.  At the clean state ``M̂ − M`` is then exactly zero, so the
        ``p``-norm subgradient at the kink is zero rather than the sign of
        ~1e-16 matmul noise.  The incremental cache path gets this for free
        (``M`` and ``M̂`` come from the same sparse matvecs); set this flag
        when scoring topology flips through the dense reference path so both
        engines resolve the kink identically.  Ignored when ``cache`` is set.
    """

    graph: Graph
    layers: int = 2
    p: Union[int, float] = 2
    lam: float = 0.01
    node_mask: Union[np.ndarray, None] = None
    cache: Optional[PropagationCache] = None
    dense_reference: bool = False

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ConfigError(f"lambda must be non-negative, got {self.lam}")
        if self.cache is not None:
            if self.cache.graph is not self.graph:
                raise CacheError(
                    "the propagation cache is bound to a different graph"
                )
            if self.cache.version != 0:
                raise CacheError(
                    "the propagation cache already carries perturbations; the "
                    "objective needs the clean representations M"
                )
            m = self.cache.propagate(self.graph.features, self.layers)
        elif self.dense_reference:
            m = linear_propagation(
                Tensor(self.graph.dense_adjacency()),
                Tensor(np.asarray(self.graph.features, dtype=np.float64)),
                self.layers,
            ).data
        else:
            m = linear_propagation(
                self.graph.adjacency, self.graph.features, self.layers
            )
        self._m_orig: np.ndarray = np.asarray(m)
        coo = self.graph.adjacency.tocoo()
        edge_index = np.vstack([coo.row, coo.col]).astype(np.int64)
        if self.node_mask is not None:
            mask = np.asarray(self.node_mask, dtype=bool)
            if mask.shape != (self.graph.num_nodes,):
                raise ConfigError(
                    f"node_mask must be ({self.graph.num_nodes},), got {mask.shape}"
                )
            if not mask.any():
                raise ConfigError("node_mask selects no nodes")
            self._rows: Union[np.ndarray, None] = np.flatnonzero(mask)
            edge_index = edge_index[:, mask[edge_index[0]]]
        else:
            self._rows = None
        self._edge_index: np.ndarray = edge_index
        # Scatter operator for the closed-form global-view gradient: maps
        # per-edge gradient rows back onto their source nodes (the adjoint of
        # the ``m_hat[src]`` gather).  Built once — the edge list is static.
        num_edges = edge_index.shape[1]
        if self.lam > 0 and num_edges > 0:
            self._scatter: Optional[sp.csr_matrix] = sp.csr_matrix(
                (
                    np.ones(num_edges),
                    (edge_index[0], np.arange(num_edges)),
                ),
                shape=(self.graph.num_nodes, num_edges),
            )
            # The neighbor-side operand of the global view is static —
            # gather it once instead of on every score evaluation.
            self._m_orig_dst: Optional[np.ndarray] = self._m_orig[edge_index[1]]
        else:
            self._scatter = None
            self._m_orig_dst = None
        self._m_orig_rows: Optional[np.ndarray] = (
            None if self._rows is None else self._m_orig[self._rows]
        )

    @property
    def original_representations(self) -> np.ndarray:
        """The clean surrogate representations ``M = A_n^l X``."""
        return self._m_orig

    def __call__(
        self,
        adjacency: Union[Tensor, np.ndarray, sp.spmatrix],
        features: Union[Tensor, np.ndarray],
    ) -> Tensor:
        """Evaluate ``Dif1 + λ·Dif2`` for a candidate perturbed graph."""
        m_hat = linear_propagation(adjacency, as_tensor(features), self.layers)
        return self._loss_from(m_hat)

    def _loss_from(self, m_hat: Union[Tensor, np.ndarray]) -> Tensor:
        """The objective given already-propagated representations ``M̂``.

        Shared by the dense reference path (``M̂`` mid-graph, gradients flow
        back into ``Â``/``X̂``) and the incremental sparse path (``M̂`` a leaf
        tensor whose gradient seeds the closed-form backward) — one
        implementation, so both paths score flips with identical loss math.
        """
        if self._rows is None:
            loss = self_view_difference(m_hat, self._m_orig, self.p)
        else:
            loss = row_pnorm(
                as_tensor(m_hat)[self._rows] - Tensor(self._m_orig[self._rows]), self.p
            ).sum()
        if self.lam > 0 and self._edge_index.shape[1] > 0:
            loss = loss + self.lam * global_view_difference(
                m_hat, self._m_orig, self._edge_index, self.p
            )
        return loss

    def loss_and_representation_grad(
        self, m_hat: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Objective value and ``∂L/∂M̂`` for concrete representations.

        Closed form — no autodiff tape.  The gradient formulas mirror
        :func:`~repro.tensor.functional.row_pnorm`'s backward exactly
        (including the ``sign(0) = 0`` subgradient at the kink and the
        ``eps`` guard for ``p >= 2``), so this agrees with the tape to
        floating-point roundoff while skipping its per-op array copies —
        the dominant cost of the incremental score path.
        """
        m_hat = np.asarray(m_hat, dtype=np.float64)
        if self._rows is None:
            values, grad = _pnorm_rows_and_grad(m_hat - self._m_orig, self.p)
        else:
            values, g_self = _pnorm_rows_and_grad(
                m_hat[self._rows] - self._m_orig_rows, self.p
            )
            grad = np.zeros_like(m_hat)
            grad[self._rows] = g_self
        value = float(values.sum())
        if self._scatter is not None:
            src = self._edge_index[0]
            # λ is folded into the per-edge gradient *before* the scatter-sum
            # — the tape seeds the global-view branch with g = λ, so λ
            # multiplies each edge row first.  ``λ·Σ g`` instead of ``Σ λ·g``
            # differs in the last bit and breaks exact score ties against the
            # dense oracle (p = 1 scores are tie-dense).
            v_glob, g_glob = _pnorm_rows_and_grad(
                m_hat[src] - self._m_orig_dst, self.p, prefactor=self.lam
            )
            value = value + self.lam * float(v_glob.sum())
            grad += self._scatter @ g_glob
        return float(value), grad


def _pnorm_rows_and_grad(
    residual: np.ndarray,
    p: Union[int, float],
    prefactor: float = 1.0,
    eps: float = 1e-12,
) -> tuple[np.ndarray, np.ndarray]:
    """Row norms ``||r_i||_p`` and the gradient of ``prefactor·Σ_i ||r_i||_p``.

    Matches ``row_pnorm``'s backward op-for-op (``sign(0) = 0`` subgradient
    at the ``p = 1`` kink, ``eps``-guarded form for ``p >= 2``), with
    ``prefactor`` entering exactly where the tape's upstream gradient would —
    so the result is bitwise identical to dense autodiff.
    """
    p = float(p)
    if p == 1.0:
        values = np.abs(residual).sum(axis=1)
        grad = np.sign(residual)
        if prefactor != 1.0:
            grad = prefactor * grad
        return values, grad
    guarded = np.abs(residual) + eps
    rowsums = (guarded**p).sum(axis=1)
    values = rowsums ** (1.0 / p)
    outer = (prefactor * (1.0 / p)) * rowsums ** (1.0 / p - 1.0)
    grad = (outer[:, None] * p) * guarded ** (p - 1.0) * np.sign(residual)
    return values, grad


@dataclass(frozen=True)
class SparseAttackGradients:
    """Closed-form attack gradients from the incremental sparse path.

    ``grad_topology`` is the *symmetrized* adjacency gradient
    ``∇_Â L + (∇_Â L)ᵀ`` — the quantity PEEGA multiplies by the flip
    direction — either full ``(n, n)`` or sliced to ``rows``.
    ``grad_features`` is ``∇_X̂ L`` (always full: it costs only sparse
    products).  Either entry is ``None`` when not requested.
    """

    loss: float
    grad_topology: Optional[np.ndarray]
    grad_features: Optional[np.ndarray]
    rows: Optional[np.ndarray]


@dataclass(frozen=True)
class PairAttackGradients:
    """Closed-form gradients restricted to explicit candidate pairs.

    ``grad_pairs[i]`` is the symmetrized adjacency gradient
    ``∇_Â[u_i, v_i] + ∇_Â[v_i, u_i]`` for candidate pair ``(u_i, v_i)`` —
    the same entry of the full :class:`SparseAttackGradients` topology
    matrix to ~1e-12 relative (see :func:`pairwise_gemm_dots` for why not
    bitwise), without materializing anything of size O(n²).
    """

    loss: float
    grad_pairs: np.ndarray
    grad_features: Optional[np.ndarray]


def pairwise_gemm_dots(a: np.ndarray, b: np.ndarray, chunk: int = 128) -> np.ndarray:
    """Row-wise dots ``out[i] = ⟨a[i], b[i]⟩`` via chunked-GEMM diagonals.

    A plain ``einsum`` would compute the same values through a very
    different accumulation order than the BLAS GEMM behind
    :func:`~repro.tensor.functional.sparse_matmul_grad_matrix`; routing the
    dots through small GEMM diagonals keeps them on a BLAS reduction and in
    practice agrees with the full-matrix entries to ~1e-12 relative.  It is
    *not* bitwise: BLAS picks different micro-kernel tile paths for a
    ``chunk``-sized GEMM than for the (n, n) product, so a few entries per
    block differ in the last ulp.  Callers that need exact tie order
    against the dense oracle (the exhaustive-block attack modes) must score
    through the full-matrix path instead.  The wasted off-diagonal work is
    bounded by ``chunk``×.
    """
    count = a.shape[0]
    out = np.empty(count, dtype=np.float64)
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        out[lo:hi] = np.diagonal(a[lo:hi] @ b[lo:hi].T)
    return out


def sparse_attack_gradients(
    objective: DifferenceObjective,
    cache: PropagationCache,
    features: np.ndarray,
    rows: Optional[np.ndarray] = None,
    need_topology: bool = True,
    need_features: bool = True,
) -> SparseAttackGradients:
    """Gradients of the objective w.r.t. dense ``Â`` and ``X̂``, via sparse ``A_n``.

    Replicates the dense reference path in closed form.  With ``M̂ = A_n^l X̂``
    and ``G = ∂L/∂M̂`` obtained by seeding the loss at a leaf tensor, the
    adjoints are ``U_l = G``, ``U_{k-1} = A_nᵀ U_k`` and the forward stack is
    ``Z_0 = X̂``, ``Z_k = A_n Z_{k-1}`` — all sparse-times-dense products.
    Then

    * ``∇_X̂ = U_0``;
    * ``∇_{A_n} = Σ_k U_k Z_{k-1}ᵀ`` (the dense outer-product kernel,
      row-sliced to the candidate frontier when ``rows`` is given);
    * differentiating through ``A_n = D^{-1/2}(Â+I)D^{-1/2}`` adds the
      normalization chain: ``∇_Â[i,j] = s_i H_{ij} s_j + c_i`` where
      ``c = (∂L/∂s) ⊙ ∂s/∂d`` and ``∂L/∂s_i = (Σ_j H_{ij}A_{n,ij} +
      Σ_j H_{ji}A_{n,ji}) / s_i`` collapses to row-wise dot products
      ``Σ_k ⟨U_k, Z_k⟩ + ⟨U_{k-1}, Z_{k-1}⟩`` — no dense matrix needed.

    The symmetrized topology gradient is assembled as
    ``C + Cᵀ + c 1ᵀ + 1 cᵀ`` with ``C = diag(s) H diag(s)`` computed by one
    GEMM over the column-stacked per-layer factors.
    """
    an = cache.normalized  # also verifies the cache binding
    layers = objective.layers
    zs = [np.asarray(features, dtype=np.float64)]
    for _ in range(layers):
        zs.append(an @ zs[-1])
    loss, grad_m = objective.loss_and_representation_grad(zs[-1])
    return _assemble_attack_gradients(
        cache, layers, zs, loss, grad_m, rows, need_topology, need_features
    )


def _assemble_attack_gradients(
    cache: PropagationCache,
    layers: int,
    zs: list[np.ndarray],
    loss: float,
    grad_m: np.ndarray,
    rows: Optional[np.ndarray],
    need_topology: bool,
    need_features: bool,
) -> SparseAttackGradients:
    """Adjoint chain + normalization-chain assembly shared by both engines.

    The stateless one-shot path and the :class:`IncrementalScorer` feed this
    with their (identical) ``Z``-stack and ``∂L/∂M̂`` — one implementation,
    so their gradients stay bitwise equal.
    """
    an = cache.normalized
    s = cache.scaling

    us: list[np.ndarray] = [grad_m]
    for _ in range(layers):
        # A_n is symmetric in structure and values, so A_nᵀ U ≡ A_n U.
        us.append(an @ us[-1])
    us.reverse()  # us[k] = adjoint of Z_k

    grad_features = us[0] if need_features else None
    if not need_topology:
        return SparseAttackGradients(loss, None, grad_features, rows)

    scaled_u, scaled_z = _scaled_factor_buffers(s, us, zs, layers)
    c_rows = sparse_matmul_grad_matrix(scaled_u, scaled_z, rows)
    if rows is None:
        # Full-matrix case: C is assembled once and its transpose reused.
        c_cols = c_rows.T
    else:
        c_cols = sparse_matmul_grad_matrix(scaled_z, scaled_u, rows)

    degree_grad = _degree_chain_gradient(cache, us, zs, layers)
    left = degree_grad if rows is None else degree_grad[rows]
    grad_topology = c_rows + c_cols + left[:, None] + degree_grad[None, :]
    return SparseAttackGradients(loss, grad_topology, grad_features, rows)


def _scaled_factor_buffers(
    s: np.ndarray, us: list[np.ndarray], zs: list[np.ndarray], layers: int
) -> tuple[np.ndarray, np.ndarray]:
    """Column-stack the per-layer GEMM factors ``s ⊙ U_k`` / ``s ⊙ Z_{k-1}``.

    NOTE: every per-pair score term must go through the same dense dot
    products as the oracle path.  Exploiting the sparsity of ``Z_0 = X̂``
    here (a sparse product for the k = 1 term) is tempting but re-associates
    the sums — and with ``p = 1`` the score distribution is full of exact
    ties, which the two engines would then break differently.
    """
    n, d = zs[0].shape
    scale_col = s[:, None]
    scaled_u = np.empty((n, layers * d))
    scaled_z = np.empty((n, layers * d))
    for k in range(1, layers + 1):
        np.multiply(us[k], scale_col, out=scaled_u[:, (k - 1) * d : k * d])
        np.multiply(zs[k - 1], scale_col, out=scaled_z[:, (k - 1) * d : k * d])
    return scaled_u, scaled_z


def _degree_chain_gradient(
    cache: PropagationCache,
    us: list[np.ndarray],
    zs: list[np.ndarray],
    layers: int,
) -> np.ndarray:
    """``∂L/∂Â`` contribution through the degree/scaling chain, per node.

    ``∂L/∂s_i`` collapses to row-wise dot products of the adjoint and
    forward stacks; the chain through ``s = (d + eps)^{-1/2}`` then yields a
    per-node vector that enters the topology gradient as ``c 1ᵀ + 1 cᵀ``.
    """
    row_dots = sum(
        np.einsum("ij,ij->i", us[k], zs[k]) for k in range(1, layers + 1)
    )
    col_dots = sum(
        np.einsum("ij,ij->i", us[k - 1], zs[k - 1]) for k in range(1, layers + 1)
    )
    grad_scaling = (row_dots + col_dots) / cache.scaling
    return grad_scaling * (-0.5) * (cache.loop_degrees + NORMALIZE_EPS) ** -1.5


class IncrementalScorer:
    """Stateful engine: re-scores only what the last flips touched.

    The one-shot :func:`sparse_attack_gradients` re-materializes the full
    propagation stack ``Z_k = A_n^k X̂`` and the full residual/loss state on
    every call.  A greedy attack changes a handful of rows per step, so the
    scorer keeps both as persistent state and, on each call,

    1. drains the cache's dirty-row log (endpoint rows + mirrored neighbor
       rows per edge flip, one feature row per feature flip);
    2. propagates the dirty set through the stack — ``D_1`` is the dirty
       ``A_n`` rows plus neighbors of dirty feature rows, ``D_{k+1}`` adds
       neighbors of ``D_k`` (self-loops make ``D_k ⊆ N(D_k)``) — and
       recomputes just those rows with row-sliced sparse matvecs;
    3. patches the per-row self-view norms/gradients and the per-edge
       global-view norms/gradients for the touched rows and edges only.

    CSR matvec rows are computed independently, so a row-sliced recompute is
    bitwise identical to the same row of a full rebuild — the scorer's flip
    choices match the one-shot path (and hence the dense oracle) exactly,
    which ``tests/test_peega_incremental.py`` locks down.
    """

    def __init__(self, objective: DifferenceObjective, cache: PropagationCache) -> None:
        if objective.cache is not cache:
            raise CacheError(
                "IncrementalScorer needs the objective bound to the same cache"
            )
        self.objective = objective
        self.cache = cache
        self._zs: Optional[list[np.ndarray]] = None
        # Self-view state: per-row norms and the (n, d) gradient image.
        self._row_values: Optional[np.ndarray] = None
        self._self_grad: Optional[np.ndarray] = None
        # Global-view state: per-edge norms, per-edge gradients (λ folded),
        # and their scatter-sum onto source nodes.
        self._edge_values: Optional[np.ndarray] = None
        self._g_glob: Optional[np.ndarray] = None
        self._node_glob: Optional[np.ndarray] = None
        # Adjoint stack: ``_grad_m`` is ``∂L/∂M̂`` and ``_us[k]`` the adjoint
        # of ``Z_k`` (``_us[layers]`` aliases ``_grad_m``).
        self._grad_m: Optional[np.ndarray] = None
        self._us: Optional[list[np.ndarray]] = None
        # Topology state: the stacked GEMM factors, their product
        # ``C = (s ⊙ U) (s ⊙ Z)ᵀ`` — the quadratic piece of the score — and
        # the per-node dots feeding the degree chain.  Kept across calls and
        # patched row/column-wise per flip.
        self._su: Optional[np.ndarray] = None
        self._sz: Optional[np.ndarray] = None
        self._c: Optional[np.ndarray] = None
        self._row_dots: Optional[np.ndarray] = None
        self._col_dots: Optional[np.ndarray] = None
        # The pair path maintains the per-node dots without the (n, n)
        # product C, so their validity is tracked separately from ``_c``.
        self._dots_valid: bool = False
        # Scratch for the assembled topology gradient — reused across calls
        # so the hot loop does not allocate a fresh (n, n) buffer per flip.
        self._topo_out: Optional[np.ndarray] = None

    def _refresh_state(
        self, features: np.ndarray
    ) -> tuple[
        bool, bool, np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[np.ndarray]
    ]:
        """Drain the cache's dirty log and patch forward/adjoint/loss state.

        Shared preamble of :meth:`gradients` and :meth:`pair_gradients` —
        one implementation, so the full-matrix and block-sampled paths score
        from byte-identical state.  Returns
        ``(first, any_dirt, an_dirty, feat_dirty, dirty_m, dirty_below,
        e_levels)`` — the bookkeeping the topology-state patches fan out
        from.
        """
        cache = self.cache
        an = cache.normalized  # also verifies the cache binding
        layers = self.objective.layers
        an_dirty, feat_dirty = cache.drain_dirty_rows()
        any_dirt = bool(len(an_dirty) or len(feat_dirty))
        first = self._zs is None

        if first:
            self._zs = [np.array(features, dtype=np.float64, copy=True)]
            for _ in range(layers):
                self._zs.append(an @ self._zs[-1])
            self._init_loss_state()
            if self._node_glob is not None:
                self._grad_m = self._self_grad + self._node_glob
            else:
                self._grad_m = self._self_grad.copy()
            self._us = [None] * (layers + 1)
            self._us[layers] = self._grad_m
            for k in range(layers - 1, -1, -1):
                # A_n is symmetric in structure and values: A_nᵀ U ≡ A_n U.
                self._us[k] = an @ self._us[k + 1]
            dirty_m = dirty_below = feat_dirty
            e_levels: list[np.ndarray] = []
        else:
            zs = self._zs
            if len(feat_dirty):
                zs[0][feat_dirty] = features[feat_dirty]
            dirty = feat_dirty
            dirty_below = feat_dirty  # dirty rows of zs[layers - 1]
            for k in range(1, layers + 1):
                if k == layers:
                    dirty_below = dirty
                if len(dirty):
                    neighbors = np.unique(an[dirty].indices)
                    dirty = np.union1d(an_dirty, neighbors)
                else:
                    dirty = an_dirty
                if len(dirty):
                    zs[k][dirty] = an[dirty] @ zs[k - 1]
            dirty_m = dirty
            grad_dirty = self._update_loss_state(dirty_m)
            if len(grad_dirty):
                if self._node_glob is not None:
                    self._grad_m[grad_dirty] = (
                        self._self_grad[grad_dirty] + self._node_glob[grad_dirty]
                    )
                else:
                    self._grad_m[grad_dirty] = self._self_grad[grad_dirty]
            # Adjoint fan-out: E_l = rows where ∂L/∂M̂ actually changed (for
            # p = 1 the gradient is a sign pattern, so most dirty residual
            # rows keep a bitwise-identical gradient and prune the frontier),
            # then E_{k-1} = dirty(A_n) ∪ N(E_k).
            e_levels = [np.empty(0, dtype=np.int64)] * (layers + 1)
            e_levels[layers] = grad_dirty
            e = grad_dirty
            for k in range(layers - 1, -1, -1):
                if len(e):
                    e = np.union1d(an_dirty, np.unique(an[e].indices))
                else:
                    e = an_dirty
                if len(e):
                    self._us[k][e] = an[e] @ self._us[k + 1]
                e_levels[k] = e
        return first, any_dirt, an_dirty, feat_dirty, dirty_m, dirty_below, e_levels

    def _objective_value(self) -> float:
        """The objective at the current state, off the persistent loss state."""
        value = float(self._row_values.sum())
        if self._node_glob is not None:
            value = value + self.objective.lam * float(self._edge_values.sum())
        return value

    def gradients(
        self,
        features: np.ndarray,
        rows: Optional[np.ndarray] = None,
        need_topology: bool = True,
        need_features: bool = True,
    ) -> SparseAttackGradients:
        """Same contract as :func:`sparse_attack_gradients`, amortized."""
        cache = self.cache
        layers = self.objective.layers
        (first, any_dirt, an_dirty, feat_dirty, dirty_m, dirty_below, e_levels) = (
            self._refresh_state(features)
        )
        value = self._objective_value()

        grad_features = self._us[0] if need_features else None
        if not need_topology:
            if any_dirt:
                # Flips arrived while the topology state sat unused; a later
                # topology request must rebuild rather than patch from stale C.
                self._c = None
                self._dots_valid = False
            return SparseAttackGradients(value, None, grad_features, rows)

        s = cache.scaling
        zs = self._zs
        us = self._us
        if self._c is None or first:
            self._su, self._sz = _scaled_factor_buffers(s, us, zs, layers)
            self._c = sparse_matmul_grad_matrix(self._su, self._sz)
            self._row_dots = sum(
                np.einsum("ij,ij->i", us[k], zs[k]) for k in range(1, layers + 1)
            )
            self._col_dots = sum(
                np.einsum("ij,ij->i", us[k - 1], zs[k - 1])
                for k in range(1, layers + 1)
            )
            self._dots_valid = True
        elif any_dirt:
            self._patch_topology_state(
                s, an_dirty, dirty_m, dirty_below, feat_dirty, e_levels
            )

        grad_scaling = (self._row_dots + self._col_dots) / s
        degree_grad = (
            grad_scaling * (-0.5) * (cache.loop_degrees + NORMALIZE_EPS) ** -1.5
        )
        if rows is None:
            c_rows: np.ndarray = self._c
            c_cols: np.ndarray = self._c.T
            left = degree_grad
        else:
            c_rows = self._c[rows]
            c_cols = self._c[:, rows].T
            left = degree_grad[rows]
        # Same association as ``c_rows + c_cols + left + degree_grad`` (bit
        # parity with the one-shot path), assembled into persistent scratch.
        # The returned array is only valid until the next `gradients` call.
        if self._topo_out is None or self._topo_out.shape != c_rows.shape:
            self._topo_out = np.empty(c_rows.shape, dtype=np.float64)
        grad_topology = self._topo_out
        np.add(c_rows, c_cols, out=grad_topology)
        grad_topology += left[:, None]
        grad_topology += degree_grad[None, :]
        return SparseAttackGradients(value, grad_topology, grad_features, rows)

    def _patch_topology_state(
        self,
        s: np.ndarray,
        an_dirty: np.ndarray,
        dirty_m: np.ndarray,
        dirty_below: np.ndarray,
        feat_dirty: np.ndarray,
        e_levels: list[np.ndarray],
    ) -> None:
        """Refresh the rows/columns of ``su``/``sz``/``C``/dots flips touched.

        ``s ⊙ U`` is dirty on ``E_1 ∪ dirty(A_n)`` (``E_1`` contains every
        deeper adjoint level via the self-loop neighborhoods), ``s ⊙ Z`` on
        ``D_{l-1} ∪ dirty(A_n)``.  Row- and column-sliced GEMM patches then
        restore ``C`` to exactly what a full rebuild would produce (BLAS
        accumulates each output dot over the inner dimension identically
        regardless of row slicing — the equivalence suite locks this down
        against the dense oracle).
        """
        layers = self.objective.layers
        zs, us = self._zs, self._us
        d = zs[0].shape[1]
        su_dirty, sz_dirty = self._patch_dot_state(
            an_dirty, dirty_m, dirty_below, feat_dirty, e_levels
        )
        if len(su_dirty):
            scale = s[su_dirty][:, None]
            for k in range(1, layers + 1):
                self._su[su_dirty, (k - 1) * d : k * d] = us[k][su_dirty] * scale
            self._c[su_dirty, :] = sparse_matmul_grad_matrix(
                self._su, self._sz, su_dirty
            )
        if len(sz_dirty):
            scale = s[sz_dirty][:, None]
            for k in range(1, layers + 1):
                self._sz[sz_dirty, (k - 1) * d : k * d] = zs[k - 1][sz_dirty] * scale
            self._c[:, sz_dirty] = sparse_matmul_grad_matrix(
                self._sz, self._su, sz_dirty
            ).T

    def _patch_dot_state(
        self,
        an_dirty: np.ndarray,
        dirty_m: np.ndarray,
        dirty_below: np.ndarray,
        feat_dirty: np.ndarray,
        e_levels: list[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Refresh the per-node degree-chain dots the flips touched.

        Split out of :meth:`_patch_topology_state` because the pair path
        maintains *only* the dots (the GEMM factors and ``C`` are full-matrix
        state it never forms).  Returns the ``su``/``sz`` dirty sets for the
        caller that also patches the factor buffers.
        """
        layers = self.objective.layers
        zs, us = self._zs, self._us
        su_dirty = np.union1d(e_levels[1] if layers > 1 else e_levels[layers], an_dirty)
        sz_dirty = np.union1d(dirty_below, an_dirty)
        rd_dirty = np.union1d(su_dirty, dirty_m)
        if len(rd_dirty):
            self._row_dots[rd_dirty] = sum(
                np.einsum("ij,ij->i", us[k][rd_dirty], zs[k][rd_dirty])
                for k in range(1, layers + 1)
            )
        cd_dirty = np.union1d(
            e_levels[0], np.union1d(sz_dirty, feat_dirty)
        )
        if len(cd_dirty):
            self._col_dots[cd_dirty] = sum(
                np.einsum("ij,ij->i", us[k - 1][cd_dirty], zs[k - 1][cd_dirty])
                for k in range(1, layers + 1)
            )
        return su_dirty, sz_dirty

    def pair_gradients(
        self,
        features: np.ndarray,
        pairs_u: np.ndarray,
        pairs_v: np.ndarray,
        need_features: bool = False,
    ) -> PairAttackGradients:
        """Symmetrized topology gradients at explicit candidate pairs.

        The block-coordinate attackers (PRBCD/GRBCD) score only a sampled
        set of pairs per iteration; materializing the full ``(n, n)``
        gradient — or even its GEMM product ``C`` — would defeat the point.
        This path reuses the scorer's incremental forward/adjoint state and
        computes, per pair,

            ``∇_Â[u,v] + ∇_Â[v,u] = (C[u,v] + C[v,u]) + dg[u] + dg[v]``

        without forming ``C``: the two entries are row-wise dots of
        gathered-and-scaled factor rows (:func:`pairwise_gemm_dots`), and
        the degree-chain term ``dg`` comes from the persistent per-node dot
        state, patched under the same dirty rules as the full path.  Term
        order and every elementwise op match the full-matrix assembly; the
        result agrees with the same entry of :meth:`gradients` to ~1e-12
        relative (not bitwise — see :func:`pairwise_gemm_dots` — which is
        why the exhaustive attack modes score via :meth:`gradients`
        instead; ``tests/test_rbcd_equivalence.py`` locks the tolerance
        down).

        Cost per call is O(|pairs| · layers · d) plus the incremental
        refresh — nothing scales with n² — and peak memory is bounded by a
        fixed pair-slab size.
        """
        cache = self.cache
        layers = self.objective.layers
        (first, any_dirt, an_dirty, feat_dirty, dirty_m, dirty_below, e_levels) = (
            self._refresh_state(features)
        )
        value = self._objective_value()

        if first or not self._dots_valid:
            zs, us = self._zs, self._us
            self._row_dots = sum(
                np.einsum("ij,ij->i", us[k], zs[k]) for k in range(1, layers + 1)
            )
            self._col_dots = sum(
                np.einsum("ij,ij->i", us[k - 1], zs[k - 1])
                for k in range(1, layers + 1)
            )
            self._dots_valid = True
        elif any_dirt:
            self._patch_dot_state(an_dirty, dirty_m, dirty_below, feat_dirty, e_levels)
        if any_dirt:
            # The (n, n) product C (if a full-matrix call ever built it) did
            # not see these flips; force a rebuild on the next full call.
            self._c = None

        s = cache.scaling
        zs, us = self._zs, self._us
        grad_scaling = (self._row_dots + self._col_dots) / s
        degree_grad = (
            grad_scaling * (-0.5) * (cache.loop_degrees + NORMALIZE_EPS) ** -1.5
        )

        uu = np.asarray(pairs_u, dtype=np.int64)
        vv = np.asarray(pairs_v, dtype=np.int64)
        count = len(uu)
        d = zs[0].shape[1]
        grad_pairs = np.empty(count, dtype=np.float64)
        # Fixed-size slabs bound peak memory at O(slab · layers · d)
        # regardless of the block size the attacker asked for.
        slab = 16384
        for lo in range(0, count, slab):
            hi = min(lo + slab, count)
            su_u = np.empty((hi - lo, layers * d))
            sz_v = np.empty((hi - lo, layers * d))
            su_v = np.empty((hi - lo, layers * d))
            sz_u = np.empty((hi - lo, layers * d))
            scale_u = s[uu[lo:hi]][:, None]
            scale_v = s[vv[lo:hi]][:, None]
            for k in range(1, layers + 1):
                block = slice((k - 1) * d, k * d)
                # Elementwise scaling of gathered rows — bitwise the same
                # values _scaled_factor_buffers writes into su/sz.
                np.multiply(us[k][uu[lo:hi]], scale_u, out=su_u[:, block])
                np.multiply(zs[k - 1][vv[lo:hi]], scale_v, out=sz_v[:, block])
                np.multiply(us[k][vv[lo:hi]], scale_v, out=su_v[:, block])
                np.multiply(zs[k - 1][uu[lo:hi]], scale_u, out=sz_u[:, block])
            c_uv = pairwise_gemm_dots(su_u, sz_v)
            c_vu = pairwise_gemm_dots(su_v, sz_u)
            # Same association order as the full assembly:
            # (C[u,v] + C[v,u]) + dg[u] + dg[v].
            out = np.add(c_uv, c_vu)
            out += degree_grad[uu[lo:hi]]
            out += degree_grad[vv[lo:hi]]
            grad_pairs[lo:hi] = out

        grad_features = self._us[0] if need_features else None
        return PairAttackGradients(value, grad_pairs, grad_features)

    # ------------------------------------------------------------------
    def _init_loss_state(self) -> None:
        objective = self.objective
        m_hat = self._zs[-1]
        if objective._rows is None:
            values, g_self = _pnorm_rows_and_grad(
                m_hat - objective._m_orig, objective.p
            )
            self._self_grad = g_self
        else:
            values, g_self = _pnorm_rows_and_grad(
                m_hat[objective._rows] - objective._m_orig_rows, objective.p
            )
            self._self_grad = np.zeros_like(m_hat)
            self._self_grad[objective._rows] = g_self
        self._row_values = values
        if objective._scatter is not None:
            src = objective._edge_index[0]
            self._edge_values, self._g_glob = _pnorm_rows_and_grad(
                m_hat[src] - objective._m_orig_dst,
                objective.p,
                prefactor=objective.lam,
            )
            self._node_glob = objective._scatter @ self._g_glob

    def _update_loss_state(self, dirty_m: np.ndarray) -> np.ndarray:
        """Patch the loss state; return the rows where ``∂L/∂M̂`` changed.

        A dirty residual row does not imply a dirty gradient row — for
        ``p = 1`` the gradient is ``sign(residual)``, which survives most
        value changes bit-for-bit.  Comparing before overwriting lets the
        adjoint/GEMM patches downstream fan out from the (much smaller)
        truly-changed set.
        """
        empty = np.empty(0, dtype=np.int64)
        if not len(dirty_m):
            return empty
        objective = self.objective
        m_hat = self._zs[-1]
        changed_self = changed_glob = empty
        if objective._rows is None:
            values, g_self = _pnorm_rows_and_grad(
                m_hat[dirty_m] - objective._m_orig[dirty_m], objective.p
            )
            changed_self = dirty_m[(g_self != self._self_grad[dirty_m]).any(axis=1)]
            self._row_values[dirty_m] = values
            self._self_grad[dirty_m] = g_self
        else:
            positions = np.flatnonzero(np.isin(objective._rows, dirty_m))
            if len(positions):
                selected = objective._rows[positions]
                values, g_self = _pnorm_rows_and_grad(
                    m_hat[selected] - objective._m_orig_rows[positions], objective.p
                )
                changed_self = selected[
                    (g_self != self._self_grad[selected]).any(axis=1)
                ]
                self._row_values[positions] = values
                self._self_grad[selected] = g_self
        if objective._scatter is not None:
            # Edges needing a refresh are exactly those sourced at a dirty
            # node — the rows of the scatter operator list them directly.
            sub_scatter = objective._scatter[dirty_m]
            dirty_edges = sub_scatter.indices
            if len(dirty_edges):
                src = objective._edge_index[0]
                values, g_edges = _pnorm_rows_and_grad(
                    m_hat[src[dirty_edges]] - objective._m_orig_dst[dirty_edges],
                    objective.p,
                    prefactor=objective.lam,
                )
                self._edge_values[dirty_edges] = values
                self._g_glob[dirty_edges] = g_edges
                node_rows = sub_scatter @ self._g_glob
                changed_glob = dirty_m[
                    (node_rows != self._node_glob[dirty_m]).any(axis=1)
                ]
                self._node_glob[dirty_m] = node_rows
        return np.union1d(changed_self, changed_glob)
