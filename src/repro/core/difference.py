"""Representation-difference measurement (paper Sec. III-A, Eqs. 5–8).

PEEGA scores an attack by how far it moves the surrogate node
representations ``M = A_n^l X``:

* **Self view** (Eq. 5): ``Dif1 = Σ_v ||M̂[v] − M[v]||_p`` — a node whose
  representation moves far from its original one tends to be misclassified.
* **Global view** (Eq. 6): ``Dif2 = Σ_v Σ_{u∈N_v} ||M̂[v] − M[u]||_p`` —
  neighbors mostly share labels (homophily, Fig 1), so pushing a node away
  from its *original* neighbors' representations pushes it away from its
  class without needing labels.

The combined objective (Eq. 8) is ``Dif1 + λ·Dif2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from ..graph import Graph
from ..surrogate import linear_propagation
from ..tensor import Tensor, as_tensor
from ..tensor.functional import row_pnorm

__all__ = ["DifferenceObjective", "self_view_difference", "global_view_difference"]


def self_view_difference(
    m_hat: Tensor, m_orig: np.ndarray, p: Union[int, float] = 2
) -> Tensor:
    """Eq. 5: total row-wise Lp distance between perturbed and original reps."""
    return row_pnorm(as_tensor(m_hat) - Tensor(m_orig), p).sum()


def global_view_difference(
    m_hat: Tensor,
    m_orig: np.ndarray,
    edge_index: np.ndarray,
    p: Union[int, float] = 2,
) -> Tensor:
    """Eq. 6: distance between each node's perturbed rep and its original
    neighbors' original reps.

    ``edge_index`` is a ``(2, e)`` array of *directed* pairs ``(v, u)`` with
    ``u ∈ N_v`` taken from the original topology.
    """
    if edge_index.shape[0] != 2:
        raise ConfigError(f"edge_index must be (2, e), got {edge_index.shape}")
    src, dst = edge_index
    diffs = as_tensor(m_hat)[src] - Tensor(m_orig[dst])
    return row_pnorm(diffs, p).sum()


@dataclass
class DifferenceObjective:
    """Callable objective ``L(Â, X̂) = Dif1 + λ·Dif2`` bound to a clean graph.

    Precomputes the original representations ``M`` and the directed neighbor
    pairs once; each call evaluates the objective for candidate ``(Â, X̂)``
    tensors, differentiably.

    Parameters
    ----------
    graph:
        The clean graph ``G(V, A, X)`` (labels unused — black-box setting).
    layers:
        Surrogate depth ``l`` in ``A_n^l X`` (paper default 2; Fig 7b sweeps
        1–4).
    p:
        Norm order of the row distance (Fig 8b sweeps {1, 2, 3}).
    lam:
        Trade-off ``λ`` between self and global views (Fig 8a).
    node_mask:
        Optional boolean mask restricting both sums to a node subset.  The
        paper computes the objective on the training nodes ("Following [24]",
        Sec. V-A3); the mask contains no label information, only *which*
        nodes the attack focuses on.
    """

    graph: Graph
    layers: int = 2
    p: Union[int, float] = 2
    lam: float = 0.01
    node_mask: Union[np.ndarray, None] = None

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ConfigError(f"lambda must be non-negative, got {self.lam}")
        m = linear_propagation(self.graph.adjacency, self.graph.features, self.layers)
        self._m_orig: np.ndarray = np.asarray(m)
        coo = self.graph.adjacency.tocoo()
        edge_index = np.vstack([coo.row, coo.col]).astype(np.int64)
        if self.node_mask is not None:
            mask = np.asarray(self.node_mask, dtype=bool)
            if mask.shape != (self.graph.num_nodes,):
                raise ConfigError(
                    f"node_mask must be ({self.graph.num_nodes},), got {mask.shape}"
                )
            if not mask.any():
                raise ConfigError("node_mask selects no nodes")
            self._rows: Union[np.ndarray, None] = np.flatnonzero(mask)
            edge_index = edge_index[:, mask[edge_index[0]]]
        else:
            self._rows = None
        self._edge_index: np.ndarray = edge_index

    @property
    def original_representations(self) -> np.ndarray:
        """The clean surrogate representations ``M = A_n^l X``."""
        return self._m_orig

    def __call__(
        self,
        adjacency: Union[Tensor, np.ndarray, sp.spmatrix],
        features: Union[Tensor, np.ndarray],
    ) -> Tensor:
        """Evaluate ``Dif1 + λ·Dif2`` for a candidate perturbed graph."""
        m_hat = linear_propagation(adjacency, as_tensor(features), self.layers)
        if self._rows is None:
            loss = self_view_difference(m_hat, self._m_orig, self.p)
        else:
            loss = row_pnorm(
                as_tensor(m_hat)[self._rows] - Tensor(self._m_orig[self._rows]), self.p
            ).sum()
        if self.lam > 0 and self._edge_index.shape[1] > 0:
            loss = loss + self.lam * global_view_difference(
                m_hat, self._m_orig, self._edge_index, self.p
            )
        return loss
