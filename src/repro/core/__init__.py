"""The paper's primary contributions: the PEEGA attacker and GNAT defender."""

from .difference import (
    DifferenceObjective,
    global_view_difference,
    self_view_difference,
)
from .gnat import GNAT, ego_graph, feature_graph, topology_graph
from .peega import PEEGA

__all__ = [
    "PEEGA",
    "GNAT",
    "topology_graph",
    "feature_graph",
    "ego_graph",
    "DifferenceObjective",
    "self_view_difference",
    "global_view_difference",
]
