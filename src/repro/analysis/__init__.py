"""Attack-pattern analysis toolkit (paper Figs 1–3, Sec. IV-A)."""

from ..graph.properties import edge_homophily
from .attack_stats import AttackProfile, attack_profile
from .edge_diff import EdgeDiff, edge_difference
from .label_similarity import (
    cross_label_similarity,
    intra_inter_summary,
    neighborhood_label_histograms,
)

__all__ = [
    "edge_homophily",
    "EdgeDiff",
    "AttackProfile",
    "attack_profile",
    "edge_difference",
    "cross_label_similarity",
    "intra_inter_summary",
    "neighborhood_label_histograms",
]
