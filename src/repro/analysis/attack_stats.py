"""Deeper attack-pattern statistics (extends the paper's Sec. IV-A insight).

Beyond the Add/Del × Same/Diff breakdown of Fig 2, these helpers
characterize *where* an attacker strikes:

* degree profile of attacked endpoints (do attacks target leaves or hubs?);
* pre-attack graph distance between newly connected pairs (are adversarial
  edges long-range shortcuts?);
* feature similarity of newly connected pairs (do attackers wire
  dissimilar nodes, the signal GCN-Jaccard and GNAT's pruning exploit?).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..attacks.base import AttackResult
from ..errors import GraphError

__all__ = ["AttackProfile", "attack_profile"]


@dataclass(frozen=True)
class AttackProfile:
    """Summary statistics of one attack's perturbations."""

    endpoint_degrees: np.ndarray  # degree (in the clean graph) per endpoint
    added_pair_distances: np.ndarray  # shortest-path distance pre-attack (inf = disconnected)
    added_pair_similarity: np.ndarray  # cosine feature similarity of added pairs
    baseline_edge_similarity: np.ndarray  # same measure for original edges

    @property
    def mean_endpoint_degree(self) -> float:
        return float(self.endpoint_degrees.mean()) if len(self.endpoint_degrees) else 0.0

    @property
    def median_added_distance(self) -> float:
        finite = self.added_pair_distances[np.isfinite(self.added_pair_distances)]
        return float(np.median(finite)) if len(finite) else 0.0

    @property
    def similarity_gap(self) -> float:
        """Baseline-edge similarity minus added-edge similarity.

        Positive = the attacker wires *dissimilar* pairs (the Fig 2 pattern
        viewed through features).
        """
        if not len(self.added_pair_similarity) or not len(self.baseline_edge_similarity):
            return 0.0
        return float(
            self.baseline_edge_similarity.mean() - self.added_pair_similarity.mean()
        )

    def summary(self) -> str:
        return (
            f"endpoints: mean degree {self.mean_endpoint_degree:.2f} | "
            f"added pairs: median distance {self.median_added_distance:.1f}, "
            f"similarity gap {self.similarity_gap:+.3f}"
        )


def _cosine(features: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    if len(pairs) == 0:
        return np.zeros(0)
    norms = np.linalg.norm(features, axis=1)
    norms[norms == 0] = 1.0
    unit = features / norms[:, None]
    return np.einsum("ij,ij->i", unit[pairs[:, 0]], unit[pairs[:, 1]])


def attack_profile(result: AttackResult) -> AttackProfile:
    """Compute the :class:`AttackProfile` of an attack run."""
    clean = result.original
    if clean.num_nodes != result.poisoned.num_nodes:
        raise GraphError("original and poisoned graphs differ in node count")

    degrees = clean.degrees()
    endpoints = np.array(
        [node for flip in result.edge_flips for node in (flip.u, flip.v)],
        dtype=np.int64,
    )
    added = np.array(
        [
            (flip.u, flip.v)
            for flip in result.edge_flips
            if not clean.has_edge(flip.u, flip.v)
        ],
        dtype=np.int64,
    ).reshape(-1, 2)

    if len(added):
        sources = np.unique(added[:, 0])
        distance_matrix = sp.csgraph.shortest_path(
            clean.adjacency, method="D", unweighted=True, indices=sources
        )
        row_of = {int(s): i for i, s in enumerate(sources)}
        distances = np.array(
            [distance_matrix[row_of[int(u)], int(v)] for u, v in added]
        )
    else:
        distances = np.zeros(0)

    return AttackProfile(
        endpoint_degrees=degrees[endpoints] if len(endpoints) else np.zeros(0),
        added_pair_distances=distances,
        added_pair_similarity=_cosine(clean.features, added),
        baseline_edge_similarity=_cosine(clean.features, clean.edge_list()),
    )
