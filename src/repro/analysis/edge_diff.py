"""Edge-difference analysis between a clean and a poisoned graph (Fig 2).

Classifies every topology modification into the paper's four types —
Add/Del × Same/Diff label — revealing the attack pattern GNAT exploits:
effective attackers overwhelmingly *add edges between nodes with different
labels*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from ..graph import Graph

__all__ = ["EdgeDiff", "edge_difference"]


@dataclass(frozen=True)
class EdgeDiff:
    """Counts of the four modification types (paper Fig 2)."""

    add_same: int
    add_diff: int
    del_same: int
    del_diff: int

    @property
    def total(self) -> int:
        return self.add_same + self.add_diff + self.del_same + self.del_diff

    @property
    def additions(self) -> int:
        return self.add_same + self.add_diff

    @property
    def deletions(self) -> int:
        return self.del_same + self.del_diff

    def proportions(self) -> dict[str, float]:
        """Fractions of each type among all modifications."""
        if self.total == 0:
            return {"add_same": 0.0, "add_diff": 0.0, "del_same": 0.0, "del_diff": 0.0}
        return {
            "add_same": self.add_same / self.total,
            "add_diff": self.add_diff / self.total,
            "del_same": self.del_same / self.total,
            "del_diff": self.del_diff / self.total,
        }

    def __str__(self) -> str:
        return (
            f"Add+Same={self.add_same} Add+Diff={self.add_diff} "
            f"Del+Same={self.del_same} Del+Diff={self.del_diff}"
        )


def edge_difference(clean: Graph, poisoned: Graph) -> EdgeDiff:
    """Classify the edge modifications between two graphs.

    Both graphs must share the node set; labels are read from ``clean``
    (ground truth — this is an *analysis* tool, not part of any attacker).
    """
    if clean.labels is None:
        raise GraphError("edge_difference requires labels on the clean graph")
    if clean.num_nodes != poisoned.num_nodes:
        raise GraphError(
            f"node counts differ: {clean.num_nodes} vs {poisoned.num_nodes}"
        )
    delta = (poisoned.adjacency - clean.adjacency).tocoo()
    labels = clean.labels
    add_same = add_diff = del_same = del_diff = 0
    for u, v, value in zip(delta.row, delta.col, delta.data):
        if u >= v or abs(value) < 1e-9:
            continue  # count each undirected change once
        same = labels[u] == labels[v]
        if value > 0:
            add_same += int(same)
            add_diff += int(not same)
        else:
            del_same += int(same)
            del_diff += int(not same)
    return EdgeDiff(add_same=add_same, add_diff=add_diff, del_same=del_same, del_diff=del_diff)
