"""Cross-label neighborhood similarity (Fig 3; metric from Ma et al. 2021).

For labels ``y_i, y_j``:

    sim_label(y_i, y_j) = mean over (v, u) ∈ V_{y_i} × V_{y_j} of
                          cosine(c_v, c_u)

where ``c_v`` is node v's normalized 1-hop neighbor-label histogram.  On a
clean homophilous graph the matrix is strongly diagonal (intra-label
similarity high, inter-label low); as attacks add cross-label edges the
off-diagonal entries grow and GCN accuracy drops — the paper's Fig 3.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graph import Graph

__all__ = [
    "neighborhood_label_histograms",
    "cross_label_similarity",
    "intra_inter_summary",
]


def neighborhood_label_histograms(graph: Graph) -> np.ndarray:
    """``(n, |Y|)`` matrix: row v is the normalized label histogram of N_v.

    Isolated nodes get a zero histogram.
    """
    if graph.labels is None:
        raise GraphError("neighborhood histograms require labels")
    n_classes = graph.num_classes
    onehot = np.eye(n_classes)[graph.labels]
    counts = graph.adjacency @ onehot
    degrees = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        histograms = np.where(degrees > 0, counts / degrees, 0.0)
    return histograms


def cross_label_similarity(graph: Graph) -> np.ndarray:
    """``(|Y|, |Y|)`` matrix of mean pairwise cosine similarities.

    Entry ``(i, j)`` averages ``cosine(c_v, c_u)`` over all pairs with
    ``y_v = i`` and ``y_u = j`` (self-pairs excluded on the diagonal).
    """
    if graph.labels is None:
        raise GraphError("cross_label_similarity requires labels")
    histograms = neighborhood_label_histograms(graph)
    norms = np.linalg.norm(histograms, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    unit = histograms / norms
    labels = graph.labels
    n_classes = graph.num_classes
    similarity = unit @ unit.T  # (n, n) pairwise cosine

    result = np.zeros((n_classes, n_classes))
    members = [np.flatnonzero(labels == c) for c in range(n_classes)]
    for i in range(n_classes):
        for j in range(n_classes):
            block = similarity[np.ix_(members[i], members[j])]
            if i == j:
                count = len(members[i])
                if count < 2:
                    result[i, j] = 1.0
                    continue
                total = block.sum() - np.trace(block)
                result[i, j] = total / (count * (count - 1))
            else:
                result[i, j] = block.mean() if block.size else 0.0
    return result


def intra_inter_summary(graph: Graph) -> tuple[float, float]:
    """(mean intra-label similarity, mean inter-label similarity)."""
    matrix = cross_label_similarity(graph)
    n = matrix.shape[0]
    intra = float(np.mean(np.diag(matrix)))
    if n < 2:
        return intra, 0.0
    off = matrix[~np.eye(n, dtype=bool)]
    return intra, float(off.mean())
