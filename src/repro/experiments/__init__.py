"""Experiment harness regenerating every table and figure of the paper."""

from .config import (
    ATTACKER_NAMES,
    DEFENDER_NAMES,
    ExperimentScale,
    defender_names_for,
    make_attacker,
    make_defender,
)
from .parallel import (
    ParallelTrialExecutor,
    SerialTrialExecutor,
    SweepPlan,
    SweepRuntime,
    TrialTask,
    assemble_table,
    make_executor,
)
from .report import evaluate_shape_claims, render_comparison, render_failure_appendix
from .runner import AccuracyTable, CellResult, ExperimentRunner
from .supervisor import (
    SweepCheckpoint,
    TrialFailure,
    TrialKey,
    TrialOutcome,
    TrialPolicy,
    TrialSupervisor,
)
from .tables import format_accuracy_table, format_series, format_timing_table
from .timing import SweepTimings, TrialTiming, attacker_timings, defender_timings

__all__ = [
    "ExperimentScale",
    "ATTACKER_NAMES",
    "DEFENDER_NAMES",
    "make_attacker",
    "make_defender",
    "defender_names_for",
    "ExperimentRunner",
    "AccuracyTable",
    "CellResult",
    "SweepCheckpoint",
    "TrialFailure",
    "TrialKey",
    "TrialOutcome",
    "TrialPolicy",
    "TrialSupervisor",
    "render_comparison",
    "render_failure_appendix",
    "evaluate_shape_claims",
    "format_accuracy_table",
    "format_timing_table",
    "format_series",
    "attacker_timings",
    "defender_timings",
    "SweepPlan",
    "SweepRuntime",
    "TrialTask",
    "SerialTrialExecutor",
    "ParallelTrialExecutor",
    "make_executor",
    "assemble_table",
    "SweepTimings",
    "TrialTiming",
]
