"""Experiment runner: attack → defense grids with poison-graph caching.

Regenerates the accuracy tables (IV–VI) and all accuracy-vs-parameter
figures.  Poisoned graphs are cached per (dataset, attacker, rate, scale) so
a table's eight defender columns reuse one attack run, exactly as the
paper's protocol (generate poison graphs once, evaluate all defenders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..attacks.base import AttackResult, Attacker
from ..datasets import load_dataset
from ..defenses.base import Defender
from ..graph import Graph
from .config import ExperimentScale, defender_names_for, make_attacker, make_defender

__all__ = ["CellResult", "AccuracyTable", "ExperimentRunner"]


@dataclass(frozen=True)
class CellResult:
    """Mean ± std over seeds for one (attacker, defender) cell."""

    mean: float
    std: float
    values: tuple[float, ...]

    @classmethod
    def from_values(cls, values: list[float]) -> "CellResult":
        array = np.asarray(values, dtype=np.float64)
        return cls(mean=float(array.mean()), std=float(array.std()), values=tuple(values))

    def __str__(self) -> str:
        return f"{100 * self.mean:.2f}±{100 * self.std:.2f}"


@dataclass
class AccuracyTable:
    """One of the paper's accuracy grids (rows: attackers, cols: defenders)."""

    dataset: str
    rate: float
    rows: dict[str, dict[str, CellResult]] = field(default_factory=dict)

    def best_defender(self, attacker: str) -> str:
        """Column the paper would bracket: highest accuracy under ``attacker``."""
        row = self.rows[attacker]
        return max(row, key=lambda name: row[name].mean)

    def strongest_attacker(self, defender: str) -> str:
        """Row the paper would bold: lowest accuracy for ``defender``."""
        candidates = {
            attacker: row[defender].mean
            for attacker, row in self.rows.items()
            if attacker != "Clean" and defender in row
        }
        return min(candidates, key=candidates.get)  # type: ignore[arg-type]


class ExperimentRunner:
    """Builds datasets, runs attacks once, and evaluates defender grids."""

    def __init__(self, config: Optional[ExperimentScale] = None, dataset_seed: int = 0) -> None:
        self.config = config or ExperimentScale.from_env()
        self.dataset_seed = int(dataset_seed)
        self._graphs: dict[str, Graph] = {}
        self._poisons: dict[tuple[str, str, float], AttackResult] = {}

    # ------------------------------------------------------------------
    def graph(self, dataset: str) -> Graph:
        """The (cached) clean graph for ``dataset`` at the configured scale."""
        key = dataset.lower()
        if key not in self._graphs:
            self._graphs[key] = load_dataset(
                key, scale=self.config.scale, seed=self.dataset_seed
            )
        return self._graphs[key]

    def attack(
        self,
        dataset: str,
        attacker_name: str,
        rate: Optional[float] = None,
        attacker: Optional[Attacker] = None,
    ) -> AttackResult:
        """Run (or fetch the cached) attack on a dataset."""
        rate = self.config.rate if rate is None else rate
        key = (dataset.lower(), attacker_name, rate)
        if key not in self._poisons:
            attacker = attacker or make_attacker(attacker_name, dataset, seed=0)
            self._poisons[key] = attacker.attack(self.graph(dataset), perturbation_rate=rate)
        return self._poisons[key]

    # ------------------------------------------------------------------
    def evaluate_defender(
        self,
        graph: Graph,
        dataset: str,
        defender_name: str,
        defender_factory: Optional[Callable[[int], Defender]] = None,
    ) -> CellResult:
        """Average a defender's test accuracy over the configured seeds."""
        factory = defender_factory or (
            lambda seed: make_defender(defender_name, dataset, seed=seed)
        )
        values = [
            factory(seed).fit(graph).test_accuracy for seed in range(self.config.seeds)
        ]
        return CellResult.from_values(values)

    def accuracy_table(
        self,
        dataset: str,
        attackers: Optional[list[str]] = None,
        defenders: Optional[list[str]] = None,
        rate: Optional[float] = None,
        include_clean: bool = True,
    ) -> AccuracyTable:
        """Regenerate a Table IV/V/VI-style grid for ``dataset``."""
        from .config import ATTACKER_NAMES

        attackers = attackers if attackers is not None else list(ATTACKER_NAMES)
        defenders = defenders if defenders is not None else defender_names_for(dataset)
        rate = self.config.rate if rate is None else rate
        table = AccuracyTable(dataset=dataset, rate=rate)

        if include_clean:
            clean = self.graph(dataset)
            table.rows["Clean"] = {
                name: self.evaluate_defender(clean, dataset, name) for name in defenders
            }
        for attacker_name in attackers:
            poisoned = self.attack(dataset, attacker_name, rate).poisoned
            table.rows[attacker_name] = {
                name: self.evaluate_defender(poisoned, dataset, name)
                for name in defenders
            }
        return table
