"""Experiment runner: attack → defense grids with poison-graph caching.

Regenerates the accuracy tables (IV–VI) and all accuracy-vs-parameter
figures.  Poisoned graphs are cached per (dataset, attacker, rate,
dataset-seed, scale) so a table's eight defender columns reuse one attack
run, exactly as the paper's protocol (generate poison graphs once, evaluate
all defenders).

Grid sweeps are fault tolerant: every (dataset, attacker, rate, defender,
seed) trial runs under a :class:`~repro.experiments.supervisor.TrialSupervisor`
(bounded retries with per-attempt reseeding, optional wall-clock deadline),
so one diverging trainer yields a structured
:class:`~repro.experiments.supervisor.TrialFailure` and an ``n/a`` cell
instead of a crashed sweep.  With a
:class:`~repro.experiments.supervisor.SweepCheckpoint` attached, completed
cells and poison graphs are journalled after every cell and an interrupted
sweep resumes bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..attacks.base import AttackResult, Attacker
from ..datasets import load_dataset
from ..defenses.base import Defender
from ..graph import Graph
from ..utils import cancellation, faults
from ..utils.keystore import KeyedArtifactStore
from ..utils.snapshots import TrialSnapshotter
from ..utils.resources import budget_check
from .config import ExperimentScale, defender_names_for, make_attacker, make_defender
from .supervisor import (
    RESEED_STRIDE,
    SweepCheckpoint,
    TrialFailure,
    TrialKey,
    TrialSupervisor,
)

__all__ = ["CellResult", "AccuracyTable", "ExperimentRunner"]

_RESEED_STRIDE = RESEED_STRIDE  # backward-compatible alias

CLEAN_ROW = "Clean"


@dataclass(frozen=True)
class CellResult:
    """Mean ± std over seeds for one (attacker, defender) cell."""

    mean: float
    std: float
    values: tuple[float, ...]

    @classmethod
    def from_values(cls, values: list[float]) -> "CellResult":
        array = np.asarray(values, dtype=np.float64)
        return cls(mean=float(array.mean()), std=float(array.std()), values=tuple(values))

    def __str__(self) -> str:
        return f"{100 * self.mean:.2f}±{100 * self.std:.2f}"


@dataclass
class AccuracyTable:
    """One of the paper's accuracy grids (rows: attackers, cols: defenders).

    Cells are ``None`` when their trial failed or was quarantined; the
    corresponding :class:`TrialFailure` records live in :attr:`failures`.
    """

    dataset: str
    rate: float
    rows: dict[str, dict[str, Optional[CellResult]]] = field(default_factory=dict)
    failures: list[TrialFailure] = field(default_factory=list)

    @property
    def num_failed_cells(self) -> int:
        return sum(1 for row in self.rows.values() for cell in row.values() if cell is None)

    def best_defender(self, attacker: str) -> Optional[str]:
        """Column the paper would bracket: highest accuracy under ``attacker``.

        ``None`` when every cell of the row is missing.
        """
        row = {name: cell for name, cell in self.rows[attacker].items() if cell is not None}
        if not row:
            return None
        return max(row, key=lambda name: row[name].mean)

    def strongest_attacker(self, defender: str) -> Optional[str]:
        """Row the paper would bold: lowest accuracy for ``defender``.

        ``None`` when no attacked row has a value for ``defender``.
        """
        candidates = {
            attacker: row[defender].mean
            for attacker, row in self.rows.items()
            if attacker != CLEAN_ROW and row.get(defender) is not None
        }
        if not candidates:
            return None
        return min(candidates, key=candidates.get)  # type: ignore[arg-type]


class ExperimentRunner:
    """Builds datasets, runs attacks once, and evaluates defender grids."""

    def __init__(
        self,
        config: Optional[ExperimentScale] = None,
        dataset_seed: int = 0,
        supervisor: Optional[TrialSupervisor] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        executor=None,
        validate: str = "strict",
    ) -> None:
        self.config = config or ExperimentScale.from_env()
        self.dataset_seed = int(dataset_seed)
        self.supervisor = supervisor
        self.checkpoint = checkpoint
        # Trial executor for grid sweeps (see repro.experiments.parallel):
        # None means a fresh SerialTrialExecutor per sweep (--jobs 1).
        self.executor = executor
        # Graph contract validation policy, threaded through dataset loads,
        # attack entry points, and defender fits (see repro.graph.validate).
        self.validate = validate
        self._graphs: dict[str, Graph] = {}
        # Poison cache: byte-accounted and evictable under the process
        # --cache-bytes budget, but an entry stays *pinned* until a
        # checkpoint archive holds a copy — eviction must never lose the
        # only copy of a poison (checkpoint.load_poison is the reload path).
        self._poisons = KeyedArtifactStore(f"poisons@{hex(id(self))}")

    # ------------------------------------------------------------------
    def graph(self, dataset: str) -> Graph:
        """The (cached) clean graph for ``dataset`` at the configured scale."""
        key = dataset.lower()
        if key not in self._graphs:
            self._graphs[key] = load_dataset(
                key,
                scale=self.config.scale,
                seed=self.dataset_seed,
                validate=self.validate,
            )
        return self._graphs[key]

    def _poison_key(
        self, dataset: str, attacker_name: str, rate: float
    ) -> tuple[str, str, float, int, float]:
        # dataset_seed and scale are part of the key: mutating runner config
        # mid-process must never serve a poison generated for another graph
        # instance.
        return (dataset.lower(), attacker_name, rate, self.dataset_seed, self.config.scale)

    def attack(
        self,
        dataset: str,
        attacker_name: str,
        rate: Optional[float] = None,
        attacker: Optional[Attacker] = None,
        attempt: int = 0,
    ) -> AttackResult:
        """Run (or fetch the cached) attack on a dataset.

        ``attempt`` reseeds the attacker on supervised retries (attempt 0
        keeps the historical seed-0 behaviour).
        """
        rate = self.config.rate if rate is None else rate
        key = self._poison_key(dataset, attacker_name, rate)
        result = self._poisons.get(key)
        if result is None:
            if self.checkpoint is not None:
                cached = self.checkpoint.load_poison(
                    dataset.lower(), attacker_name, rate, self.dataset_seed, self.config.scale
                )
                if cached is not None:
                    # The archive backs this entry, so it may be evicted and
                    # transparently reloaded here on the next lookup.
                    self._poisons.put(key, cached)
                    return cached
            budget_check(f"attack {attacker_name} on {dataset}")
            faults.perturb(
                "attacker",
                dataset=dataset.lower(),
                attacker=attacker_name,
                rate=rate,
                attempt=attempt,
            )
            attacker = attacker or make_attacker(
                attacker_name, dataset, seed=attempt * _RESEED_STRIDE
            )
            result = attacker.attack(
                self.graph(dataset), perturbation_rate=rate, validate=self.validate
            )
            self._poisons.put(key, result, pinned=True)
            if self.checkpoint is not None:
                self.checkpoint.save_poison(
                    dataset.lower(),
                    attacker_name,
                    rate,
                    self.dataset_seed,
                    self.config.scale,
                    result,
                )
                self._poisons.unpin(key)
        return result

    # ------------------------------------------------------------------
    def evaluate_defender(
        self,
        graph: Graph,
        dataset: str,
        defender_name: str,
        defender_factory: Optional[Callable[[int], Defender]] = None,
    ) -> CellResult:
        """Average a defender's test accuracy over the configured seeds."""
        factory = defender_factory or (
            lambda seed: make_defender(defender_name, dataset, seed=seed)
        )
        values = [
            factory(seed).fit(graph, validate=self.validate).test_accuracy
            for seed in range(self.config.seeds)
        ]
        return CellResult.from_values(values)

    # -- supervised sweep ----------------------------------------------
    def _defense_trial(
        self,
        key: TrialKey,
        graph: Graph,
        dataset: str,
    ) -> Callable[[int], float]:
        """A supervised trial callable: fit one defender seed on ``graph``."""

        def run(attempt: int) -> float:
            faults.perturb(
                "defender",
                dataset=dataset.lower(),
                attacker=key.attacker,
                defender=key.defender,
                seed=key.seed,
                attempt=attempt,
            )
            seed = key.seed + attempt * _RESEED_STRIDE
            return (
                make_defender(key.defender, dataset, seed=seed)
                .fit(graph, validate=self.validate)
                .test_accuracy
            )

        return run

    def _sweep_runtime(self, dataset: str, rate: float, supervisor: TrialSupervisor):
        """The :class:`~repro.experiments.parallel.SweepRuntime` adapter
        executors use to reach this runner's caches and checkpoint."""
        from .parallel import SweepRuntime

        def trial_sink(key: TrialKey):
            # One snapshot archive per trial key, living next to the journal:
            # interrupted trials resume mid-flight on the next attempt (or
            # the next --resume invocation) instead of restarting.
            if self.checkpoint is None:
                return None
            return TrialSnapshotter(self.checkpoint.snapshot_path(key))

        def run_attack(key: TrialKey):
            with cancellation.trial_scope(sink=trial_sink(key)):
                return supervisor.run(
                    key,
                    lambda attempt: self.attack(
                        dataset, key.attacker, rate, attempt=attempt
                    ),
                )

        def run_defense(key: TrialKey, graph: Graph):
            with cancellation.trial_scope(sink=trial_sink(key)):
                return supervisor.run(key, self._defense_trial(key, graph, dataset))

        def poison_lookup(attacker_name: str) -> Optional[AttackResult]:
            key = self._poison_key(dataset, attacker_name, rate)
            result = self._poisons.get(key)
            if result is None and self.checkpoint is not None:
                result = self.checkpoint.load_poison(
                    dataset.lower(), attacker_name, rate, self.dataset_seed, self.config.scale
                )
                if result is not None:
                    self._poisons.put(key, result)
            return result

        def poison_path(attacker_name: str) -> Optional[str]:
            if self.checkpoint is None:
                return None
            path = self.checkpoint.poison_path(
                dataset.lower(), attacker_name, rate, self.dataset_seed, self.config.scale
            )
            return str(path) if path.exists() else None

        def store_poison(attacker_name: str, result: AttackResult):
            key = self._poison_key(dataset, attacker_name, rate)
            self._poisons.put(key, result, pinned=True)
            if self.checkpoint is not None:
                digest = self.checkpoint.save_poison(
                    dataset.lower(),
                    attacker_name,
                    rate,
                    self.dataset_seed,
                    self.config.scale,
                    result,
                )
                self._poisons.unpin(key)
                return digest
            return None

        def record_cell(attacker_name: str, defender_name: str, values: list[float]):
            if self.checkpoint is not None:
                self.checkpoint.record_cell(
                    dataset.lower(), attacker_name, rate, defender_name, values
                )

        def snapshot_path(key: TrialKey) -> Optional[str]:
            if self.checkpoint is None:
                return None
            return str(self.checkpoint.snapshot_path(key))

        return SweepRuntime(
            dataset=dataset,
            rate=rate,
            scale=self.config.scale,
            dataset_seed=self.dataset_seed,
            policy=supervisor.policy,
            validate=self.validate,
            clean_graph=lambda: self.graph(dataset),
            run_attack=run_attack,
            run_defense=run_defense,
            poison_lookup=poison_lookup,
            poison_path=poison_path,
            store_poison=store_poison,
            record_cell=record_cell,
            snapshot_path=snapshot_path,
        )

    def accuracy_table(
        self,
        dataset: str,
        attackers: Optional[list[str]] = None,
        defenders: Optional[list[str]] = None,
        rate: Optional[float] = None,
        include_clean: bool = True,
    ) -> AccuracyTable:
        """Regenerate a Table IV/V/VI-style grid for ``dataset``.

        The sweep is planned as a dependency DAG and handed to the runner's
        trial executor (serial by default; a
        :class:`~repro.experiments.parallel.ParallelTrialExecutor` fans
        trials out to worker processes with bit-identical results — see
        ``docs/parallel_sweeps.md``).  Every trial runs under the
        :class:`TrialSupervisor` retry/deadline/quarantine policy; failed
        cells come back as ``None`` with their :class:`TrialFailure`
        records on ``table.failures`` and journalled to the checkpoint.
        Interrupts (``KeyboardInterrupt`` or an injected kill) propagate —
        with a checkpoint attached, a rerun with ``resume=True`` picks up
        after the last completed cell.
        """
        from .config import ATTACKER_NAMES
        from .parallel import SerialTrialExecutor, SweepPlan, assemble_table

        attackers = attackers if attackers is not None else list(ATTACKER_NAMES)
        defenders = defenders if defenders is not None else defender_names_for(dataset)
        rate = self.config.rate if rate is None else rate
        supervisor = self.supervisor or TrialSupervisor()

        rows: list[str] = ([CLEAN_ROW] if include_clean else []) + list(attackers)
        cached: dict[tuple[str, str], list[float]] = {}
        if self.checkpoint is not None:
            for row in rows:
                for name in defenders:
                    values = self.checkpoint.cell_values(dataset.lower(), row, rate, name)
                    if values is not None:
                        cached[(row, name)] = values

        plan = SweepPlan.build(
            dataset=dataset,
            rows=rows,
            defenders=list(defenders),
            rate=rate,
            seeds=self.config.seeds,
            completed=set(cached),
        )
        executor = self.executor or SerialTrialExecutor()
        outcomes = executor.run(plan, self._sweep_runtime(dataset, rate, supervisor))
        table = assemble_table(plan, outcomes, cached)
        # Failures are journalled at merge time, in canonical order, in both
        # execution modes; a kill loses at most failure records (cells are
        # journalled the moment they complete), and the lost trials simply
        # rerun on --resume.
        if self.checkpoint is not None:
            for failure in table.failures:
                self.checkpoint.record_failure(failure)
        return table
