"""Efficiency experiments: attacker runtimes (Table VII) and defender
training times (Table VIII)."""

from __future__ import annotations

from typing import Optional, Sequence

from .config import (
    ATTACKER_NAMES,
    ExperimentScale,
    defender_names_for,
    make_attacker,
    make_defender,
)
from .runner import CellResult, ExperimentRunner

__all__ = ["attacker_timings", "defender_timings"]


def attacker_timings(
    datasets: Sequence[str],
    attackers: Optional[Sequence[str]] = None,
    config: Optional[ExperimentScale] = None,
    repeats: int = 2,
) -> dict[str, dict[str, CellResult]]:
    """Wall-clock seconds to generate a poison graph (Table VII).

    Rows: attackers; columns: datasets.  Each cell averages ``repeats`` runs
    with distinct attacker seeds at the configured perturbation rate.
    """
    config = config or ExperimentScale.from_env()
    attackers = list(attackers or ATTACKER_NAMES)
    runner = ExperimentRunner(config)
    result: dict[str, dict[str, CellResult]] = {name: {} for name in attackers}
    for dataset in datasets:
        graph = runner.graph(dataset)
        for name in attackers:
            times = []
            for seed in range(repeats):
                attacker = make_attacker(name, dataset, seed=seed)
                attack_result = attacker.attack(graph, perturbation_rate=config.rate)
                times.append(attack_result.runtime_seconds)
            result[name][dataset] = CellResult.from_values(times)
    return result


def defender_timings(
    datasets: Sequence[str],
    defenders: Optional[Sequence[str]] = None,
    config: Optional[ExperimentScale] = None,
    repeats: int = 2,
) -> dict[str, dict[str, CellResult]]:
    """Wall-clock seconds to train each defender on the clean graphs
    (Table VIII; the paper reports clean-graph times as representative)."""
    config = config or ExperimentScale.from_env()
    runner = ExperimentRunner(config)
    all_defenders = defenders
    result: dict[str, dict[str, CellResult]] = {}
    for dataset in datasets:
        names = list(all_defenders or defender_names_for(dataset))
        graph = runner.graph(dataset)
        for name in names:
            times = []
            for seed in range(repeats):
                defense = make_defender(name, dataset, seed=seed).fit(graph)
                times.append(defense.runtime_seconds)
            result.setdefault(name, {})[dataset] = CellResult.from_values(times)
    return result
