"""Efficiency experiments and sweep instrumentation.

Covers the paper's runtime tables — attacker runtimes (Table VII) and
defender training times (Table VIII) — plus :class:`SweepTimings`, the
per-trial instrumentation the parallel scheduler fills in so a claimed
speedup is observable (per-trial wall time, queue latency, worker
utilization), not asserted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .config import (
    ATTACKER_NAMES,
    ExperimentScale,
    defender_names_for,
    make_attacker,
    make_defender,
)
from .runner import CellResult, ExperimentRunner

__all__ = ["attacker_timings", "defender_timings", "TrialTiming", "SweepTimings"]


@dataclass(frozen=True)
class TrialTiming:
    """Instrumentation for one executed trial.

    ``queue_seconds`` is the latency between the scheduler submitting the
    trial and a worker starting it (0 for in-process execution);
    ``wall_seconds`` is the trial's own execution time inside the worker.
    """

    label: str
    kind: str
    wall_seconds: float
    queue_seconds: float = 0.0


@dataclass
class SweepTimings:
    """Wall-clock accounting for one sweep execution.

    Populated by the trial executors (see :mod:`repro.experiments.parallel`)
    and exposed on ``executor.timings`` after a run.  ``utilization`` is the
    fraction of the ``jobs × makespan`` worker-second budget actually spent
    executing trials — the honest denominator for "did parallelism help".
    """

    jobs: int = 1
    trials: list[TrialTiming] = field(default_factory=list)
    _started: Optional[float] = field(default=None, repr=False)
    makespan_seconds: float = 0.0

    def start(self) -> None:
        self._started = time.monotonic()

    def finish(self) -> None:
        if self._started is not None:
            self.makespan_seconds = time.monotonic() - self._started

    def record(
        self, label: str, kind: str, wall_seconds: float, queue_seconds: float = 0.0
    ) -> None:
        self.trials.append(
            TrialTiming(
                label=label,
                kind=kind,
                wall_seconds=float(wall_seconds),
                queue_seconds=max(0.0, float(queue_seconds)),
            )
        )

    @property
    def busy_seconds(self) -> float:
        """Total worker-seconds spent executing trials."""
        return sum(t.wall_seconds for t in self.trials)

    @property
    def mean_queue_seconds(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.queue_seconds for t in self.trials) / len(self.trials)

    @property
    def utilization(self) -> float:
        """``busy / (jobs × makespan)`` — 1.0 means no worker ever idled."""
        budget = self.jobs * self.makespan_seconds
        if budget <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / budget)

    def summary(self) -> str:
        """One-line human summary (the CLI prints this for ``--jobs > 1``)."""
        return (
            f"{len(self.trials)} trials in {self.makespan_seconds:.2f}s "
            f"({self.jobs} jobs): busy {self.busy_seconds:.2f}s, "
            f"utilization {100 * self.utilization:.0f}%, "
            f"mean queue {self.mean_queue_seconds * 1000:.0f}ms"
        )


def attacker_timings(
    datasets: Sequence[str],
    attackers: Optional[Sequence[str]] = None,
    config: Optional[ExperimentScale] = None,
    repeats: int = 2,
) -> dict[str, dict[str, CellResult]]:
    """Wall-clock seconds to generate a poison graph (Table VII).

    Rows: attackers; columns: datasets.  Each cell averages ``repeats`` runs
    with distinct attacker seeds at the configured perturbation rate.
    """
    config = config or ExperimentScale.from_env()
    attackers = list(attackers or ATTACKER_NAMES)
    runner = ExperimentRunner(config)
    result: dict[str, dict[str, CellResult]] = {name: {} for name in attackers}
    for dataset in datasets:
        graph = runner.graph(dataset)
        for name in attackers:
            times = []
            for seed in range(repeats):
                attacker = make_attacker(name, dataset, seed=seed)
                attack_result = attacker.attack(graph, perturbation_rate=config.rate)
                times.append(attack_result.runtime_seconds)
            result[name][dataset] = CellResult.from_values(times)
    return result


def defender_timings(
    datasets: Sequence[str],
    defenders: Optional[Sequence[str]] = None,
    config: Optional[ExperimentScale] = None,
    repeats: int = 2,
) -> dict[str, dict[str, CellResult]]:
    """Wall-clock seconds to train each defender on the clean graphs
    (Table VIII; the paper reports clean-graph times as representative)."""
    config = config or ExperimentScale.from_env()
    runner = ExperimentRunner(config)
    all_defenders = defenders
    result: dict[str, dict[str, CellResult]] = {}
    for dataset in datasets:
        names = list(all_defenders or defender_names_for(dataset))
        graph = runner.graph(dataset)
        for name in names:
            times = []
            for seed in range(repeats):
                defense = make_defender(name, dataset, seed=seed).fit(graph)
                times.append(defense.runtime_seconds)
            result.setdefault(name, {})[dataset] = CellResult.from_values(times)
    return result
