"""Experiment configuration: scale knobs and per-dataset method presets.

The paper tunes every method's hyper-parameters per dataset (Sec. V-A3).
This module centralizes those choices so each bench regenerates its
table/figure with one call.  The synthetic stand-in graphs are smaller than
the originals, so a few count-like parameters (kNN k, SVD rank) scale with
graph size; every such adaptation is noted inline.

Environment knobs (read once per call, so they can be set per bench run):

* ``REPRO_SCALE``  — dataset size factor (default 0.15 ≈ 370-node Cora);
* ``REPRO_SEEDS``  — model-training seeds averaged per cell (default 3;
  the paper averages 10 runs);
* ``REPRO_RATE``   — perturbation rate for the headline tables (default 0.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..attacks import GFAttack, GRBCD, Metattack, MinMaxAttack, PGDAttack, PRBCD
from ..attacks.base import Attacker
from ..core import GNAT, PEEGA
from ..defenses import (
    GCNJaccard,
    GCNSVD,
    ProGNN,
    RGCN,
    RawGAT,
    RawGCN,
    SimPGCN,
)
from ..defenses.base import Defender
from ..errors import ConfigError
from ..utils.rng import SeedLike

__all__ = [
    "ExperimentScale",
    "ATTACKER_NAMES",
    "DEFENDER_NAMES",
    "make_attacker",
    "make_defender",
    "defender_names_for",
]

ATTACKER_NAMES = ["PGD", "MinMax", "Metattack", "GF-Attack", "PEEGA", "PRBCD", "GRBCD"]
DEFENDER_NAMES = [
    "GCN",
    "GAT",
    "GCN-Jaccard",
    "GCN-SVD",
    "RGCN",
    "Pro-GNN",
    "SimPGCN",
    "GNAT",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Size/replication knobs shared by every bench."""

    scale: float = 0.15
    seeds: int = 3
    rate: float = 0.1

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Read ``REPRO_SCALE`` / ``REPRO_SEEDS`` / ``REPRO_RATE``."""
        return cls(
            scale=float(os.environ.get("REPRO_SCALE", 0.15)),
            seeds=int(os.environ.get("REPRO_SEEDS", 3)),
            rate=float(os.environ.get("REPRO_RATE", 0.1)),
        )


def make_attacker(name: str, dataset: str, seed: SeedLike = 0) -> Attacker:
    """Instantiate an attacker with its per-dataset tuned configuration."""
    dataset = dataset.lower()
    if name == "PEEGA":
        # Sec. V-A3 tunes λ and p per dataset.  On the synthetic stand-ins
        # p=1 wins everywhere, the citation graphs prefer the global
        # (all-node) objective, and Polblogs the training-node-focused one.
        # Feature perturbations on Polblogs' identity features are either
        # degenerate (deleting the only bit) or inert (adding fake ids), so
        # its tuned configuration is topology-only — consistent with the
        # paper's observation that TM dominates FP (Fig 5a).
        if dataset == "polblogs":
            return PEEGA(
                lam=0.01, p=1, attack_features=False, focus_training_nodes=True, seed=seed
            )
        if dataset == "citeseer":
            return PEEGA(lam=0.05, p=1, focus_training_nodes=False, seed=seed)
        return PEEGA(lam=0.02, p=1, focus_training_nodes=False, seed=seed)
    if name in ("PRBCD", "GRBCD"):
        return _make_rbcd(name, dataset, seed)
    if name == "Metattack":
        return Metattack(seed=seed)
    if name == "PGD":
        return PGDAttack(seed=seed)
    if name == "MinMax":
        return MinMaxAttack(seed=seed)
    if name == "GF-Attack":
        return GFAttack(seed=seed)
    raise ConfigError(f"unknown attacker {name!r}; choose from {ATTACKER_NAMES}")


def _make_rbcd(name: str, dataset: str, seed: SeedLike) -> Attacker:
    """Sampled-block attackers: PEEGA's objective knobs at the small scale,
    block/epoch knobs from the environment at the ``sbm-*`` scale tiers.

    Environment knobs (scale tiers only, read per call like the others):

    * ``REPRO_BLOCK_SIZE``  — candidate pairs sampled per block (default 200k);
    * ``REPRO_RBCD_EPOCHS`` — PRBCD ascent epochs (default 25);
    * ``REPRO_RBCD_FLIPS``  — GRBCD flips committed per block (default 64).
    """
    if dataset.startswith("sbm-"):
        block = int(os.environ.get("REPRO_BLOCK_SIZE", 200_000))
        # λ = 0: the global view keeps O(E·d) per-edge state — the one
        # buffer not worth carrying at the 100k/1M tiers.  p = 2 keeps the
        # relaxed PRBCD mass well-ordered (p = 1 scores are tie-dense).
        if name == "PRBCD":
            epochs = int(os.environ.get("REPRO_RBCD_EPOCHS", 25))
            return PRBCD(lam=0.0, p=2, block_size=block, epochs=epochs, seed=seed)
        flips = int(os.environ.get("REPRO_RBCD_FLIPS", 64))
        return GRBCD(lam=0.0, p=2, block_size=block, flips_per_step=flips, seed=seed)
    # Small datasets: mirror PEEGA's tuned λ/focus (topology-only, so the
    # Polblogs feature caveat does not apply).  GRBCD keeps PEEGA's greedy
    # p = 1; PRBCD's projection needs the tie-free p = 2 scores.
    if dataset == "polblogs":
        lam, focus = 0.01, True
    elif dataset == "citeseer":
        lam, focus = 0.05, False
    else:
        lam, focus = 0.02, False
    if name == "PRBCD":
        return PRBCD(lam=lam, p=2, focus_training_nodes=focus, seed=seed)
    return GRBCD(lam=lam, p=1, focus_training_nodes=focus, seed=seed)


def make_defender(name: str, dataset: str, seed: SeedLike = 0) -> Defender:
    """Instantiate a defender with its per-dataset tuned configuration."""
    dataset = dataset.lower()
    identity_features = dataset == "polblogs"
    if name == "GCN":
        return RawGCN(seed=seed)
    if name == "GAT":
        return RawGAT(seed=seed)
    if name == "GCN-Jaccard":
        if identity_features:
            raise ConfigError(
                "GCN-Jaccard is not applicable to Polblogs (identity features)"
            )
        # Threshold from the paper's grid; 0.01 trims the least legitimate
        # structure on the synthetic graphs while still removing most
        # adversarial (dissimilar-pair) additions.
        return GCNJaccard(threshold=0.01, seed=seed)
    if name == "GCN-SVD":
        return GCNSVD(rank=5 if identity_features else 15, seed=seed)
    if name == "RGCN":
        return RGCN(seed=seed)
    if name == "Pro-GNN":
        return ProGNN(seed=seed)
    if name == "SimPGCN":
        return SimPGCN(knn_k=5 if identity_features else 20, seed=seed)
    if name == "GNAT":
        if identity_features:
            # Feature view unavailable on Polblogs (Table VI footnote).
            return GNAT(views="te", seed=seed)
        return GNAT(views="tfe", seed=seed)
    raise ConfigError(f"unknown defender {name!r}; choose from {DEFENDER_NAMES}")


def defender_names_for(dataset: str) -> list[str]:
    """Defender columns for a dataset (drops Jaccard on Polblogs)."""
    if dataset.lower() == "polblogs":
        return [n for n in DEFENDER_NAMES if n != "GCN-Jaccard"]
    return list(DEFENDER_NAMES)
