"""The paper's reported numbers, as data.

Machine-readable transcription of the ICDE 2022 evaluation — Tables III–IX
and the headline figure claims — so reproduction quality can be checked
programmatically (see ``shape_claims``) and ``EXPERIMENTS.md`` can be
cross-referenced against a single source of truth.

All accuracies are percentages as printed in the paper; timings are seconds
on the authors' testbed (20-core Xeon + RTX 2080 Ti) and are only meaningful
as *ratios* here.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "TABLE3_DATASETS",
    "TABLE4_CORA",
    "TABLE5_CITESEER",
    "TABLE6_POLBLOGS",
    "TABLE7_ATTACK_SECONDS",
    "TABLE8_DEFENSE_SECONDS",
    "TABLE9_GNAT_ABLATION_CORA",
    "paper_accuracy_table",
    "shape_claims",
]

# Table III — dataset statistics.
TABLE3_DATASETS: dict[str, dict[str, int]] = {
    "cora": {"nodes": 2485, "edges": 5069, "classes": 7, "features": 1433},
    "citeseer": {"nodes": 2110, "edges": 3668, "classes": 6, "features": 3703},
    "polblogs": {"nodes": 1222, "edges": 16714, "classes": 2, "features": 1222},
}

# Tables IV–VI — accuracy (%) under perturbation rate 0.1.
# rows: attacker (Clean = unattacked); columns: defender.
TABLE4_CORA: dict[str, dict[str, float]] = {
    "Clean": {"GCN": 83.36, "GAT": 84.01, "GCN-Jaccard": 82.33, "GCN-SVD": 78.33,
              "RGCN": 83.74, "Pro-GNN": 83.26, "SimPGCN": 83.39, "GNAT": 85.52},
    "PGD": {"GCN": 80.96, "GAT": 84.41, "GCN-Jaccard": 80.52, "GCN-SVD": 77.52,
            "RGCN": 78.18, "Pro-GNN": 82.39, "SimPGCN": 81.45, "GNAT": 84.77},
    "MinMax": {"GCN": 78.89, "GAT": 80.69, "GCN-Jaccard": 78.84, "GCN-SVD": 77.41,
               "RGCN": 78.21, "Pro-GNN": 82.57, "SimPGCN": 77.19, "GNAT": 83.89},
    "Metattack": {"GCN": 72.83, "GAT": 75.56, "GCN-Jaccard": 75.99, "GCN-SVD": 73.69,
                  "RGCN": 72.47, "Pro-GNN": 80.26, "SimPGCN": 75.18, "GNAT": 81.44},
    "GF-Attack": {"GCN": 83.72, "GAT": 83.88, "GCN-Jaccard": 82.28, "GCN-SVD": 78.21,
                  "RGCN": 83.53, "Pro-GNN": 82.22, "SimPGCN": 82.42, "GNAT": 85.41},
    "PEEGA": {"GCN": 75.31, "GAT": 77.79, "GCN-Jaccard": 76.06, "GCN-SVD": 77.02,
              "RGCN": 75.64, "Pro-GNN": 81.99, "SimPGCN": 76.51, "GNAT": 83.12},
}

TABLE5_CITESEER: dict[str, dict[str, float]] = {
    "Clean": {"GCN": 72.03, "GAT": 73.75, "GCN-Jaccard": 72.46, "GCN-SVD": 70.01,
              "RGCN": 72.13, "Pro-GNN": 73.26, "SimPGCN": 73.12, "GNAT": 76.39},
    "PGD": {"GCN": 70.89, "GAT": 72.65, "GCN-Jaccard": 71.17, "GCN-SVD": 68.18,
            "RGCN": 70.15, "Pro-GNN": 72.35, "SimPGCN": 73.32, "GNAT": 76.36},
    "MinMax": {"GCN": 70.46, "GAT": 72.14, "GCN-Jaccard": 70.53, "GCN-SVD": 68.24,
               "RGCN": 67.51, "Pro-GNN": 71.53, "SimPGCN": 72.51, "GNAT": 75.54},
    "Metattack": {"GCN": 67.33, "GAT": 70.70, "GCN-Jaccard": 69.23, "GCN-SVD": 68.99,
                  "RGCN": 67.86, "Pro-GNN": 72.63, "SimPGCN": 72.77, "GNAT": 75.57},
    "GF-Attack": {"GCN": 71.95, "GAT": 72.93, "GCN-Jaccard": 72.19, "GCN-SVD": 70.21,
                  "RGCN": 71.75, "Pro-GNN": 73.03, "SimPGCN": 73.44, "GNAT": 76.21},
    "PEEGA": {"GCN": 66.20, "GAT": 69.37, "GCN-Jaccard": 67.17, "GCN-SVD": 67.46,
              "RGCN": 67.12, "Pro-GNN": 71.14, "SimPGCN": 72.21, "GNAT": 75.27},
}

TABLE6_POLBLOGS: dict[str, dict[str, float]] = {
    "Clean": {"GCN": 95.79, "GAT": 95.22, "GCN-SVD": 94.84, "RGCN": 95.34,
              "Pro-GNN": 95.33, "SimPGCN": 95.56, "GNAT": 95.70},
    "PGD": {"GCN": 85.78, "GAT": 92.09, "GCN-SVD": 89.12, "RGCN": 81.52,
            "Pro-GNN": 87.08, "SimPGCN": 84.04, "GNAT": 89.43},
    "MinMax": {"GCN": 77.38, "GAT": 87.02, "GCN-SVD": 87.58, "RGCN": 81.16,
               "Pro-GNN": 87.68, "SimPGCN": 72.06, "GNAT": 88.62},
    "Metattack": {"GCN": 80.32, "GAT": 88.44, "GCN-SVD": 89.98, "RGCN": 80.43,
                  "Pro-GNN": 93.46, "SimPGCN": 77.24, "GNAT": 93.31},
    "GF-Attack": {"GCN": 94.94, "GAT": 96.19, "GCN-SVD": 94.32, "RGCN": 95.37,
                  "Pro-GNN": 95.42, "SimPGCN": 94.87, "GNAT": 95.62},
    "PEEGA": {"GCN": 72.57, "GAT": 81.15, "GCN-SVD": 80.23, "RGCN": 74.18,
              "Pro-GNN": 75.26, "SimPGCN": 71.51, "GNAT": 82.61},
}

# Table VII — attack generation seconds at rate 0.1.
TABLE7_ATTACK_SECONDS: dict[str, dict[str, float]] = {
    "PGD": {"cora": 28.87, "citeseer": 26.18, "polblogs": 8.13},
    "MinMax": {"cora": 50.52, "citeseer": 47.34, "polblogs": 12.74},
    "Metattack": {"cora": 439.09, "citeseer": 378.42, "polblogs": 630.61},
    "GF-Attack": {"cora": 890.77, "citeseer": 1245.53, "polblogs": 252.97},
    "PEEGA": {"cora": 18.76, "citeseer": 15.42, "polblogs": 18.17},
}

# Table VIII — defender training seconds on the clean graphs.
TABLE8_DEFENSE_SECONDS: dict[str, dict[str, float]] = {
    "GCN": {"cora": 0.56, "citeseer": 0.49, "polblogs": 0.55},
    "GAT": {"cora": 2.02, "citeseer": 1.89, "polblogs": 2.31},
    "GCN-Jaccard": {"cora": 1.20, "citeseer": 1.11, "polblogs": 1.49},
    "GCN-SVD": {"cora": 7.01, "citeseer": 7.73, "polblogs": 5.43},
    "RGCN": {"cora": 1.14, "citeseer": 1.12, "polblogs": 1.12},
    "Pro-GNN": {"cora": 1326.22, "citeseer": 878.11, "polblogs": 330.07},
    "SimPGCN": {"cora": 2.82, "citeseer": 2.27, "polblogs": 2.45},
    "GNAT": {"cora": 0.98, "citeseer": 0.87, "polblogs": 0.81},
}

# Table IX — GNAT ablation on PEEGA-poisoned graphs (rate 0.1).
TABLE9_GNAT_ABLATION_CORA: dict[str, float] = {
    "GNAT-t": 82.28, "GNAT-f": 71.16, "GNAT-e": 76.29,
    "GNAT-t+f": 82.68, "GNAT-t+e": 82.75, "GNAT-f+e": 78.99,
    "GNAT-t+f+e": 83.12,
    "GNAT-tf": 80.08, "GNAT-te": 80.16, "GNAT-fe": 71.83, "GNAT-tfe": 82.91,
}

_TABLES = {
    "cora": TABLE4_CORA,
    "citeseer": TABLE5_CITESEER,
    "polblogs": TABLE6_POLBLOGS,
}


def paper_accuracy_table(dataset: str) -> Mapping[str, Mapping[str, float]]:
    """The paper's Table IV/V/VI grid for ``dataset``."""
    return _TABLES[dataset.lower()]


def shape_claims(dataset: str) -> list[tuple[str, bool]]:
    """Evaluate the paper's qualitative claims *on the paper's own numbers*.

    Returns (claim, holds) pairs — the same claims this repo's benches
    assert on the measured numbers, so the two lists are directly
    comparable.  (On the paper's data every claim holds by construction;
    the function exists so tests and reports share one claim list.)
    """
    table = paper_accuracy_table(dataset)
    gcn = {attacker: row["GCN"] for attacker, row in table.items()}
    attacked = {k: v for k, v in gcn.items() if k != "Clean"}
    claims = [
        ("PEEGA reduces GCN accuracy below clean", gcn["PEEGA"] < gcn["Clean"]),
        (
            "PEEGA is stronger than the spectral black-box GF-Attack",
            gcn["PEEGA"] < gcn["GF-Attack"],
        ),
        (
            "the strongest attacker is Metattack or PEEGA",
            min(attacked, key=attacked.get) in ("Metattack", "PEEGA"),
        ),
        (
            "GNAT beats raw GCN under the strongest attack",
            table[min(attacked, key=attacked.get)]["GNAT"]
            > table[min(attacked, key=attacked.get)]["GCN"],
        ),
        (
            "GNAT is the best defender under PEEGA",
            max(table["PEEGA"], key=table["PEEGA"].get) == "GNAT",
        ),
    ]
    return claims
