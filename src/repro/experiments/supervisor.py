"""Fault-tolerant trial execution: supervision, retries, and checkpoints.

The paper's accuracy grids (Tables IV–VI) are hundreds of independent
(dataset, attacker, rate, defender, seed) trials; a single diverging trainer
must not throw away hours of cached poison graphs.  This module supplies the
two pieces the runner composes:

:class:`TrialSupervisor`
    Runs one trial callable with a wall-clock deadline, bounded retries with
    exponential backoff and per-attempt reseeding, and converts exhausted
    retries into structured :class:`TrialFailure` records.  Repeated-failure
    *quarantine* ensures a permanently broken method fails once and is
    skipped thereafter instead of burning its retry budget in every row.

:class:`SweepCheckpoint`
    An append-only JSONL journal of completed cells plus poison graphs
    persisted through :mod:`repro.io`, written after every cell so an
    interrupted sweep resumes without re-running attacks.  Cell values are
    stored as JSON floats (``repr``-round-trip exact), so a resumed sweep
    reproduces the uninterrupted table bit for bit.

``BaseException`` subclasses that are not ``Exception`` (``KeyboardInterrupt``,
:class:`~repro.utils.faults.InjectedKill`) always propagate: an operator
abort must stop the sweep, not become a failure record.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..attacks.base import AttackResult
from ..errors import ConfigError, DeadlineError, TrialError
from ..io import load_attack_result, save_attack_result

__all__ = [
    "RESEED_STRIDE",
    "TrialKey",
    "TrialFailure",
    "TrialPolicy",
    "TrialOutcome",
    "TrialSupervisor",
    "SweepCheckpoint",
]

PathLike = Union[str, Path]

# Odd prime stride separating per-attempt reseeds from the base seed range,
# so retry seeds never collide with another trial's base seed.  Shared by
# the serial runner and the pool workers so a retried trial reseeds
# identically no matter which process runs it.
RESEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class TrialKey:
    """Identity of one supervised trial.

    Attack trials leave ``defender``/``seed`` as ``None`` (one attack is
    shared by a whole row); defense trials set both.  ``attacker`` is
    ``"Clean"`` for the unpoisoned row.
    """

    dataset: str
    attacker: str
    rate: float
    defender: Optional[str] = None
    seed: Optional[int] = None

    def label(self) -> str:
        parts = [self.dataset, self.attacker, f"r={self.rate:g}"]
        if self.defender is not None:
            parts.append(self.defender)
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return "/".join(parts)

    def quarantine_key(self) -> tuple:
        """What a permanent failure of this trial poisons.

        A broken defender is broken for every attacker row, so defense
        trials quarantine (dataset, defender); attack trials quarantine
        (dataset, attacker, rate).
        """
        if self.defender is not None:
            return ("defend", self.dataset, self.defender)
        return ("attack", self.dataset, self.attacker, self.rate)


@dataclass(frozen=True)
class TrialFailure:
    """Structured record of a trial that exhausted its retries."""

    key: TrialKey
    attempts: int
    elapsed_seconds: float
    error_type: str
    message: str
    traceback: str = ""

    def summary(self) -> str:
        return (
            f"{self.key.label()}: {self.error_type}: {self.message} "
            f"({self.attempts} attempts, {self.elapsed_seconds:.2f}s)"
        )

    def to_json(self) -> dict:
        return {
            "dataset": self.key.dataset,
            "attacker": self.key.attacker,
            "rate": self.key.rate,
            "defender": self.key.defender,
            "seed": self.key.seed,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TrialFailure":
        return cls(
            key=TrialKey(
                dataset=data["dataset"],
                attacker=data["attacker"],
                rate=data["rate"],
                defender=data.get("defender"),
                seed=data.get("seed"),
            ),
            attempts=int(data["attempts"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
            error_type=data["error_type"],
            message=data["message"],
            traceback=data.get("traceback", ""),
        )


@dataclass(frozen=True)
class TrialPolicy:
    """Retry/deadline policy shared by every trial of a sweep."""

    max_attempts: int = 2
    deadline_seconds: Optional[float] = None
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if self.backoff_seconds < 0:
            raise ConfigError(
                f"backoff_seconds must be non-negative, got {self.backoff_seconds}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)


@dataclass
class TrialOutcome:
    """Result of :meth:`TrialSupervisor.run`: a value or a failure."""

    key: TrialKey
    value: Any = None
    failure: Optional[TrialFailure] = None
    attempts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


class TrialSupervisor:
    """Runs trial callables under a :class:`TrialPolicy`.

    The callable receives the (0-based) attempt number so callers can
    reseed per attempt — a diverging initialization should not be retried
    verbatim.  ``sleep`` is injectable so tests can run backoff instantly.
    """

    def __init__(
        self,
        policy: Optional[TrialPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy or TrialPolicy()
        self.failures: list[TrialFailure] = []
        self._sleep = sleep
        self._quarantine: dict[tuple, TrialFailure] = {}

    # ------------------------------------------------------------------
    def quarantined(self, key: TrialKey) -> Optional[TrialFailure]:
        """The failure that quarantined ``key``'s method, if any."""
        return self._quarantine.get(key.quarantine_key())

    def run(self, key: TrialKey, fn: Callable[[int], Any]) -> TrialOutcome:
        """Run ``fn(attempt)`` under the policy; never raises ``Exception``.

        Returns a :class:`TrialOutcome` whose ``failure`` is set when every
        attempt failed; the failure is also appended to :attr:`failures`
        and the trial's method is quarantined.  Non-``Exception``
        ``BaseException`` (operator interrupts) propagate immediately.
        """
        quarantining = self.quarantined(key)
        if quarantining is not None:
            return TrialOutcome(key=key, failure=quarantining)

        started = time.perf_counter()
        last_error: Optional[BaseException] = None
        last_tb = ""
        for attempt in range(self.policy.max_attempts):
            try:
                value = self._attempt(key, fn, attempt)
                return TrialOutcome(
                    key=key,
                    value=value,
                    attempts=attempt + 1,
                    elapsed_seconds=time.perf_counter() - started,
                )
            except Exception as error:  # noqa: BLE001 — supervision boundary
                last_error = error
                last_tb = traceback.format_exc()
                if attempt + 1 < self.policy.max_attempts:
                    self._sleep(self.policy.backoff_for(attempt + 1))

        failure = TrialFailure(
            key=key,
            attempts=self.policy.max_attempts,
            elapsed_seconds=time.perf_counter() - started,
            error_type=type(last_error).__name__,
            message=str(last_error),
            traceback=last_tb,
        )
        self.failures.append(failure)
        self._quarantine[key.quarantine_key()] = failure
        return TrialOutcome(
            key=key,
            failure=failure,
            attempts=failure.attempts,
            elapsed_seconds=failure.elapsed_seconds,
        )

    def run_or_raise(self, key: TrialKey, fn: Callable[[int], Any]) -> Any:
        """Like :meth:`run` but raises :class:`TrialError` on failure."""
        outcome = self.run(key, fn)
        if outcome.failure is not None:
            raise TrialError(
                outcome.failure.summary(),
                key=key,
                attempts=outcome.failure.attempts,
                elapsed_seconds=outcome.failure.elapsed_seconds,
            )
        return outcome.value

    # ------------------------------------------------------------------
    def _attempt(self, key: TrialKey, fn: Callable[[int], Any], attempt: int) -> Any:
        deadline = self.policy.deadline_seconds
        if deadline is None:
            return fn(attempt)

        box: dict[str, Any] = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["value"] = fn(attempt)
            except BaseException as error:  # noqa: BLE001 — re-raised below
                box["error"] = error
            finally:
                done.set()

        worker = threading.Thread(
            target=target, name=f"trial-{key.label()}", daemon=True
        )
        started = time.perf_counter()
        worker.start()
        if not done.wait(deadline):
            # The worker is abandoned (daemon): Python threads cannot be
            # killed, so a genuinely hung trial leaks a sleeping thread.
            raise DeadlineError(
                f"trial {key.label()} exceeded its {deadline:g}s deadline "
                f"on attempt {attempt + 1}",
                deadline_seconds=deadline,
                key=key,
                attempts=attempt + 1,
                elapsed_seconds=time.perf_counter() - started,
            )
        if "error" in box:
            raise box["error"]
        return box["value"]


# ---------------------------------------------------------------------------


class SweepCheckpoint:
    """Journal of completed sweep cells plus persisted poison graphs.

    Layout under ``directory``::

        journal.jsonl                    # one JSON record per event
        poison_<dataset>_<attacker>_...  # .npz attack archives (repro.io)

    Journal records are ``{"kind": "cell", ...}`` with the per-seed
    accuracy values, or ``{"kind": "failure", ...}`` with a serialized
    :class:`TrialFailure`.  Failed cells are *not* marked complete: a
    resumed sweep retries them (the failure records remain for
    post-mortems).  Every record is written and flushed before the sweep
    moves on, so the journal is valid after a kill at any point; a
    truncated trailing line (kill mid-write) is ignored on load.
    """

    def __init__(self, directory: PathLike, resume: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / "journal.jsonl"
        self._cells: dict[tuple, list[float]] = {}
        self.failures: list[TrialFailure] = []
        # Journal writes are serialized in the sweep's parent process: pool
        # workers never hold a SweepCheckpoint, they return outcomes and the
        # scheduler journals them here.  The lock guards against a future
        # multi-threaded scheduler interleaving records mid-line.
        self._write_lock = threading.Lock()
        if resume:
            self._load()
        else:
            self.journal_path.write_text("")

    # -- journal --------------------------------------------------------
    @staticmethod
    def _cell_key(dataset: str, attacker: str, rate: float, defender: str) -> tuple:
        return (dataset, attacker, float(rate), defender)

    def _load(self) -> None:
        if not self.journal_path.exists():
            return
        for line in self.journal_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing write from a hard kill
            if record.get("kind") == "cell":
                key = self._cell_key(
                    record["dataset"],
                    record["attacker"],
                    record["rate"],
                    record["defender"],
                )
                self._cells[key] = [float(v) for v in record["values"]]
            elif record.get("kind") == "failure":
                self.failures.append(TrialFailure.from_json(record))

    def _append(self, record: dict) -> None:
        with self._write_lock, open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    def cell_values(
        self, dataset: str, attacker: str, rate: float, defender: str
    ) -> Optional[list[float]]:
        """Per-seed values of a previously completed cell, or ``None``."""
        return self._cells.get(self._cell_key(dataset, attacker, rate, defender))

    def record_cell(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        defender: str,
        values: list[float],
    ) -> None:
        """Mark a cell complete (journalled immediately)."""
        self._cells[self._cell_key(dataset, attacker, rate, defender)] = list(values)
        self._append(
            {
                "kind": "cell",
                "dataset": dataset,
                "attacker": attacker,
                "rate": float(rate),
                "defender": defender,
                "values": [float(v) for v in values],
            }
        )

    def record_failure(self, failure: TrialFailure) -> None:
        """Journal a trial failure (cell stays incomplete for resume)."""
        self._append({"kind": "failure", **failure.to_json()})

    # -- poison graphs --------------------------------------------------
    def poison_path(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        dataset_seed: int,
        scale: float,
    ) -> Path:
        slug = "".join(c if c.isalnum() else "-" for c in attacker)
        return self.directory / (
            f"poison_{dataset}_{slug}_r{rate:g}_ds{dataset_seed}_x{scale:g}.npz"
        )

    def load_poison(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        dataset_seed: int,
        scale: float,
    ) -> Optional[AttackResult]:
        """The persisted attack result for this row, or ``None``."""
        path = self.poison_path(dataset, attacker, rate, dataset_seed, scale)
        if not path.exists():
            return None
        return load_attack_result(path)

    def save_poison(
        self,
        dataset: str,
        attacker: str,
        rate: float,
        dataset_seed: int,
        scale: float,
        result: AttackResult,
    ) -> Path:
        path = self.poison_path(dataset, attacker, rate, dataset_seed, scale)
        save_attack_result(result, path)
        return path
